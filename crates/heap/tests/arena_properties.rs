//! Property battery for the slab arena: random alloc/free/realloc/GC
//! interleavings never panic, free-list reuse never aliases a live
//! handle, and stale (generation-mismatched) handles always come back as
//! a structured [`HeapError::InvalidRef`] — never a wrong object.

// Tests assert on known-good setups; panicking on failure is the point.
#![allow(clippy::disallowed_methods)]

use bytes::Bytes;
use obiwan_heap::{
    ClassBuilder, ClassId, ClassRegistry, Heap, HeapError, ObjRef, Object, ObjectKind, Value,
};
use proptest::prelude::*;
use std::collections::HashSet;

fn registry() -> (ClassRegistry, ClassId, ClassId) {
    let mut reg = ClassRegistry::new();
    // 3 fields: lives in the inline field store.
    let node = reg.register(
        ClassBuilder::new("Node")
            .ref_field("next")
            .int_field("n")
            .bytes_field("payload"),
    );
    // 6 fields: forces the spilled field store.
    let wide = reg.register(
        ClassBuilder::new("Wide")
            .int_field("f0")
            .int_field("f1")
            .int_field("f2")
            .int_field("f3")
            .int_field("f4")
            .bytes_field("blob"),
    );
    (reg, node, wide)
}

#[derive(Debug, Clone)]
enum Op {
    /// Allocate (inline store) and root it.
    Alloc,
    /// Allocate a wide object (spilled store) and root it.
    AllocWide,
    /// Build a detached object with a payload and adopt it.
    Adopt { payload: usize },
    /// Adopt with a field count that mismatches the layout: must be a
    /// structured error and leave the arena untouched.
    AdoptBad { count: usize },
    /// Unroot one live object and collect — frees exactly that slot and
    /// retires its handle to the stale set (a realloc may reuse the slot).
    Free { at: usize },
    /// Collect with everything rooted: must free nothing.
    Gc,
    /// Probe every stale handle through the whole accessor surface.
    ProbeStale,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => Just(Op::Alloc),
        2 => Just(Op::AllocWide),
        2 => (0usize..128).prop_map(|payload| Op::Adopt { payload }),
        1 => (0usize..8).prop_map(|count| Op::AdoptBad { count }),
        4 => any::<prop::sample::Index>().prop_map(|i| Op::Free { at: i.index(usize::MAX - 1) }),
        1 => Just(Op::Gc),
        2 => Just(Op::ProbeStale),
    ]
}

/// Every way a stale handle can be presented must yield `InvalidRef` (or
/// `None` for the infallible probes) — and never a live object's data.
fn assert_stale(heap: &mut Heap, s: ObjRef) {
    assert!(matches!(heap.get(s), Err(HeapError::InvalidRef { .. })));
    assert!(matches!(heap.get_mut(s), Err(HeapError::InvalidRef { .. })));
    assert!(matches!(
        heap.set_any_field(s, 0, Value::Null),
        Err(HeapError::InvalidRef { .. })
    ));
    assert!(matches!(
        heap.set_slot_fast(s, 0, Value::Null),
        Err(HeapError::InvalidRef { .. })
    ));
    assert!(matches!(
        heap.weak_ref(s),
        Err(HeapError::InvalidRef { .. })
    ));
    assert!(!heap.is_live(s));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn arena_interleavings_never_panic_or_alias(ops in prop::collection::vec(arb_op(), 1..150)) {
        let (reg, node, wide) = registry();
        let mut heap = Heap::new(reg, 1 << 20);
        // All live handles are rooted, so frees are exactly the ones we ask
        // for; stale handles accumulate as slots get freed and reused.
        let mut live: Vec<ObjRef> = Vec::new();
        let mut stale: Vec<ObjRef> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc => {
                    let r = heap.alloc(node, ObjectKind::App).unwrap();
                    heap.add_root(r);
                    live.push(r);
                }
                Op::AllocWide => {
                    let r = heap.alloc(wide, ObjectKind::App).unwrap();
                    heap.set_field_by_name(r, "f4", Value::Int(4)).unwrap();
                    prop_assert_eq!(heap.field_by_name(r, "f4").unwrap(), &Value::Int(4));
                    heap.add_root(r);
                    live.push(r);
                }
                Op::Adopt { payload } => {
                    let mut obj = Object::with_field_count(node, ObjectKind::App, 3);
                    prop_assert!(obj.set_raw_field(1, Value::Int(payload as i64)));
                    prop_assert!(obj.set_raw_field(
                        2,
                        Value::Bytes(Bytes::from(vec![7u8; payload]))
                    ));
                    let r = heap.adopt(obj).unwrap();
                    prop_assert_eq!(
                        heap.field_by_name(r, "payload").unwrap().payload_size(),
                        payload
                    );
                    heap.add_root(r);
                    live.push(r);
                }
                Op::AdoptBad { count } => {
                    let before = (heap.live_objects(), heap.bytes_used());
                    if count != 3 {
                        let out = heap.adopt(Object::with_field_count(node, ObjectKind::App, count));
                        prop_assert!(matches!(out, Err(HeapError::TypeMismatch { .. })));
                        prop_assert_eq!((heap.live_objects(), heap.bytes_used()), before);
                    }
                }
                Op::Free { at } if !live.is_empty() => {
                    let r = live.swap_remove(at % live.len());
                    heap.remove_root(r);
                    let freed = heap.collect().freed_objects;
                    prop_assert_eq!(freed, 1, "exactly the unrooted object dies");
                    prop_assert!(!heap.is_live(r));
                    stale.push(r);
                }
                Op::Gc => {
                    prop_assert_eq!(heap.collect().freed_objects, 0,
                        "everything is rooted — GC must free nothing");
                }
                Op::ProbeStale => {
                    for s in stale.clone() {
                        assert_stale(&mut heap, s);
                    }
                }
                _ => {}
            }
            // Free-list reuse must never hand out a handle equal to a stale
            // one: a reused slot carries a bumped generation.
            let stale_set: HashSet<ObjRef> = stale.iter().copied().collect();
            for r in &live {
                prop_assert!(!stale_set.contains(r), "live handle {r} aliases a stale one");
                prop_assert!(heap.is_live(*r));
            }
            prop_assert_eq!(heap.live_objects(), live.len());
        }

        // Terminal sweep: every stale handle is still structured-invalid.
        for s in stale.clone() {
            assert_stale(&mut heap, s);
        }
    }

    #[test]
    fn realloc_reuses_slots_without_resurrecting_handles(rounds in 1usize..30, batch in 1usize..20) {
        let (reg, node, _) = registry();
        let mut heap = Heap::new(reg, 1 << 20);
        let mut stale: Vec<ObjRef> = Vec::new();
        let mut high_water = 0u32;
        for round in 0..rounds {
            let fresh: Vec<ObjRef> = (0..batch)
                .map(|_| heap.alloc(node, ObjectKind::App).unwrap())
                .collect();
            high_water = high_water.max(fresh.iter().map(|r| r.index()).max().unwrap() + 1);
            if round > 0 {
                // The arena must recycle the previous batch's slots instead
                // of growing: indices stay under the first-round high water.
                for r in &fresh {
                    prop_assert!(r.index() < high_water, "slot {r} escaped the free list");
                }
            }
            for s in &stale {
                prop_assert!(heap.get(*s).is_err(), "stale {s} resurrected by realloc");
            }
            // Free the whole batch (nothing roots it).
            prop_assert_eq!(heap.collect().freed_objects, batch);
            stale.extend(fresh);
        }
        prop_assert_eq!(heap.live_objects(), 0);
        prop_assert_eq!(heap.bytes_used(), 0);
    }
}
