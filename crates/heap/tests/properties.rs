//! Property-based tests for heap invariants: accounting never drifts,
//! generational handles never alias, GC is precise with respect to the
//! reachable set computed independently.

// Tests assert on known-good setups; panicking on failure is the point.
#![allow(clippy::disallowed_methods)]

use bytes::Bytes;
use obiwan_heap::{ClassBuilder, ClassRegistry, Heap, ObjRef, ObjectKind, Value};
use proptest::prelude::*;
use std::collections::HashSet;

fn registry() -> (ClassRegistry, obiwan_heap::ClassId, obiwan_heap::ClassId) {
    let mut reg = ClassRegistry::new();
    let node = reg.register(
        ClassBuilder::new("Node")
            .ref_field("a")
            .ref_field("b")
            .bytes_field("payload"),
    );
    let array = reg.register(ClassBuilder::new("Array").variadic().bytes_field("blob"));
    (reg, node, array)
}

#[derive(Debug, Clone)]
enum Op {
    Alloc,
    AllocArray,
    LinkAToB { from: usize, to: usize },
    Unlink { from: usize },
    SetPayload { at: usize, len: usize },
    SetAnyPayload { at: usize, len: usize },
    SetSlotFast { at: usize, v: i64 },
    PushExtra { at: usize, to: usize },
    RootToggle { at: usize },
    Collect,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Alloc),
        1 => Just(Op::AllocArray),
        3 => (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(a, b)| Op::LinkAToB { from: a.index(usize::MAX - 1), to: b.index(usize::MAX - 1) }),
        1 => any::<prop::sample::Index>().prop_map(|i| Op::Unlink { from: i.index(usize::MAX - 1) }),
        2 => (any::<prop::sample::Index>(), 0usize..200)
            .prop_map(|(i, len)| Op::SetPayload { at: i.index(usize::MAX - 1), len }),
        1 => (any::<prop::sample::Index>(), 0usize..200)
            .prop_map(|(i, len)| Op::SetAnyPayload { at: i.index(usize::MAX - 1), len }),
        1 => (any::<prop::sample::Index>(), any::<i64>())
            .prop_map(|(i, v)| Op::SetSlotFast { at: i.index(usize::MAX - 1), v }),
        1 => (any::<prop::sample::Index>(), any::<prop::sample::Index>())
            .prop_map(|(a, b)| Op::PushExtra { at: a.index(usize::MAX - 1), to: b.index(usize::MAX - 1) }),
        2 => any::<prop::sample::Index>().prop_map(|i| Op::RootToggle { at: i.index(usize::MAX - 1) }),
        1 => Just(Op::Collect),
    ]
}

/// Recompute bytes_used from scratch by walking live objects.
fn recomputed_bytes(heap: &Heap) -> usize {
    heap.iter_live().map(|r| heap.get(r).unwrap().size()).sum()
}

/// Independently compute the set of slot indices reachable from globals.
fn reachable(heap: &Heap, roots: &[ObjRef]) -> HashSet<u32> {
    let mut seen = HashSet::new();
    let mut stack: Vec<ObjRef> = roots.to_vec();
    for (_, v) in heap.globals() {
        if let Value::Ref(r) = v {
            stack.push(*r);
        }
    }
    while let Some(r) = stack.pop() {
        if !heap.is_live(r) || !seen.insert(r.index()) {
            continue;
        }
        for v in heap.get(r).unwrap().fields() {
            if let Value::Ref(n) = v {
                stack.push(*n);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn accounting_and_gc_invariants(ops in prop::collection::vec(arb_op(), 1..120)) {
        let (reg, node, array) = registry();
        let mut heap = Heap::new(reg, 1 << 20);
        // Handles we've allocated, live or not; rooted subset tracked in parallel.
        let mut handles: Vec<ObjRef> = Vec::new();
        let mut rooted: Vec<ObjRef> = Vec::new();

        for op in ops {
            match op {
                Op::Alloc => {
                    let r = heap.alloc(node, ObjectKind::App).unwrap();
                    handles.push(r);
                }
                Op::AllocArray => {
                    let r = heap.alloc(array, ObjectKind::Replacement).unwrap();
                    handles.push(r);
                }
                Op::SetAnyPayload { at, len } if !handles.is_empty() => {
                    let f = handles[at % handles.len()];
                    if heap.is_live(f) {
                        // Index 0 is a payload-capable field on both classes
                        // (`a` is Ref on Node — type is NOT checked by
                        // set_any_field, which is exactly what the graph
                        // surgery relies on; accounting must still hold).
                        heap.set_any_field(f, 0, Value::Bytes(Bytes::from(vec![1u8; len])))
                            .unwrap();
                    }
                }
                Op::SetSlotFast { at, v } if !handles.is_empty() => {
                    let f = handles[at % handles.len()];
                    if heap.is_live(f) {
                        heap.set_slot_fast(f, 0, Value::Int(v)).unwrap();
                    }
                }
                Op::PushExtra { at, to } if !handles.is_empty() => {
                    let f = handles[at % handles.len()];
                    let t = handles[to % handles.len()];
                    if heap.is_live(f) && heap.is_live(t) {
                        let variadic = heap.get(f).unwrap().kind() == ObjectKind::Replacement;
                        let out = heap.push_extra(f, Value::Ref(t));
                        prop_assert_eq!(out.is_ok(), variadic);
                    }
                }
                Op::LinkAToB { from, to } if !handles.is_empty() => {
                    let f = handles[from % handles.len()];
                    let t = handles[to % handles.len()];
                    if heap.is_live(f) && heap.is_live(t) {
                        heap.set_any_field(f, 0, Value::Ref(t)).unwrap();
                    }
                }
                Op::Unlink { from } if !handles.is_empty() => {
                    let f = handles[from % handles.len()];
                    if heap.is_live(f) {
                        heap.set_any_field(f, 0, Value::Null).unwrap();
                    }
                }
                Op::SetPayload { at, len } if !handles.is_empty() => {
                    let f = handles[at % handles.len()];
                    if heap.is_live(f)
                        && heap.get(f).unwrap().kind() == ObjectKind::App
                    {
                        heap.set_field_by_name(f, "payload", Value::Bytes(Bytes::from(vec![0u8; len]))).unwrap();
                    }
                }
                Op::RootToggle { at } if !handles.is_empty() => {
                    let f = handles[at % handles.len()];
                    if rooted.contains(&f) {
                        heap.remove_root(f);
                        rooted.retain(|r| *r != f);
                    } else if heap.is_live(f) {
                        heap.add_root(f);
                        rooted.push(f);
                    }
                }
                Op::Collect => {
                    let expected_live = reachable(&heap, &rooted);
                    heap.collect();
                    let actual_live: HashSet<u32> =
                        heap.iter_live().map(|r| r.index()).collect();
                    prop_assert_eq!(&actual_live, &expected_live,
                        "GC must free exactly the unreachable objects");
                    rooted.retain(|r| heap.is_live(*r));
                }
                _ => {}
            }
            // Invariant: accounting equals a from-scratch recomputation.
            prop_assert_eq!(heap.bytes_used(), recomputed_bytes(&heap));
            prop_assert_eq!(heap.live_objects(), heap.iter_live().count());
        }
    }

    #[test]
    fn freed_handles_never_alias_new_objects(n in 1usize..40) {
        let (reg, node, _array) = registry();
        let mut heap = Heap::new(reg, 1 << 20);
        let mut stale: Vec<ObjRef> = Vec::new();
        for i in 0..n {
            let r = heap.alloc(node, ObjectKind::App).unwrap();
            heap.set_field_by_name(r, "payload",
                Value::Bytes(Bytes::from(vec![i as u8; 4]))).unwrap();
            // Nothing roots r: the next collect frees it.
            heap.collect();
            prop_assert!(!heap.is_live(r));
            stale.push(r);
            // All previously stale handles must still be invalid even after
            // their slots were reused.
            for s in &stale {
                prop_assert!(heap.get(*s).is_err());
            }
        }
    }
}
