//! Blob durability for the Object-Swapping middleware: **where** swap
//! blobs live, and keeping them alive under churn.
//!
//! The paper ships every swapped-out cluster to exactly one "nearby dumb
//! device" — one departure and the cluster is unrecoverable. This crate
//! generalizes that to **k-way placement** in the spirit of lightweight
//! decentralized replica placement for mobile networks:
//!
//! * [`PlacementPolicy`] ranks candidate holder devices; the built-in
//!   strategies are [`PlacementKind::FirstFit`] (the paper's behaviour —
//!   preferred kind, then fewest hops, then most free storage),
//!   [`PlacementKind::SpreadByFreeStorage`] (spread load onto the
//!   emptiest stores first) and [`PlacementKind::LinkCostAware`]
//!   (minimize radio airtime by hop count above all).
//! * [`PlacementTable`] records `(swap_cluster, epoch) → holders` so the
//!   swapping manager can fan stores out on detach, fail over between
//!   holders on reload, fan drops out from the GC bridge, and re-replicate
//!   from a surviving holder when one walks away (the repair sweep).
//!
//! With `replication_factor = 1` the table holds a single device per
//! cluster and first-fit ranking reproduces the paper's single-copy
//! semantics byte-for-byte.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use obiwan_net::DeviceId;
use std::collections::BTreeMap;
use std::fmt;

/// One device volunteering (or considered) to hold a blob copy, with the
/// attributes the built-in policies rank by.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HolderCandidate {
    /// The candidate device.
    pub device: DeviceId,
    /// Whether the device matches the configured preferred kind.
    pub kind_preferred: bool,
    /// Network distance in hops (1 = direct link).
    pub hops: usize,
    /// Free storage bytes remaining on the device.
    pub free_storage: usize,
}

/// A strategy that orders candidate holders from most to least preferred.
///
/// The swapping manager stores onto candidates in rank order until `k`
/// copies exist, so position 0 is the primary holder. Policies must be
/// deterministic: equal-rank candidates are tie-broken by [`DeviceId`] so
/// two runs of the same world pick the same holders.
pub trait PlacementPolicy: fmt::Debug + Send {
    /// A short stable name for traces and bench output.
    fn name(&self) -> &'static str;

    /// Reorder `candidates` in place, most preferred first.
    fn rank(&self, candidates: &mut [HolderCandidate]);
}

/// Selector for the built-in [`PlacementPolicy`] strategies — the form the
/// knob takes inside `SwapConfig` (policies themselves are not `Copy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementKind {
    /// The paper's behaviour: preferred device kind first, then fewest
    /// hops, then most free storage. The default.
    #[default]
    FirstFit,
    /// Emptiest store first: spread blobs across the neighbourhood so no
    /// single device fills up and starts refusing repairs.
    SpreadByFreeStorage,
    /// Fewest hops above all: minimize the airtime every swap-out, reload
    /// and repair pays, even if it concentrates blobs on close devices.
    LinkCostAware,
}

impl PlacementKind {
    /// Instantiate the built-in policy this kind selects.
    pub fn policy(self) -> Box<dyn PlacementPolicy> {
        match self {
            PlacementKind::FirstFit => Box::new(FirstFit),
            PlacementKind::SpreadByFreeStorage => Box::new(SpreadByFreeStorage),
            PlacementKind::LinkCostAware => Box::new(LinkCostAware),
        }
    }

    /// The policy name without instantiating it.
    pub fn name(self) -> &'static str {
        match self {
            PlacementKind::FirstFit => "first-fit",
            PlacementKind::SpreadByFreeStorage => "spread-by-free-storage",
            PlacementKind::LinkCostAware => "link-cost-aware",
        }
    }
}

impl fmt::Display for PlacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for PlacementKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "first-fit" => Ok(PlacementKind::FirstFit),
            "spread-by-free-storage" => Ok(PlacementKind::SpreadByFreeStorage),
            "link-cost-aware" => Ok(PlacementKind::LinkCostAware),
            other => Err(format!(
                "unknown placement policy `{other}` (expected first-fit, \
                 spread-by-free-storage or link-cost-aware)"
            )),
        }
    }
}

/// The paper's original neighbour choice, generalized to a rank: preferred
/// kind desc, hops asc, free storage desc, id asc.
#[derive(Debug, Clone, Copy, Default)]
pub struct FirstFit;

impl PlacementPolicy for FirstFit {
    fn name(&self) -> &'static str {
        "first-fit"
    }

    fn rank(&self, candidates: &mut [HolderCandidate]) {
        candidates.sort_by(|a, b| {
            b.kind_preferred
                .cmp(&a.kind_preferred)
                .then(a.hops.cmp(&b.hops))
                .then(b.free_storage.cmp(&a.free_storage))
                .then(a.device.cmp(&b.device))
        });
    }
}

/// Emptiest-store-first ranking: free storage desc, preferred kind desc,
/// hops asc, id asc.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpreadByFreeStorage;

impl PlacementPolicy for SpreadByFreeStorage {
    fn name(&self) -> &'static str {
        "spread-by-free-storage"
    }

    fn rank(&self, candidates: &mut [HolderCandidate]) {
        candidates.sort_by(|a, b| {
            b.free_storage
                .cmp(&a.free_storage)
                .then(b.kind_preferred.cmp(&a.kind_preferred))
                .then(a.hops.cmp(&b.hops))
                .then(a.device.cmp(&b.device))
        });
    }
}

/// Cheapest-radio-first ranking: hops asc, preferred kind desc, free
/// storage desc, id asc.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinkCostAware;

impl PlacementPolicy for LinkCostAware {
    fn name(&self) -> &'static str {
        "link-cost-aware"
    }

    fn rank(&self, candidates: &mut [HolderCandidate]) {
        candidates.sort_by(|a, b| {
            a.hops
                .cmp(&b.hops)
                .then(b.kind_preferred.cmp(&a.kind_preferred))
                .then(b.free_storage.cmp(&a.free_storage))
                .then(a.device.cmp(&b.device))
        });
    }
}

/// Where one swapped-out cluster's blob copies live.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// The blob key every holder stores the bytes under.
    pub key: String,
    /// Holder devices in preference order; position 0 is the primary.
    pub holders: Vec<DeviceId>,
}

/// Tracks `(swap_cluster, epoch) → holders` for every swapped-out cluster.
///
/// Invariant: at most one *active* entry per swap-cluster — recording a new
/// epoch supersedes (removes) the previous one, mirroring the manager's
/// epoch bump per swap-out. The table is pure bookkeeping; moving actual
/// bytes is the swapping manager's job.
#[derive(Debug, Clone, Default)]
pub struct PlacementTable {
    entries: BTreeMap<(u32, u32), Placement>,
}

impl PlacementTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record where `swap_cluster`'s blob for `epoch` lives, superseding
    /// any previous epoch of the same cluster.
    pub fn record(&mut self, swap_cluster: u32, epoch: u32, key: String, holders: Vec<DeviceId>) {
        self.entries.retain(|&(sc, _), _| sc != swap_cluster);
        self.entries
            .insert((swap_cluster, epoch), Placement { key, holders });
    }

    /// The placement recorded for exactly `(swap_cluster, epoch)`.
    pub fn get(&self, swap_cluster: u32, epoch: u32) -> Option<&Placement> {
        self.entries.get(&(swap_cluster, epoch))
    }

    /// The active `(epoch, placement)` for `swap_cluster`, if any.
    pub fn active(&self, swap_cluster: u32) -> Option<(u32, &Placement)> {
        self.entries
            .iter()
            .find(|&(&(sc, _), _)| sc == swap_cluster)
            .map(|(&(_, epoch), p)| (epoch, p))
    }

    /// Remove and return the active placement for `swap_cluster`.
    pub fn remove(&mut self, swap_cluster: u32) -> Option<(u32, Placement)> {
        let key = self
            .entries
            .keys()
            .find(|&&(sc, _)| sc == swap_cluster)
            .copied()?;
        self.entries.remove(&key).map(|p| (key.1, p))
    }

    /// Append `device` to the active holder list for `swap_cluster` (used
    /// by the repair sweep after a successful re-replication). No-op if the
    /// cluster has no active placement or the device is already a holder.
    pub fn add_holder(&mut self, swap_cluster: u32, device: DeviceId) {
        if let Some(p) = self.active_mut(swap_cluster) {
            if !p.holders.contains(&device) {
                p.holders.push(device);
            }
        }
    }

    /// Remove `device` from the active holder list for `swap_cluster`
    /// (used when a holder departs for good). Returns how many holders
    /// remain, or `None` if the cluster has no active placement.
    pub fn remove_holder(&mut self, swap_cluster: u32, device: DeviceId) -> Option<usize> {
        let p = self.active_mut(swap_cluster)?;
        p.holders.retain(|&d| d != device);
        Some(p.holders.len())
    }

    /// Every `(swap_cluster, epoch, key)` naming `device` as a holder —
    /// what is at stake when that device departs.
    pub fn entries_on(&self, device: DeviceId) -> Vec<(u32, u32, String)> {
        let mut hit: Vec<(u32, u32, String)> = self
            .entries
            .iter()
            .filter(|&(_, p)| p.holders.contains(&device))
            .map(|(&(sc, epoch), p)| (sc, epoch, p.key.clone()))
            .collect();
        hit.sort();
        hit
    }

    /// Iterate all `(swap_cluster, epoch, placement)` entries in
    /// `(swap_cluster, epoch)` order — deterministic, so event streams
    /// derived from placement sweeps replay byte-identically.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32, &Placement)> {
        self.entries.iter().map(|(&(sc, epoch), p)| (sc, epoch, p))
    }

    /// Merge every entry of `other` into this table (used to assemble a
    /// whole-process view from per-shard tables; shards partition the
    /// swap-cluster id space, so no entry can collide).
    pub fn absorb(&mut self, other: &PlacementTable) {
        for (sc, epoch, p) in other.iter() {
            self.record(sc, epoch, p.key.clone(), p.holders.clone());
        }
    }

    /// Number of tracked placements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no placements are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn active_mut(&mut self, swap_cluster: u32) -> Option<&mut Placement> {
        self.entries
            .iter_mut()
            .find(|&(&(sc, _), _)| sc == swap_cluster)
            .map(|(_, p)| p)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use obiwan_net::{DeviceKind, SimNet};

    /// Mint `n` real [`DeviceId`]s (index = position) via a throwaway net.
    fn devices(n: u32) -> Vec<DeviceId> {
        let mut net = SimNet::new();
        (0..n)
            .map(|i| net.add_device(format!("d{i}"), DeviceKind::Laptop, 0))
            .collect()
    }

    fn cand(
        ids: &[DeviceId],
        id: usize,
        preferred: bool,
        hops: usize,
        free: usize,
    ) -> HolderCandidate {
        HolderCandidate {
            device: ids[id],
            kind_preferred: preferred,
            hops,
            free_storage: free,
        }
    }

    fn ids(cands: &[HolderCandidate]) -> Vec<u32> {
        cands.iter().map(|c| c.device.index()).collect()
    }

    #[test]
    fn first_fit_matches_the_paper_order() {
        // Preferred kind dominates hops, hops dominate free storage.
        let d = devices(5);
        let mut c = vec![
            cand(&d, 1, false, 1, 900),
            cand(&d, 2, true, 2, 100),
            cand(&d, 3, true, 1, 50),
            cand(&d, 4, true, 1, 500),
        ];
        FirstFit.rank(&mut c);
        assert_eq!(ids(&c), vec![4, 3, 2, 1]);
    }

    #[test]
    fn spread_prefers_the_emptiest_store() {
        let d = devices(4);
        let mut c = vec![
            cand(&d, 1, true, 1, 100),
            cand(&d, 2, false, 3, 900),
            cand(&d, 3, false, 1, 900),
        ];
        SpreadByFreeStorage.rank(&mut c);
        assert_eq!(ids(&c), vec![3, 2, 1]);
    }

    #[test]
    fn link_cost_aware_prefers_the_shortest_route() {
        let d = devices(4);
        let mut c = vec![
            cand(&d, 1, true, 3, 900),
            cand(&d, 2, false, 1, 100),
            cand(&d, 3, true, 1, 100),
        ];
        LinkCostAware.rank(&mut c);
        assert_eq!(ids(&c), vec![3, 2, 1]);
    }

    #[test]
    fn equal_candidates_tie_break_by_device_id() {
        for kind in [
            PlacementKind::FirstFit,
            PlacementKind::SpreadByFreeStorage,
            PlacementKind::LinkCostAware,
        ] {
            let d = devices(10);
            let mut c = vec![cand(&d, 9, true, 1, 100), cand(&d, 2, true, 1, 100)];
            kind.policy().rank(&mut c);
            assert_eq!(ids(&c), vec![2, 9], "{kind}");
        }
    }

    #[test]
    fn kind_round_trips_through_parse_and_display() {
        for kind in [
            PlacementKind::FirstFit,
            PlacementKind::SpreadByFreeStorage,
            PlacementKind::LinkCostAware,
        ] {
            assert_eq!(kind.to_string().parse::<PlacementKind>(), Ok(kind));
            assert_eq!(kind.policy().name(), kind.name());
        }
        assert!("bogus".parse::<PlacementKind>().is_err());
    }

    #[test]
    fn record_supersedes_the_previous_epoch() {
        let d = devices(4);
        let mut t = PlacementTable::new();
        t.record(2, 0, "k-e0".into(), vec![d[1]]);
        t.record(2, 1, "k-e1".into(), vec![d[2], d[3]]);
        assert_eq!(t.len(), 1);
        let (epoch, p) = t.active(2).expect("active");
        assert_eq!(epoch, 1);
        assert_eq!(p.key, "k-e1");
        assert_eq!(p.holders, vec![d[2], d[3]]);
        assert!(t.get(2, 0).is_none());
    }

    #[test]
    fn holder_edits_and_device_lookup() {
        let d = devices(8);
        let mut t = PlacementTable::new();
        t.record(2, 0, "a".into(), vec![d[1], d[2]]);
        t.record(5, 3, "b".into(), vec![d[2]]);
        assert_eq!(
            t.entries_on(d[2]),
            vec![(2, 0, "a".to_string()), (5, 3, "b".to_string())]
        );
        assert_eq!(t.remove_holder(2, d[1]), Some(1));
        t.add_holder(2, d[7]);
        t.add_holder(2, d[7]); // idempotent
        assert_eq!(t.active(2).expect("active").1.holders, vec![d[2], d[7]]);
        assert_eq!(t.remove_holder(9, d[1]), None);
        let (epoch, p) = t.remove(5).expect("removed");
        assert_eq!((epoch, p.key.as_str()), (3, "b"));
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }
}
