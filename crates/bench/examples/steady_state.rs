//! Steady-state walk demo: drives the Figure 5 workload under memory
//! pressure and prints per-phase wall-clock timings.

// Example scaffolding: aborting on a setup failure is fine here.
#![allow(clippy::disallowed_methods)]

use obiwan_bench::workloads::*;
use std::time::Instant;

fn main() {
    obiwan_bench::with_big_stack(|| {
        for test in ["B1", "B2", "A2"] {
            let mut world = build_fig5(Fig5Config::with_clusters(20, 2000)).expect("build world");
            let mut timings = Vec::new();
            for _ in 0..60 {
                let t = Instant::now();
                run_test(&mut world, test).expect("traversal");
                timings.push(t.elapsed().as_secs_f64() * 1e3);
            }
            let early: f64 = timings[5..15].iter().sum::<f64>() / 10.0;
            let late: f64 = timings[50..60].iter().sum::<f64>() / 10.0;
            println!(
                "{test}: early {early:.3}ms late {late:.3}ms ratio {:.2}",
                late / early
            );
            let heap = world.mw.process().heap();
            println!(
                "  final heap: {} objects, {} B",
                heap.live_objects(),
                heap.bytes_used()
            );
        }
    })
    .expect("bench thread");
}
