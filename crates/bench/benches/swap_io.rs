//! CPU cost of a swap-out + reload cycle (serialization, graph surgery,
//! rematerialization) as a function of swap-cluster size. The *airtime*
//! half of Ablation 2 is virtual-time and printed by the `ablations`
//! binary; this bench isolates the device-side compute the paper's iPAQ
//! had to spend.

// Benches are measurement scaffolding: aborting on a setup failure is the
// desired behaviour, so the panic-free discipline is waived here.
#![allow(clippy::disallowed_methods)]

use criterion::{BenchmarkId, Criterion};
use obiwan_core::Middleware;
use obiwan_heap::Value;
use obiwan_replication::{standard_classes, Server};

fn world(cluster_size: usize, list_len: usize) -> Middleware {
    let mut server = Server::new(standard_classes());
    let head = server
        .build_list("Node", list_len, obiwan_bench::workloads::PAYLOAD_FOR_64B)
        .expect("Node class");
    let mut mw = Middleware::builder()
        .cluster_size(cluster_size)
        .device_memory(list_len * 64 * 8 + (1 << 20))
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    mw
}

fn bench_swap_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("swap_cycle");
    group.sample_size(20);
    for cluster_size in [20usize, 50, 100, 200] {
        let mut mw = world(cluster_size, 800);
        group.bench_with_input(
            BenchmarkId::new("out_and_reload", cluster_size),
            &(),
            |b, ()| {
                b.iter(|| {
                    mw.swap_out(1).expect("swap out");
                    mw.swap_in(1).expect("swap in");
                })
            },
        );
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    use obiwan_core::wire::{self, WireFormatKind};
    let mut group = c.benchmark_group("codec");
    for cluster_size in [20usize, 100] {
        let mw = world(cluster_size, 400);
        let members: Vec<obiwan_heap::ObjRef> = mw
            .manager()
            .cluster(1)
            .expect("sc1")
            .members
            .iter()
            .map(|&(_, r)| r)
            .collect();
        group.bench_with_input(BenchmarkId::new("capture", cluster_size), &(), |b, ()| {
            b.iter(|| obiwan_core::codec::capture(mw.process(), 1, 0, &members).unwrap())
        });
        let blob = obiwan_core::codec::capture(mw.process(), 1, 0, &members).expect("capture");
        for kind in WireFormatKind::ALL {
            let data = wire::encode_blob(kind, &blob).expect("encode");
            group.bench_with_input(
                BenchmarkId::new(format!("encode/{kind}"), cluster_size),
                &(),
                |b, ()| b.iter(|| wire::encode_blob(kind, &blob).unwrap()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("decode/{kind}"), cluster_size),
                &data,
                |b, data| b.iter(|| wire::decode_blob(data).unwrap()),
            );
        }
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_swap_cycle(&mut criterion);
    bench_codec(&mut criterion);
    criterion.final_summary();
}
