//! Ablation 4 (CPU half): the heap-compression baseline's compute cost —
//! "compression is a computational-intensive process" (paper §1/§6) —
//! measured on real swap-blob text, against the codec work Object-Swapping
//! itself performs.

// Benches are measurement scaffolding: aborting on a setup failure is the
// desired behaviour, so the panic-free discipline is waived here.
#![allow(clippy::disallowed_methods)]

use criterion::{BenchmarkId, Criterion, Throughput};
use obiwan_baselines::compress::CompressedPool;
use obiwan_baselines::lz;
use obiwan_core::Middleware;
use obiwan_heap::Value;
use obiwan_net::BlobStore;
use obiwan_replication::{standard_classes, Server};

/// Produce a realistic swap blob for a cluster of `size` 64-byte objects.
fn blob_for(size: usize) -> String {
    let mut server = Server::new(standard_classes());
    let head = server
        .build_list("Node", size * 4, obiwan_bench::workloads::PAYLOAD_FOR_64B)
        .expect("Node class");
    let mut mw = Middleware::builder()
        .cluster_size(size)
        .device_memory(size * 4 * 64 * 8 + (1 << 20))
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    let members: Vec<obiwan_heap::ObjRef> = mw
        .manager()
        .cluster(1)
        .expect("sc1")
        .members
        .iter()
        .map(|&(_, r)| r)
        .collect();
    obiwan_core::codec::encode(mw.process(), 1, 0, &members).expect("encode")
}

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("compression");
    for size in [100usize, 400] {
        let blob = blob_for(size);
        let compressed = lz::compress(blob.as_bytes());
        group.throughput(Throughput::Bytes(blob.len() as u64));
        group.bench_with_input(BenchmarkId::new("lz_compress", size), &blob, |b, blob| {
            b.iter(|| lz::compress(blob.as_bytes()))
        });
        group.bench_with_input(
            BenchmarkId::new("lz_decompress", size),
            &compressed,
            |b, compressed| b.iter(|| lz::decompress(compressed).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("pool_store_fetch_drop", size),
            &blob,
            |b, blob| {
                let mut pool = CompressedPool::new(1 << 24);
                b.iter(|| {
                    pool.store("k", blob.clone().into()).expect("store");
                    let back = pool.fetch("k").expect("fetch");
                    pool.drop_blob("k").expect("drop");
                    back.len()
                })
            },
        );
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_compression(&mut criterion);
    criterion.final_summary();
}
