//! Criterion version of the Figure 5 sweep: statistics over the four
//! traversal tests at each swap-cluster configuration.
//!
//! Uses a 2000-object list so `cargo bench` stays quick; the full-scale
//! (10 000-object) table comes from `cargo run --release --bin fig5`.

// Benches are measurement scaffolding: aborting on a setup failure is the
// desired behaviour, so the panic-free discipline is waived here.
#![allow(clippy::disallowed_methods)]

use criterion::{BenchmarkId, Criterion};
use obiwan_bench::workloads::{build_fig5, run_test, Fig5Config, TESTS};

fn bench_fig5(c: &mut Criterion) {
    const N: usize = 2_000;
    let configs = [
        Fig5Config::with_clusters(20, N),
        Fig5Config::with_clusters(50, N),
        Fig5Config::with_clusters(100, N),
        Fig5Config::without_clusters(N),
    ];
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    for config in configs {
        let mut world = build_fig5(config).expect("build world");
        for test in TESTS {
            // Stabilize proxy populations before sampling.
            run_test(&mut world, test).expect("warm-up traversal");
            group.bench_with_input(BenchmarkId::new(test, config.label()), &(), |b, ()| {
                b.iter(|| run_test(&mut world, test).expect("traversal"))
            });
        }
    }
    group.finish();
}

fn main() {
    obiwan_bench::with_big_stack(|| {
        let mut criterion = Criterion::default().configure_from_args();
        bench_fig5(&mut criterion);
        criterion.final_summary();
    })
    .expect("bench thread");
}
