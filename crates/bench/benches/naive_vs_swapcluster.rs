//! Ablation 1 (performance half): traversal cost under the naive
//! one-proxy-per-object design versus swap-clusters versus the no-swap
//! floor — quantifying §5's "this approach would also inevitably impose a
//! higher performance penalty, due to indirections".

// Benches are measurement scaffolding: aborting on a setup failure is the
// desired behaviour, so the panic-free discipline is waived here.
#![allow(clippy::disallowed_methods)]

use criterion::{BenchmarkId, Criterion};
use obiwan_baselines::naive::naive_middleware;
use obiwan_core::Middleware;
use obiwan_heap::Value;
use obiwan_replication::{standard_classes, Server};

const N: usize = 1_000;

fn server_with_list() -> (Server, obiwan_heap::Oid) {
    let mut server = Server::new(standard_classes());
    let head = server
        .build_list("Node", N, obiwan_bench::workloads::PAYLOAD_FOR_64B)
        .expect("Node class");
    (server, head)
}

fn warmed(mut mw: Middleware, head: obiwan_heap::Oid) -> (Middleware, obiwan_heap::ObjRef) {
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    assert_eq!(
        mw.invoke_i64(root, "length", vec![]).expect("warm"),
        N as i64
    );
    (mw, root)
}

fn bench_traversal(c: &mut Criterion) {
    let mut group = c.benchmark_group("naive_vs_swapcluster");
    group.sample_size(20);

    let (server, head) = server_with_list();
    let (mut naive, naive_root) = warmed(naive_middleware(server, 1 << 22), head);
    group.bench_with_input(
        BenchmarkId::new("visit", "naive-1-per-object"),
        &(),
        |b, ()| {
            b.iter(|| {
                naive
                    .invoke_i64(naive_root, "visit", vec![Value::Int(0)])
                    .expect("traversal")
            })
        },
    );

    let (server, head) = server_with_list();
    let sc = Middleware::builder()
        .cluster_size(50)
        .device_memory(1 << 22)
        .no_builtin_policies()
        .build(server);
    let (mut sc, sc_root) = warmed(sc, head);
    group.bench_with_input(
        BenchmarkId::new("visit", "swap-clusters-50"),
        &(),
        |b, ()| {
            b.iter(|| {
                sc.invoke_i64(sc_root, "visit", vec![Value::Int(0)])
                    .expect("traversal")
            })
        },
    );

    let (server, head) = server_with_list();
    let floor = Middleware::builder()
        .cluster_size(50)
        .device_memory(1 << 22)
        .swapping_disabled()
        .no_builtin_policies()
        .build(server);
    let (mut floor, floor_root) = warmed(floor, head);
    group.bench_with_input(
        BenchmarkId::new("visit", "no-swap-clusters"),
        &(),
        |b, ()| {
            b.iter(|| {
                floor
                    .invoke_i64(floor_root, "visit", vec![Value::Int(0)])
                    .expect("traversal")
            })
        },
    );

    group.finish();
}

fn main() {
    obiwan_bench::with_big_stack(|| {
        let mut criterion = Criterion::default().configure_from_args();
        bench_traversal(&mut criterion);
        criterion.final_summary();
    })
    .expect("bench thread");
}
