//! Ablation 3 (wall-clock half): end-to-end time of a pressured access
//! trace under each victim-selection policy. The swap / reload counts come
//! from the `ablations` binary; this bench shows what policy choice costs
//! in compute.

// Benches are measurement scaffolding: aborting on a setup failure is the
// desired behaviour, so the panic-free discipline is waived here.
#![allow(clippy::disallowed_methods)]

use criterion::{BenchmarkId, Criterion};
use obiwan_core::{Middleware, VictimPolicy};
use obiwan_heap::Value;
use obiwan_replication::{standard_classes, Server};

const N: usize = 200;

fn pressured_world(policy: VictimPolicy) -> (Middleware, obiwan_heap::ObjRef) {
    let mut server = Server::new(standard_classes());
    let head = server
        .build_list("Node", N, obiwan_bench::workloads::PAYLOAD_FOR_64B)
        .expect("Node class");
    let mut mw = Middleware::builder()
        .cluster_size(25)
        .device_memory(N * 64 * 40 / 100 + 4096)
        .victim_policy(policy)
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    (mw, root)
}

fn sweep(mw: &mut Middleware, root: obiwan_heap::ObjRef) -> usize {
    mw.set_global("cursor", Value::Ref(root));
    let mut steps = 0;
    loop {
        let cur = mw
            .global("cursor")
            .expect("cursor")
            .expect_ref()
            .expect("ref");
        match mw
            .invoke_resilient(cur, "next", vec![], 1_000)
            .expect("step")
        {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                steps += 1;
            }
            _ => break,
        }
    }
    steps
}

fn bench_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("victim_policies");
    group.sample_size(10);
    for policy in [
        VictimPolicy::LeastRecentlyUsed,
        VictimPolicy::LeastFrequentlyUsed,
        VictimPolicy::LargestFirst,
        VictimPolicy::RoundRobin,
    ] {
        let (mut mw, root) = pressured_world(policy);
        // Warm: one sweep replicates the tail and starts the swap churn.
        sweep(&mut mw, root);
        group.bench_with_input(BenchmarkId::new("sweep", policy.name()), &(), |b, ()| {
            b.iter(|| sweep(&mut mw, root))
        });
    }
    group.finish();
}

fn main() {
    let mut criterion = Criterion::default().configure_from_args();
    bench_policies(&mut criterion);
    criterion.final_summary();
}
