//! Ablation 3: victim-selection policies under memory pressure.
//!
//! A PDA-style access trace (an "album browser": mostly-sequential sweeps
//! with periodic revisits to a hot prefix) runs in a memory budget that
//! holds only a fraction of the data. The policy that picks swap-out
//! victims determines how often clusters bounce: swap-outs and reloads per
//! completed pass are the figures of merit.

use crate::{BenchError, Result};
use obiwan_core::{Middleware, VictimPolicy};
use obiwan_heap::Value;
use obiwan_replication::{standard_classes, Server};

/// Result of one policy run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VictimRow {
    /// Policy evaluated.
    pub policy: VictimPolicy,
    /// Swap-outs performed.
    pub swap_outs: u64,
    /// Reloads performed.
    pub swap_ins: u64,
    /// Payload bytes moved in both directions.
    pub bytes_moved: u64,
    /// Virtual time spent on the air.
    pub airtime_ms: u64,
}

/// The access trace: `passes` sweeps over the list, and between sweeps
/// `hot_revisits` touches of the first `hot_prefix` objects (the "favorite
/// album"). Returns the step count (for sanity checks).
fn run_trace(
    mw: &mut Middleware,
    root: obiwan_heap::ObjRef,
    passes: usize,
    hot_prefix: usize,
    hot_revisits: usize,
) -> Result<usize> {
    let cursor = |mw: &Middleware| -> Result<obiwan_heap::ObjRef> {
        mw.global("cursor")?
            .expect_ref()
            .map_err(|e| BenchError::ctx("global `cursor`", e))
    };
    let mut steps = 0;
    for _ in 0..passes {
        // Sequential sweep.
        mw.set_global("cursor", Value::Ref(root));
        loop {
            let cur = cursor(mw)?;
            match mw.invoke_resilient(cur, "next", vec![], 1_000)? {
                Value::Ref(next) => {
                    mw.set_global("cursor", Value::Ref(next));
                    steps += 1;
                }
                _ => break,
            }
        }
        // Hot-prefix revisits.
        for _ in 0..hot_revisits {
            mw.set_global("cursor", Value::Ref(root));
            for _ in 0..hot_prefix {
                let cur = cursor(mw)?;
                match mw.invoke_resilient(cur, "next", vec![], 1_000)? {
                    Value::Ref(next) => {
                        mw.set_global("cursor", Value::Ref(next));
                        steps += 1;
                    }
                    _ => break,
                }
            }
        }
    }
    Ok(steps)
}

/// Evaluate every policy on the same trace and budget.
///
/// # Errors
///
/// Setup or trace failure under any policy.
pub fn run_comparison(list_len: usize, memory_fraction_pct: usize) -> Result<Vec<VictimRow>> {
    let policies = [
        VictimPolicy::LeastRecentlyUsed,
        VictimPolicy::LeastFrequentlyUsed,
        VictimPolicy::LargestFirst,
        VictimPolicy::RoundRobin,
    ];
    let mut rows = Vec::with_capacity(policies.len());
    for policy in policies {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", list_len, crate::workloads::PAYLOAD_FOR_64B)?;
        let data_bytes = list_len * 64;
        let memory = data_bytes * memory_fraction_pct / 100 + 4096;
        let mut mw = Middleware::builder()
            .cluster_size(25)
            .device_memory(memory)
            .victim_policy(policy)
            .build(server);
        let root = mw.replicate_root(head)?;
        mw.set_global("head", Value::Ref(root));
        run_trace(&mut mw, root, 3, list_len / 10, 2)?;
        let stats = mw.stats();
        rows.push(VictimRow {
            policy,
            swap_outs: stats.swap.swap_outs,
            swap_ins: stats.swap.swap_ins,
            bytes_moved: stats.swap.bytes_swapped_out + stats.swap.bytes_swapped_in,
            airtime_ms: stats.now.as_millis(),
        });
    }
    Ok(rows)
}

/// Render the comparison.
pub fn render(rows: &[VictimRow], list_len: usize, memory_fraction_pct: usize) -> String {
    let mut out = format!(
        "Ablation 3 — Victim-selection policies under pressure\n\
         ({list_len} objects, device memory = {memory_fraction_pct}% of the data,\n\
          trace: 3 sweeps with hot-prefix revisits)\n\n\
         {:<14}{:>10}{:>10}{:>14}{:>12}\n",
        "policy", "swap-outs", "reloads", "bytes moved", "airtime"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14}{:>10}{:>10}{:>14}{:>10}ms\n",
            r.policy.to_string(),
            r.swap_outs,
            r.swap_ins,
            r.bytes_moved,
            r.airtime_ms
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn all_policies_complete_the_trace() {
        let rows = run_comparison(300, 40).unwrap();
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.swap_outs > 0, "{}: pressure must evict", r.policy);
            assert!(r.swap_ins > 0, "{}: revisits must reload", r.policy);
        }
    }

    #[test]
    fn comparison_is_deterministic() {
        // The sweep is pure simulation: identical runs must agree exactly,
        // so the ablation table in EXPERIMENTS.md is reproducible.
        let a = run_comparison(300, 40).unwrap();
        let b = run_comparison(300, 40).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn policies_actually_differ_in_behavior() {
        let rows = run_comparison(400, 40).unwrap();
        let reload_counts: std::collections::HashSet<u64> =
            rows.iter().map(|r| r.swap_ins).collect();
        // The knob is real: at least two policies produce different
        // swapping behaviour on this trace. (Which one wins is reported,
        // not asserted — that is the experiment's finding.)
        assert!(reload_counts.len() >= 2, "{rows:?}");
    }
}
