//! Ablation 9: manager contention — how maintenance throughput scales
//! with the shard count of the swapping manager's lock table.
//!
//! One mutator thread drives a fixed swap/reload/GC schedule through the
//! middleware while `threads − 1` maintenance threads hammer the
//! manager's `&self` entry points (stats snapshots, holder lookups,
//! registry scans, departure/repair sweeps) through bare `Arc` clones
//! until the mutator finishes. With a single shard every maintenance
//! probe serializes against the mutator's detach/reload commits; with a
//! sharded table probes of *other* shards proceed concurrently, so the
//! maintenance-ops count over the same mutator schedule is a direct
//! measure of lock-table parallelism.
//!
//! Wall-clock timing here measures host lock contention — exactly the
//! thing the virtual clock cannot see — so this table, unlike the swap-IO
//! sweep, is *not* snapshot-stable across machines; treat the committed
//! numbers as one machine's shape, not a contract.

use crate::Result;
use obiwan_core::{Middleware, StoreSpec, SwapError};
use obiwan_heap::Value;
use obiwan_net::DeviceKind;
use obiwan_replication::{standard_classes, Server};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One measured cell of the threads × shards grid.
#[derive(Debug, Clone)]
pub struct ContentionPoint {
    /// Shards in the manager's lock table.
    pub shards: usize,
    /// Maintenance threads racing the mutator (total threads − 1).
    pub maintenance_threads: usize,
    /// Mutator operations completed (the fixed schedule length).
    pub mutator_ops: u64,
    /// Maintenance operations completed while the mutator ran.
    pub maintenance_ops: u64,
    /// Host wall time of the run.
    pub elapsed: Duration,
}

impl ContentionPoint {
    /// Maintenance operations per millisecond of host time.
    pub fn maintenance_rate(&self) -> f64 {
        self.maintenance_ops as f64 / (self.elapsed.as_secs_f64() * 1e3).max(1e-9)
    }
}

/// Splitmix-style step for the deterministic mutator schedule.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run the full grid: every shard count × every maintenance-thread count,
/// same list and same mutator schedule per cell.
///
/// # Errors
///
/// Setup failures or unexpected mutator failures; the expected state
/// races (cluster already swapped, nothing evictable) are tolerated.
pub fn run_matrix(
    list_len: usize,
    mutator_steps: usize,
    threads: &[usize],
    shards: &[usize],
) -> Result<Vec<ContentionPoint>> {
    let mut points = Vec::new();
    for &s in shards {
        for &t in threads {
            points.push(run_cell(list_len, mutator_steps, t, s)?);
        }
    }
    Ok(points)
}

fn run_cell(
    list_len: usize,
    mutator_steps: usize,
    maintenance_threads: usize,
    shards: usize,
) -> Result<ContentionPoint> {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", list_len, crate::workloads::PAYLOAD_FOR_64B)?;
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .wire_format(obiwan_core::WireFormatKind::Binary)
        .replication_factor(2)
        .shard_count(shards)
        .stores(
            (0..3)
                .map(|i| StoreSpec::new(format!("store-{i}"), DeviceKind::Laptop, 16 << 20))
                .collect(),
        )
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![])?;

    let manager = mw.manager();
    let clusters = manager.cluster_ids();
    let app: Vec<u32> = clusters.into_iter().filter(|&c| c != 0).collect();
    let pick = |rng: &mut u64| -> u32 {
        app.get((next_rand(rng) as usize) % app.len().max(1))
            .copied()
            .unwrap_or(1)
    };

    let stop = AtomicBool::new(false);
    let maintenance_ops = AtomicU64::new(0);
    let mut mutator_err: Option<SwapError> = None;
    let mut mutator_ops = 0u64;
    // lint:allow(S7, host lock contention is the measurand; never enters a trace)
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for worker in 0..maintenance_threads as u64 {
            let manager = manager.clone();
            let stop = &stop;
            let ops = &maintenance_ops;
            let app = &app;
            scope.spawn(move || {
                let mut rng = 5000 + worker;
                while !stop.load(Ordering::Relaxed) {
                    let sc = app
                        .get((next_rand(&mut rng) as usize) % app.len().max(1))
                        .copied()
                        .unwrap_or(1);
                    match (next_rand(&mut rng) + worker) % 5 {
                        0 => {
                            let _ = manager.stats();
                        }
                        1 => {
                            let _ = manager.holders_of(sc);
                        }
                        2 => {
                            let _ = manager.cluster(sc);
                        }
                        3 => {
                            let _ = manager.loaded_clusters();
                        }
                        _ => {
                            // A sweep may race a detach mid-commit; the
                            // locks were still exercised, which is the
                            // measurand — back off a beat and move on.
                            let swept = manager.note_departures().and(manager.repair_placements());
                            if swept.is_err() {
                                std::thread::yield_now();
                            }
                        }
                    }
                    ops.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let mut rng = 42u64;
        for _ in 0..mutator_steps {
            let outcome = match next_rand(&mut rng) % 8 {
                0..=2 => match mw.swap_out(pick(&mut rng)) {
                    Ok(_)
                    | Err(SwapError::BadState { .. })
                    | Err(SwapError::NothingToSwap { .. })
                    | Err(SwapError::NoStorageDevice { .. }) => Ok(()),
                    Err(e) => Err(e),
                },
                3..=5 => match mw.swap_in(pick(&mut rng)) {
                    Ok(_) | Err(SwapError::BadState { .. }) => Ok(()),
                    Err(e) => Err(e),
                },
                6 => mw.run_gc().map(|_| ()),
                _ => mw.pump(),
            };
            match outcome {
                Ok(()) => mutator_ops += 1,
                Err(e) => {
                    mutator_err = Some(e);
                    break;
                }
            }
        }
        stop.store(true, Ordering::Relaxed);
    });
    let elapsed = t0.elapsed();
    if let Some(e) = mutator_err {
        return Err(e.into());
    }
    Ok(ContentionPoint {
        shards,
        maintenance_threads,
        mutator_ops,
        maintenance_ops: maintenance_ops.into_inner(),
        elapsed,
    })
}

/// Render the grid as a table.
pub fn render(points: &[ContentionPoint], list_len: usize, mutator_steps: usize) -> String {
    let mut out = format!(
        "Ablation 9 — Manager contention: maintenance throughput vs shard count\n\
         ({list_len}-node list, {mutator_steps} mutator ops; maintenance ops counted while the\n\
         mutator runs — host wall time, machine-dependent)\n\n"
    );
    out.push_str(&format!(
        "{:<8}{:<14}{:>14}{:>16}{:>14}\n",
        "shards", "maint thr", "mutator ops", "maint ops", "maint ops/ms"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<8}{:<14}{:>14}{:>16}{:>14.0}\n",
            p.shards,
            p.maintenance_threads,
            p.mutator_ops,
            p.maintenance_ops,
            p.maintenance_rate(),
        ));
    }
    out
}

/// Serialize the grid as a JSON array (one object per cell).
pub fn to_json(points: &[ContentionPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"shards\": {}, \"maintenance_threads\": {}, \"mutator_ops\": {}, \
                 \"maintenance_ops\": {}, \"elapsed_ms\": {:.1}}}",
                p.shards,
                p.maintenance_threads,
                p.mutator_ops,
                p.maintenance_ops,
                p.elapsed.as_secs_f64() * 1e3,
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}
