//! Ablation 2: swap-out / reload latency in *virtual* time, swept over
//! swap-cluster size and link bandwidth.
//!
//! The paper's prototype ran over Bluetooth at 700 Kbps; this sweep shows
//! how the mechanism's I/O cost scales with the two knobs an integrator
//! controls: the cluster size (bytes per swap) and the radio (airtime per
//! byte). All times come from the deterministic link model, not the wall
//! clock.

use crate::{BenchError, Result};
use obiwan_core::materialize::ClusterMaterializer;
use obiwan_core::wire::{self, WireFormatKind};
use obiwan_core::Middleware;
use obiwan_core::{codec, StoreSpec};
use obiwan_heap::Value;
use obiwan_net::{DeviceKind, LinkSpec, SimDuration};
use obiwan_replication::{standard_classes, Server};
use std::time::{Duration, Instant};

/// Read the virtual clock, turning a poisoned net lock into a
/// [`BenchError`] instead of a panic.
fn virtual_now(mw: &Middleware) -> Result<obiwan_net::SimTime> {
    Ok(mw
        .net()
        .lock()
        .map_err(|_| BenchError::msg("net lock poisoned"))?
        .now())
}

/// One measured point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SwapIoPoint {
    /// Objects per swap-cluster.
    pub cluster_size: usize,
    /// Link label ("bluetooth-700k", …).
    pub link: String,
    /// Blob size in bytes.
    pub blob_bytes: usize,
    /// Virtual time of the swap-out transfer.
    pub out_time: SimDuration,
    /// Virtual time of the reload transfer.
    pub in_time: SimDuration,
}

/// Sweep cluster sizes × links for a fixed list.
///
/// # Errors
///
/// Any middleware failure during setup, swap-out, or reload.
pub fn run_sweep(list_len: usize) -> Result<Vec<SwapIoPoint>> {
    let links: [(&str, LinkSpec); 3] = [
        ("mote-100k", LinkSpec::mote_radio()),
        ("bluetooth-700k", LinkSpec::bluetooth()),
        ("wifi-5M", LinkSpec::wifi()),
    ];
    let mut points = Vec::new();
    for cluster_size in [20, 50, 100, 200] {
        for (label, link) in links {
            let mut server = Server::new(standard_classes());
            let head = server.build_list("Node", list_len, crate::workloads::PAYLOAD_FOR_64B)?;
            let mut mw = Middleware::builder()
                .cluster_size(cluster_size)
                .device_memory(list_len * 64 * 8 + (1 << 20))
                .no_builtin_policies()
                .stores(vec![StoreSpec::new(
                    "neighbour",
                    DeviceKind::Laptop,
                    16 << 20,
                )
                .with_link(link)])
                .build(server);
            let root = mw.replicate_root(head)?;
            mw.set_global("head", Value::Ref(root));
            mw.invoke_i64(root, "length", vec![])?;

            let t0 = virtual_now(&mw)?;
            let blob_bytes = mw.swap_out(1)?;
            let t1 = virtual_now(&mw)?;
            mw.swap_in(1)?;
            let t2 = virtual_now(&mw)?;
            points.push(SwapIoPoint {
                cluster_size,
                link: label.to_string(),
                blob_bytes,
                out_time: t1 - t0,
                in_time: t2 - t1,
            });
        }
    }
    Ok(points)
}

/// One wire-format measurement: bytes-on-wire and serialization CPU for a
/// fixed captured cluster, per format.
#[derive(Debug, Clone, PartialEq)]
pub struct WireFormatPoint {
    /// Wire format label ("xml", "binary", "lz-binary").
    pub format: String,
    /// Objects per swap-cluster.
    pub cluster_size: usize,
    /// Encoded blob size — what actually crosses the radio.
    pub bytes_on_wire: usize,
    /// Mean wall-clock time of one swap-out encode: capture of the live
    /// cluster into the `Blob` IR plus wire serialization. Symmetric with
    /// [`WireFormatPoint::decode`] — both columns span heap boundary ↔
    /// wire bytes, in opposite directions.
    pub encode: Duration,
    /// Mean wall-clock time of one decode on the reload path: streaming
    /// straight into detached arena objects ([`ClusterMaterializer`]), no
    /// `Blob` IR.
    pub decode: Duration,
    /// Mean wall-clock time of one legacy decode to the `Blob` IR — kept
    /// in the table so the arena win stays visible.
    pub decode_ir: Duration,
}

/// Measure every wire format against the same captured clusters: encode a
/// cluster of each size once per format, timing encode and decode and
/// recording the bytes that would cross the radio.
///
/// # Errors
///
/// Setup, capture, or codec failure.
pub fn run_format_sweep(list_len: usize) -> Result<Vec<WireFormatPoint>> {
    const ITERS: u32 = 16;
    /// Repetitions per measurement; the fastest rep is reported. A mean
    /// over one long run is poisoned by a single scheduler hiccup (tens of
    /// µs against the ~5µs binary loops); the minimum of several short
    /// reps is the standard noise-robust estimator for CPU-bound loops
    /// and is what keeps the decode gate deterministic on shared runners.
    const REPS: u32 = 5;
    fn time_min(mut body: impl FnMut() -> Result<()>) -> Result<Duration> {
        let mut best = Duration::MAX;
        for _ in 0..REPS {
            // lint:allow(S7, host-side codec timing; never enters a trace)
            let t = Instant::now();
            for _ in 0..ITERS {
                body()?;
            }
            best = best.min(t.elapsed());
        }
        Ok(best / ITERS)
    }
    let mut points = Vec::new();
    for cluster_size in [20usize, 100] {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", list_len, crate::workloads::PAYLOAD_FOR_64B)?;
        let mut mw = Middleware::builder()
            .cluster_size(cluster_size)
            .device_memory(list_len * 64 * 8 + (1 << 20))
            .no_builtin_policies()
            .build(server);
        let root = mw.replicate_root(head)?;
        mw.set_global("head", Value::Ref(root));
        mw.invoke_i64(root, "length", vec![])?;
        let members: Vec<obiwan_heap::ObjRef> = {
            let manager = mw.manager();
            manager
                .cluster(1)?
                .members
                .iter()
                .map(|&(_, r)| r)
                .collect()
        };
        let blob = codec::capture(mw.process(), 1, 0, &members)?;
        let registry = mw.process().universe().registry.clone();
        for kind in WireFormatKind::ALL {
            let data = wire::encode_blob(kind, &blob)?;
            // Swap-out CPU: IR capture from the live heap + serialization,
            // the full heap→wire direction (the reload column below is the
            // full wire→heap direction — see `WireFormatPoint::encode`).
            let encode = time_min(|| {
                let captured = codec::capture(mw.process(), 1, 0, &members)?;
                std::hint::black_box(wire::encode_blob(kind, &captured)?);
                Ok(())
            })?;
            let decode = time_min(|| {
                let mut mat = ClusterMaterializer::new(registry.clone(), 1);
                wire::decode_blob_into(&data, &mut mat)?;
                std::hint::black_box(mat.into_parts());
                Ok(())
            })?;
            let decode_ir = time_min(|| {
                std::hint::black_box(wire::decode_blob(&data)?);
                Ok(())
            })?;
            points.push(WireFormatPoint {
                format: kind.name().to_string(),
                cluster_size,
                bytes_on_wire: data.len(),
                encode,
                decode,
                decode_ir,
            });
        }
    }
    Ok(points)
}

/// Render the format sweep as a table.
pub fn render_formats(points: &[WireFormatPoint]) -> String {
    let mut out = String::from(
        "Wire formats — bytes-on-wire and serialization CPU per format\n\
         (same captured cluster; XML is the paper-faithful default; encode\n\
         is the full swap-out direction (heap capture + serialize), decode\n\
         the full reload direction straight into arena objects, decode-ir\n\
         the legacy wire→Blob-IR parse kept for comparison)\n\n",
    );
    out.push_str(&format!(
        "{:<10}{:<14}{:>16}{:>14}{:>14}{:>14}\n",
        "objects", "format", "bytes on wire", "encode", "decode", "decode-ir"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<10}{:<14}{:>16}{:>11.1}µs{:>11.1}µs{:>11.1}µs\n",
            p.cluster_size,
            p.format,
            p.bytes_on_wire,
            p.encode.as_secs_f64() * 1e6,
            p.decode.as_secs_f64() * 1e6,
            p.decode_ir.as_secs_f64() * 1e6,
        ));
    }
    out
}

/// The CI gate the arena decode path is held to: the binary reload decode
/// (wire → materialized arena objects) must land within `2×` of the binary
/// swap-out encode (heap capture → wire) at the 100-object cluster size —
/// the paper's coarse-granularity end, where per-object overheads
/// dominate. The seed measured the reload direction at `7.5×` the
/// swap-out direction; the arena materializer is what holds it under `2×`.
///
/// # Errors
///
/// The gate point is missing from the sweep, or the ratio is exceeded.
pub fn check_decode_gate(points: &[WireFormatPoint]) -> Result<()> {
    let p = points
        .iter()
        .find(|p| p.format == "binary" && p.cluster_size == 100)
        .ok_or_else(|| BenchError::msg("gate point (binary, 100 objects) missing from sweep"))?;
    let encode_us = p.encode.as_secs_f64() * 1e6;
    let decode_us = p.decode.as_secs_f64() * 1e6;
    if decode_us > 2.0 * encode_us {
        return Err(BenchError::msg(format!(
            "binary decode {decode_us:.2}µs exceeds 2× encode {encode_us:.2}µs at 100 objects \
             — the zero-copy reload contract regressed"
        )));
    }
    Ok(())
}

/// Serialize the format sweep as JSON (for the committed
/// `BENCH_swapio.json` snapshot; hand-rolled — the workspace carries no
/// serde). `histograms` is the per-link trace-summary section from
/// [`run_trace_histograms`]; pass an empty slice to omit it.
pub fn formats_json(
    list_len: usize,
    points: &[WireFormatPoint],
    histograms: &[(String, obiwan_trace::TraceSummary)],
    contention: &[crate::contention::ContentionPoint],
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"swap_io.wire_formats\",\n");
    out.push_str(&format!("  \"list_len\": {list_len},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"format\": \"{}\", \"cluster_size\": {}, \"bytes_on_wire\": {}, \
             \"encode_us\": {:.2}, \"decode_us\": {:.2}, \"decode_ir_us\": {:.2}}}{}\n",
            p.format,
            p.cluster_size,
            p.bytes_on_wire,
            p.encode.as_secs_f64() * 1e6,
            p.decode.as_secs_f64() * 1e6,
            p.decode_ir.as_secs_f64() * 1e6,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]");
    if !histograms.is_empty() {
        out.push_str(&format!(
            ",\n  \"trace_histograms\": {}",
            trace_histograms_json(histograms)
        ));
    }
    if !contention.is_empty() {
        out.push_str(&format!(
            ",\n  \"contention\": {}",
            crate::contention::to_json(contention)
        ));
    }
    out.push_str("\n}\n");
    out
}

/// Phase-latency and size histograms of one swap workload, per link.
///
/// Unlike the point sweep above (one swap-out and one reload per cell),
/// this runs `cycles` full swap-out/reload rounds over the same link and
/// folds the run's lifecycle trace into `obiwan_trace` histograms — the
/// distribution view the committed JSON snapshot carries alongside the
/// means. Everything is virtual time, so the histograms are deterministic
/// and snapshot-stable.
///
/// # Errors
///
/// Setup or swap-cycle failure.
pub fn run_trace_histograms(
    list_len: usize,
    cycles: usize,
) -> Result<Vec<(String, obiwan_trace::TraceSummary)>> {
    let links: [(&str, LinkSpec); 3] = [
        ("mote-100k", LinkSpec::mote_radio()),
        ("bluetooth-700k", LinkSpec::bluetooth()),
        ("wifi-5M", LinkSpec::wifi()),
    ];
    let mut out = Vec::new();
    for (label, link) in links {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", list_len, crate::workloads::PAYLOAD_FOR_64B)?;
        let mut mw = Middleware::builder()
            .cluster_size(50)
            .device_memory(list_len * 64 * 8 + (1 << 20))
            .no_builtin_policies()
            .stores(vec![StoreSpec::new(
                "neighbour",
                DeviceKind::Laptop,
                16 << 20,
            )
            .with_link(link)])
            .build(server);
        let root = mw.replicate_root(head)?;
        mw.set_global("head", Value::Ref(root));
        mw.invoke_i64(root, "length", vec![])?;
        for _ in 0..cycles {
            mw.swap_out(1)?;
            mw.swap_in(1)?;
        }
        let trace = mw.export_trace();
        out.push((
            label.to_string(),
            obiwan_trace::derive::summarize(&trace.events),
        ));
    }
    Ok(out)
}

/// Serialize the per-link trace histograms as one JSON object.
pub fn trace_histograms_json(summaries: &[(String, obiwan_trace::TraceSummary)]) -> String {
    let body: Vec<String> = summaries
        .iter()
        .map(|(link, s)| format!("    \"{link}\": {}", s.to_json()))
        .collect();
    format!("{{\n{}\n  }}", body.join(",\n"))
}

/// Render the sweep as a table.
pub fn render(points: &[SwapIoPoint]) -> String {
    let mut out = String::from(
        "Ablation 2 — Swap-out / reload cost over cluster size and radio\n\
         (virtual time from the deterministic link model)\n\n",
    );
    out.push_str(&format!(
        "{:<10}{:<18}{:>12}{:>16}{:>16}\n",
        "objects", "link", "blob bytes", "swap-out", "reload"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<10}{:<18}{:>12}{:>16}{:>16}\n",
            p.cluster_size,
            p.link,
            p.blob_bytes,
            p.out_time.to_string(),
            p.in_time.to_string(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn sweep_shapes_hold() {
        let points = run_sweep(400).unwrap();
        // Bigger clusters → bigger blobs → longer transfers on each link.
        let bt: Vec<&SwapIoPoint> = points
            .iter()
            .filter(|p| p.link == "bluetooth-700k")
            .collect();
        assert!(bt.windows(2).all(|w| w[0].blob_bytes < w[1].blob_bytes));
        assert!(bt.windows(2).all(|w| w[0].out_time < w[1].out_time));
        // Faster links → shorter transfers for the same cluster size.
        let size50: Vec<&SwapIoPoint> = points.iter().filter(|p| p.cluster_size == 50).collect();
        let t = |label: &str| {
            size50
                .iter()
                .find(|p| p.link == label)
                .map(|p| p.out_time)
                .expect("point exists")
        };
        assert!(t("wifi-5M") < t("bluetooth-700k"));
        assert!(t("bluetooth-700k") < t("mote-100k"));
    }

    #[test]
    fn binary_beats_xml_on_the_wire_at_every_size() {
        let points = run_format_sweep(300).unwrap();
        for cluster_size in [20usize, 100] {
            let bytes = |format: &str| {
                points
                    .iter()
                    .find(|p| p.cluster_size == cluster_size && p.format == format)
                    .map(|p| p.bytes_on_wire)
                    .expect("point exists")
            };
            assert!(
                bytes("binary") < bytes("xml"),
                "binary {} B >= xml {} B at {cluster_size} objects",
                bytes("binary"),
                bytes("xml")
            );
            assert!(
                bytes("lz-binary") < bytes("xml"),
                "lz-binary {} B >= xml {} B at {cluster_size} objects",
                bytes("lz-binary"),
                bytes("xml")
            );
        }
    }

    #[test]
    fn arena_decode_passes_the_2x_gate() {
        // Best of three sweeps, so a scheduler hiccup on a loaded test
        // machine doesn't fail what the committed snapshot demonstrates.
        let mut last = None;
        for _ in 0..3 {
            let points = run_format_sweep(300).unwrap();
            match check_decode_gate(&points) {
                Ok(()) => return,
                Err(e) => last = Some(e),
            }
        }
        panic!("decode gate failed in all 3 sweeps: {}", last.unwrap());
    }

    #[test]
    fn format_json_snapshot_is_well_formed() {
        let points = run_format_sweep(100).unwrap();
        let histograms = run_trace_histograms(100, 2).unwrap();
        let contention = crate::contention::run_matrix(60, 50, &[1], &[1, 2]).unwrap();
        let json = formats_json(100, &points, &histograms, &contention);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"decode_ir_us\""), "arena column missing");
        assert_eq!(json.matches("\"format\"").count(), points.len());
        for kind in ["xml", "binary", "lz-binary"] {
            assert!(json.contains(kind), "missing {kind}");
        }
        for key in [
            "trace_histograms",
            "detach_us",
            "ship_airtime_us",
            "contention",
            "maintenance_ops",
        ] {
            assert!(json.contains(key), "missing {key}");
        }
    }

    #[test]
    fn trace_histograms_are_deterministic_and_ordered() {
        let a = run_trace_histograms(150, 3).unwrap();
        let b = run_trace_histograms(150, 3).unwrap();
        assert_eq!(a, b, "virtual-time histograms must be run-stable");
        // Three cycles → three detaches and three reloads per link.
        for (link, s) in &a {
            assert_eq!(s.detach_us.count(), 3, "{link}");
            assert_eq!(s.reload_us.count(), 3, "{link}");
            assert_eq!(s.blob_bytes.count(), 3, "{link}");
            assert_eq!(s.ship_airtime_us.count(), 3, "{link}");
        }
        // Slower radios cost more airtime per shipped copy.
        let max = |label: &str| {
            a.iter()
                .find(|(l, _)| l == label)
                .map(|(_, s)| s.ship_airtime_us.max())
                .expect("link present")
        };
        assert!(max("mote-100k") > max("bluetooth-700k"));
        assert!(max("bluetooth-700k") > max("wifi-5M"));
    }

    #[test]
    fn reload_time_tracks_swap_out_time() {
        let points = run_sweep(200).unwrap();
        for p in &points {
            let ratio = p.in_time.as_micros() as f64 / p.out_time.as_micros().max(1) as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "reload within 2× of swap-out: {ratio}"
            );
        }
    }
}
