//! Print the ablation tables (memory overhead, swap I/O, victim policies,
//! compression, GC cooperation).
//!
//! ```text
//! cargo run --release -p obiwan-bench --bin ablations [-- --n 10000]
//! ```

use obiwan_baselines::compress::CompressedPool;
use obiwan_bench::{memory, swapio, victims, BenchError, Result};
use obiwan_core::codec;
use obiwan_core::Middleware;
use obiwan_heap::Value;
use obiwan_net::BlobStore;
use obiwan_replication::{standard_classes, Server};
use std::time::Instant;

fn main() -> std::process::ExitCode {
    let mut n = 10_000usize;
    let args: Vec<String> = std::env::args().collect();
    match args.as_slice() {
        [_] => {}
        [_, flag, value] if flag == "--n" => {
            n = value.parse().unwrap_or(n);
        }
        _ => {
            eprintln!("usage: ablations [--n LIST_LEN]");
            return std::process::ExitCode::from(2);
        }
    }
    match run(n) {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run(n: usize) -> Result<()> {
    // Ablation 1: memory vs naive per-object proxies.
    let rows = memory::run_comparison(n)?;
    println!("{}", memory::render(&rows, n));

    // Ablation 2: swap I/O over cluster size and bandwidth.
    let points = swapio::run_sweep(n.min(2_000))?;
    println!("{}", swapio::render(&points));
    let format_points = swapio::run_format_sweep(n.min(2_000))?;
    println!("{}", swapio::render_formats(&format_points));

    // Ablation 3: victim policies (smaller list: the trace reloads a lot).
    let vn = (n / 10).max(300);
    let vrows = victims::run_comparison(vn, 40)?;
    println!("{}", victims::render(&vrows, vn, 40));

    // Ablation 4: compression baseline — CPU time and ratio vs shipping.
    println!("{}", compression_report(n.min(2_000))?);

    // Ablation 5: GC cooperation — blobs dropped after unreachability.
    println!("{}", gc_cooperation_report()?);

    // Ablation 6: grouping clusters into macro-objects.
    let gn = n.min(4_000);
    let grows = obiwan_bench::grouping::run_sweep(gn, 20, &[1, 2, 5, 10])?;
    println!("{}", obiwan_bench::grouping::render(&grows, gn, 20));

    // Ablation 7: housekeeping traffic vs the per-object offload DGC.
    let dn = (n / 20).clamp(100, 500);
    let drows = obiwan_bench::dgc_traffic::run_comparison(dn, 25, 4)?;
    println!("{}", obiwan_bench::dgc_traffic::render(&drows, dn, 4));

    // Ablation 8: reload availability and repair traffic under churn.
    let dpoints = obiwan_bench::durability::run_sweep(40)?;
    println!("{}", obiwan_bench::durability::render(&dpoints));

    // Ablation 9: manager contention over the shard-count grid.
    let (cn, csteps) = (120, 1_500);
    let cpoints = obiwan_bench::contention::run_matrix(cn, csteps, &[1, 3], &[1, 4, 8, 16])?;
    println!("{}", obiwan_bench::contention::render(&cpoints, cn, csteps));
    Ok(())
}

/// Compress real swap blobs and compare against the Bluetooth transfer the
/// paper ships them over (the \[2,3\] trade-off: CPU for airtime).
fn compression_report(list_len: usize) -> Result<String> {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", list_len, obiwan_bench::workloads::PAYLOAD_FOR_64B)?;
    let mut mw = Middleware::builder()
        .cluster_size(100)
        .device_memory(list_len * 64 * 8 + (1 << 20))
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![])?;

    // Produce the blob text for swap-cluster 1 without swapping.
    let (xml, sc_bytes) = {
        let manager = mw.manager();
        let members: Vec<obiwan_heap::ObjRef> = manager
            .cluster(1)?
            .members
            .iter()
            .map(|&(_, r)| r)
            .collect();
        let xml = codec::encode(mw.process(), 1, 0, &members)?;
        let bytes = members.len() * 64;
        (xml, bytes)
    };

    let mut pool = CompressedPool::new(1 << 20);
    let t0 = Instant::now();
    pool.store("sc-1", xml.clone().into())
        .map_err(|e| BenchError::ctx("pool store", e))?;
    let compress_time = t0.elapsed();
    let t1 = Instant::now();
    let back = pool
        .fetch("sc-1")
        .map_err(|e| BenchError::ctx("pool fetch", e))?;
    let decompress_time = t1.elapsed();
    if back[..] != *xml.as_bytes() {
        return Err(BenchError::msg("compressed pool round-trip mismatch"));
    }

    let bt = obiwan_net::LinkSpec::bluetooth();
    let ship = bt.transfer_time(xml.len());
    let ship_back = bt.transfer_time(xml.len());
    Ok(format!(
        "Ablation 4 — Compressed in-memory pool vs shipping to a neighbour\n\
         (one 100-object swap-cluster: {} B of objects, {} B of blob text)\n\n\
         {:<34}{:>14}{:>16}\n\
         {:<34}{:>11.3}ms{:>16}\n\
         {:<34}{:>11.3}ms{:>16}\n\
         {:<34}{:>14}{:>16}\n\n\
         (the pool holds {} B compressed — memory the application loses;\n\
          the paper: \"the compressed-memory pool actually reduces the\n\
          memory available to applications\")\n",
        sc_bytes,
        xml.len(),
        "path",
        "out",
        "back",
        "compress to local pool (CPU)",
        compress_time.as_secs_f64() * 1e3,
        format!("{:.3}ms", decompress_time.as_secs_f64() * 1e3),
        "ship over bluetooth (airtime)",
        ship.as_micros() as f64 / 1e3,
        format!("{:.3}ms", ship_back.as_micros() as f64 / 1e3),
        "compression ratio",
        format!("{:.2}", pool.ratio()),
        "",
        pool.used_bytes(),
    ))
}

/// Swap a cluster out, make it unreachable, collect twice, and report the
/// storing device's occupancy — the §3 GC-cooperation path.
fn gc_cooperation_report() -> Result<String> {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 30, obiwan_bench::workloads::PAYLOAD_FOR_64B)?;
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![])?;
    // Find node 9 and remember it, then swap cluster 2 out.
    let mut ninth = root;
    for _ in 0..9 {
        ninth = mw.invoke_ref(ninth, "next", vec![])?;
    }
    mw.set_global("ninth", Value::Ref(ninth));
    mw.swap_out(2)?;
    let stored_before = neighbour_bytes(&mw)?;
    // Sever the list before the swapped cluster.
    let ninth = mw
        .global("ninth")?
        .expect_ref()
        .map_err(|e| BenchError::ctx("global `ninth`", e))?;
    let handle = match obiwan_core::identity_key(mw.process(), ninth)? {
        obiwan_core::IdentityKey::Oid(oid) => mw
            .process()
            .lookup_replica(oid)
            .ok_or_else(|| BenchError::msg("ninth node has no live replica"))?,
        obiwan_core::IdentityKey::Handle(h) => h,
    };
    mw.process_mut()
        .set_field_value(handle, "next", Value::Null)?;
    mw.run_gc()?;
    mw.run_gc()?;
    let stored_after = neighbour_bytes(&mw)?;
    let stats = mw.swap_stats();
    Ok(format!(
        "Ablation 5 — GC cooperation (paper §3)\n\n\
         blob bytes on the neighbour before severing: {stored_before}\n\
         blob bytes after the cluster became unreachable + 2 collections: {stored_after}\n\
         blobs dropped by finalizer-driven instruction: {}\n\n\
         (no DGC spans the storing devices: one local decision, one drop\n\
          message — versus one liveness message per object per epoch in the\n\
          per-object offload baseline)\n",
        stats.blobs_dropped
    ))
}

fn neighbour_bytes(mw: &Middleware) -> Result<usize> {
    let net = mw.net();
    let n = net
        .lock()
        .map_err(|_| BenchError::msg("net lock poisoned"))?;
    let d = *n
        .nearby(mw.home_device())
        .first()
        .ok_or_else(|| BenchError::msg("no neighbour device"))?;
    Ok(n.stored_bytes(d)?)
}
