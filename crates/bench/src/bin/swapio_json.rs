//! Emit the wire-format swap-I/O measurements as JSON on stdout.
//!
//! ```text
//! cargo run --release -p obiwan-bench --bin swapio_json > BENCH_swapio.json
//! ```

use obiwan_bench::swapio;

fn main() {
    let list_len = 400;
    let points = swapio::run_format_sweep(list_len);
    let histograms = swapio::run_trace_histograms(list_len, 8);
    print!("{}", swapio::formats_json(list_len, &points, &histograms));
}
