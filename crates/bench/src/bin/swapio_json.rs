//! Emit the wire-format swap-I/O measurements as JSON on stdout.
//!
//! ```text
//! cargo run --release -p obiwan-bench --bin swapio_json > BENCH_swapio.json
//! ```
//!
//! Doubles as the CI decode gate: exits nonzero when the binary reload
//! decode (straight into arena objects) exceeds 2× the binary encode at
//! the 100-object cluster size — see [`swapio::check_decode_gate`].

use obiwan_bench::swapio;

fn main() -> std::process::ExitCode {
    let list_len = 400;
    match run(list_len) {
        Ok(json) => {
            print!("{json}");
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn run(list_len: usize) -> obiwan_bench::Result<String> {
    let points = swapio::run_format_sweep(list_len)?;
    swapio::check_decode_gate(&points)?;
    let histograms = swapio::run_trace_histograms(list_len, 8)?;
    let contention = obiwan_bench::contention::run_matrix(120, 1_500, &[1, 3], &[1, 4, 8, 16])?;
    Ok(swapio::formats_json(
        list_len,
        &points,
        &histograms,
        &contention,
    ))
}
