//! Emit the wire-format swap-I/O measurements as JSON on stdout.
//!
//! ```text
//! cargo run --release -p obiwan-bench --bin swapio_json > BENCH_swapio.json
//! ```

use obiwan_bench::swapio;

fn main() {
    let list_len = 400;
    let points = swapio::run_format_sweep(list_len);
    print!("{}", swapio::formats_json(list_len, &points));
}
