//! Reproduce the paper's Figure 5 table.
//!
//! ```text
//! cargo run --release -p obiwan-bench --bin fig5 [-- --n 10000 --iters 5]
//! ```
//!
//! Prints mean traversal times for tests A1/A2/B1/B2 at swap-cluster sizes
//! 20/50/100 and the no-swap-clusters floor, each cell annotated with the
//! slowdown factor and (for n = 10000) the paper's own milliseconds, then
//! the qualitative shape checks.

use obiwan_bench::fig5::run_sweep;
use obiwan_bench::with_big_stack;

fn main() -> std::process::ExitCode {
    let mut n = 10_000usize;
    let mut iters = 5usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args.get(i).map(String::as_str) {
            Some("--n") => {
                n = match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                };
                i += 2;
            }
            Some("--iters") => {
                iters = match args.get(i + 1).and_then(|v| v.parse().ok()) {
                    Some(v) => v,
                    None => return usage(),
                };
                i += 2;
            }
            _ => return usage(),
        }
    }
    let table = match with_big_stack(move || run_sweep(n, iters)).and_then(|t| t) {
        Ok(table) => table,
        Err(e) => {
            eprintln!("{e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    print!("{}", table.render());
    if !table.shape_holds() {
        eprintln!("warning: not every qualitative shape check passed");
        return std::process::ExitCode::FAILURE;
    }
    std::process::ExitCode::SUCCESS
}

fn usage() -> std::process::ExitCode {
    eprintln!("usage: fig5 [--n LIST_LEN] [--iters N]");
    std::process::ExitCode::from(2)
}
