//! Reproduce the paper's Figure 5 table.
//!
//! ```text
//! cargo run --release -p obiwan-bench --bin fig5 [-- --n 10000 --iters 5]
//! ```
//!
//! Prints mean traversal times for tests A1/A2/B1/B2 at swap-cluster sizes
//! 20/50/100 and the no-swap-clusters floor, each cell annotated with the
//! slowdown factor and (for n = 10000) the paper's own milliseconds, then
//! the qualitative shape checks.

use obiwan_bench::fig5::run_sweep;
use obiwan_bench::with_big_stack;

fn main() {
    let mut n = 10_000usize;
    let mut iters = 5usize;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--n" => {
                n = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                i += 2;
            }
            _ => usage(),
        }
    }
    let table = with_big_stack(move || run_sweep(n, iters));
    print!("{}", table.render());
    if !table.shape_holds() {
        eprintln!("warning: not every qualitative shape check passed");
        std::process::exit(1);
    }
}

fn usage() -> ! {
    eprintln!("usage: fig5 [--n LIST_LEN] [--iters N]");
    std::process::exit(2);
}
