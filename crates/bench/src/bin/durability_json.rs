//! Emit the availability-under-churn measurements as JSON on stdout.
//!
//! ```text
//! cargo run --release -p obiwan-bench --bin durability_json > BENCH_durability.json
//! ```

use obiwan_bench::durability;

fn main() {
    let rounds = 80;
    let points = durability::run_sweep(rounds);
    print!("{}", durability::to_json(rounds, &points));
}
