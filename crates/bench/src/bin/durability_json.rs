//! Emit the availability-under-churn measurements as JSON on stdout.
//!
//! ```text
//! cargo run --release -p obiwan-bench --bin durability_json > BENCH_durability.json
//! ```

use obiwan_bench::durability;

fn main() -> std::process::ExitCode {
    let rounds = 80;
    match durability::run_sweep(rounds) {
        Ok(points) => {
            print!("{}", durability::to_json(rounds, &points));
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::ExitCode::FAILURE
        }
    }
}
