//! The Figure 5 sweep: four tests × four configurations, timed on the real
//! clock, printed in the paper's row layout.

use crate::workloads::{build_fig5, run_test, Fig5Config, TESTS};
use crate::{BenchError, Result};
use std::time::Instant;

/// One measured cell of the table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cell {
    /// Best-of-N wall-clock milliseconds per traversal (minimum over the
    /// iterations — the standard anti-noise estimator for micro-benchmarks).
    pub mean_ms: f64,
    /// Slowdown relative to the *NO SWAP-CLUSTERS* column of the same row.
    pub slowdown: f64,
}

/// The measured table: `rows[test][config]` in the paper's order
/// (20, 50, 100, NO SWAP-CLUSTERS).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5Table {
    /// Column labels.
    pub columns: Vec<String>,
    /// Row labels (A1, A2, B1, B2).
    pub rows: Vec<String>,
    /// Measured cells, row-major.
    pub cells: Vec<Vec<Cell>>,
    /// List length used.
    pub list_len: usize,
    /// Iterations averaged per cell.
    pub iters: usize,
}

/// The paper's numbers (ms) for reference, same layout.
pub const PAPER_MS: [[f64; 4]; 4] = [
    [43.0, 38.0, 36.0, 35.0],     // A1
    [467.0, 398.0, 377.0, 305.0], // A2
    [339.0, 331.0, 296.0, 36.0],  // B1
    [64.0, 51.0, 49.0, 36.0],     // B2
];

/// Run the full sweep. `list_len` 10 000 and ≥3 iterations reproduce the
/// paper's setup; smaller values are useful for smoke tests.
///
/// # Errors
///
/// World construction or traversal failure, or a traversal returning the
/// wrong depth.
pub fn run_sweep(list_len: usize, iters: usize) -> Result<Fig5Table> {
    let configs = [
        Fig5Config::with_clusters(20, list_len),
        Fig5Config::with_clusters(50, list_len),
        Fig5Config::with_clusters(100, list_len),
        Fig5Config::without_clusters(list_len),
    ];
    // Build all four worlds up front, then interleave the measurements
    // round-robin across configurations so slow drift (thermal, other
    // load) biases every column equally.
    let mut worlds = Vec::with_capacity(configs.len());
    for c in &configs {
        worlds.push(build_fig5(*c)?);
    }
    // means[test][config]
    let mut means = vec![vec![f64::INFINITY; configs.len()]; TESTS.len()];
    for (test, row) in TESTS.iter().zip(means.iter_mut()) {
        // One untimed run per world to stabilize proxy populations.
        for world in &mut worlds {
            run_test(world, test)?;
        }
        for _ in 0..iters {
            for (world, slot) in worlds.iter_mut().zip(row.iter_mut()) {
                // lint:allow(S7, figure 5 reports host wall time by design)
                let start = Instant::now();
                let out = run_test(world, test)?;
                let elapsed = start.elapsed().as_secs_f64() * 1e3;
                if out as usize != list_len - 1 {
                    return Err(BenchError::msg(format!(
                        "{test} returned {out}, expected {}",
                        list_len - 1
                    )));
                }
                *slot = slot.min(elapsed);
            }
        }
    }
    let cells = means
        .iter()
        .map(|row| {
            let baseline = row.last().copied().unwrap_or(f64::INFINITY);
            row.iter()
                .map(|&mean_ms| Cell {
                    mean_ms,
                    slowdown: if baseline > 0.0 && baseline.is_finite() {
                        mean_ms / baseline
                    } else {
                        0.0
                    },
                })
                .collect()
        })
        .collect();
    Ok(Fig5Table {
        columns: configs.iter().map(Fig5Config::label).collect(),
        rows: TESTS.iter().map(|s| s.to_string()).collect(),
        cells,
        list_len,
        iters,
    })
}

impl Fig5Table {
    /// The cell at (test row, config column); `NaN`s on a malformed table
    /// so shape checks fail visibly instead of panicking.
    fn at(&self, t: usize, c: usize) -> Cell {
        self.cells
            .get(t)
            .and_then(|row| row.get(c))
            .copied()
            .unwrap_or(Cell {
                mean_ms: f64::NAN,
                slowdown: f64::NAN,
            })
    }

    /// Render the table in the paper's layout, with slowdown factors and
    /// the paper's own numbers for shape comparison.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Figure 5 — Performance impact of Object-Swapping on graph traversal\n\
             (list of {} 64-byte objects, best of {} runs; paper values in parens)\n\n",
            self.list_len, self.iters
        ));
        out.push_str(&format!("{:<6}", "Test"));
        for c in &self.columns {
            out.push_str(&format!("{c:>24}"));
        }
        out.push('\n');
        for ((row, cells), paper_row) in self.rows.iter().zip(&self.cells).zip(PAPER_MS.iter()) {
            out.push_str(&format!("{row:<6}"));
            for (cell, paper_ms) in cells.iter().zip(paper_row.iter()) {
                let paper = if self.list_len == 10_000 {
                    format!(" ({paper_ms:>3.0})")
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "{:>12.3}ms ×{:<4.2}{paper}",
                    cell.mean_ms, cell.slowdown
                ));
            }
            out.push('\n');
        }
        out.push('\n');
        out.push_str(&self.render_chart());
        out.push_str("\nShape checks (the paper's qualitative findings):\n");
        for line in self.shape_report() {
            out.push_str(&format!("  {line}\n"));
        }
        out
    }

    /// Render the measurements as grouped horizontal bars — the shape the
    /// paper's Figure 5 plots.
    pub fn render_chart(&self) -> String {
        const WIDTH: usize = 52;
        let max = self
            .cells
            .iter()
            .flatten()
            .map(|c| c.mean_ms)
            .fold(0.0f64, f64::max)
            .max(f64::MIN_POSITIVE);
        let mut out = String::new();
        for (row, cells) in self.rows.iter().zip(&self.cells) {
            out.push_str(&format!("{row}\n"));
            for (column, cell) in self.columns.iter().zip(cells.iter()) {
                let bar_len = ((cell.mean_ms / max) * WIDTH as f64).round() as usize;
                let bar: String = "█".repeat(bar_len.max(1));
                out.push_str(&format!(
                    "  {column:>16} |{bar:<WIDTH$}| {:>8.3} ms\n",
                    cell.mean_ms
                ));
            }
        }
        out
    }

    /// Verify the qualitative shape of Figure 5 and report each check.
    pub fn shape_report(&self) -> Vec<String> {
        let mut report = Vec::new();
        let cell = |t: usize, c: usize| self.at(t, c).mean_ms;
        let mut check = |name: &str, ok: bool, detail: String| {
            report.push(format!(
                "[{}] {name}: {detail}",
                if ok { "ok" } else { "MISS" }
            ));
        };
        // Overhead decreases as swap-cluster size grows (A1, A2, B1).
        for (ti, row) in ["A1", "A2", "B1"].iter().enumerate() {
            let dec = cell(ti, 0) >= cell(ti, 1) * 0.93 && cell(ti, 1) >= cell(ti, 2) * 0.93;
            check(
                &format!("{row} overhead shrinks with swap-cluster size"),
                dec,
                format!(
                    "{:.2} ≥ {:.2} ≥ {:.2}",
                    cell(ti, 0),
                    cell(ti, 1),
                    cell(ti, 2)
                ),
            );
        }
        // A1 overhead is modest (paper: ≤16 %).
        let a1 = self.at(0, 0).slowdown;
        check(
            "A1 slowdown small",
            a1 < 1.6,
            format!("×{a1:.2} at size 20 (paper ×1.23)"),
        );
        // A2 overhead is larger than A1 (extra proxies on returned refs).
        let a2 = self.at(1, 0).slowdown;
        check(
            "A2 slowdown exceeds A1",
            a2 > a1,
            format!("×{a2:.2} vs ×{a1:.2} (paper ×1.53 vs ×1.23)"),
        );
        // B1 overhead is the biggest (proxy per iteration step).
        let b1 = self.at(2, 0).slowdown;
        check(
            "B1 slowdown is the largest",
            b1 > a2,
            format!("×{b1:.2} (paper ×9.4)"),
        );
        // B2 is markedly faster than B1 (paper: "more than five-fold";
        // the ratio compresses here because creating + collecting a proxy
        // costs far less on this Rust heap than on .NET CF's allocator and
        // finalization queue — see EXPERIMENTS.md).
        let speedups: Vec<f64> = (0..3).map(|c| cell(2, c) / cell(3, c)).collect();
        let sp = |i: usize| speedups.get(i).copied().unwrap_or(f64::NAN);
        check(
            "assign optimization speeds B1 up substantially",
            speedups.iter().all(|&s| s > 1.3),
            format!(
                "B1/B2 = {:.1} / {:.1} / {:.1} (paper ~5.3 / 6.5 / 6.0)",
                sp(0),
                sp(1),
                sp(2)
            ),
        );
        // B1 == B2 == floor without swap-clusters.
        let floor_ratio = cell(2, 3) / cell(3, 3);
        check(
            "B1 and B2 coincide at the no-swap floor",
            (0.5..2.0).contains(&floor_ratio),
            format!("ratio {floor_ratio:.2} (paper 1.0)"),
        );
        report
    }

    /// True when every shape check passed.
    pub fn shape_holds(&self) -> bool {
        self.shape_report().iter().all(|l| l.starts_with("[ok]"))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn small_sweep_produces_full_table() {
        let table = crate::with_big_stack(|| run_sweep(400, 1))
            .unwrap()
            .unwrap();
        assert_eq!(table.cells.len(), 4);
        assert!(table.cells.iter().all(|r| r.len() == 4));
        assert!(table
            .cells
            .iter()
            .flatten()
            .all(|c| c.mean_ms >= 0.0 && c.slowdown >= 0.0));
        let rendered = table.render();
        assert!(rendered.contains("NO SWAP-CLUSTERS"));
        assert!(rendered.contains("A1"));
        let chart = table.render_chart();
        assert!(chart.contains('█'));
        assert_eq!(chart.matches('|').count(), 32, "two bars edges × 16 cells");
    }
}
