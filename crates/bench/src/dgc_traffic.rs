//! Ablation 7: control-message traffic — Object-Swapping's local-only GC
//! cooperation versus the per-object offload DGC of \[6, 1\] (paper §6:
//! "there must be a distributed garbage collection (DGC) algorithm
//! managing references among resident and migrated objects").
//!
//! Scenario: a device evicts a graph of `n` objects, the application then
//! discards half of it, and the system runs `epochs` of housekeeping.
//! We count every control message that crosses the air.

use crate::{BenchError, Result};
use obiwan_baselines::offload::Offloader;
use obiwan_core::Middleware;
use obiwan_heap::Value;
use obiwan_net::{DeviceKind, LinkSpec, SimNet};
use obiwan_replication::{standard_classes, Process, ReplConfig, Server};
use std::sync::{Arc, Mutex};

/// Message counts for one approach.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DgcRow {
    /// Approach label.
    pub approach: String,
    /// Data messages (blob/object shipments + fetches).
    pub data_messages: u64,
    /// Control messages (liveness reports, drop instructions).
    pub control_messages: u64,
}

/// Run the scenario with Object-Swapping (cluster-grained, local GC
/// decisions, one drop message per dead cluster).
fn swapping_row(n: usize, cluster: usize, epochs: usize) -> Result<DgcRow> {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", n, crate::workloads::PAYLOAD_FOR_64B)?;
    let mut mw = Middleware::builder()
        .cluster_size(cluster)
        .device_memory(n * 64 * 8 + (1 << 20))
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![])?;
    // Evict everything.
    let clusters = {
        let manager = mw.manager();
        manager.loaded_clusters()
    };
    let data_messages = clusters.len() as u64;
    for sc in &clusters {
        mw.swap_out(*sc)?;
    }
    // Discard the second half: drop the global route beyond node n/2 by
    // cutting inside the still-proxied graph — reload the boundary
    // cluster, cut, and re-evict it.
    let half = n / 2;
    mw.set_global("cursor", Value::Ref(root));
    for _ in 0..half - 1 {
        let cur = mw
            .global("cursor")?
            .expect_ref()
            .map_err(|e| BenchError::ctx("global `cursor`", e))?;
        let next = mw.invoke_ref(cur, "next", vec![])?;
        mw.set_global("cursor", Value::Ref(next));
    }
    let cut = mw
        .global("cursor")?
        .expect_ref()
        .map_err(|e| BenchError::ctx("global `cursor`", e))?;
    let handle = match obiwan_core::identity_key(mw.process(), cut)? {
        obiwan_core::IdentityKey::Oid(oid) => mw
            .process()
            .lookup_replica(oid)
            .ok_or_else(|| BenchError::msg("cut node has no live replica"))?,
        obiwan_core::IdentityKey::Handle(h) => h,
    };
    mw.process_mut()
        .set_field_value(handle, "next", Value::Null)?;
    // Housekeeping epochs: plain local collections.
    for _ in 0..epochs {
        mw.run_gc()?;
    }
    let stats = mw.swap_stats();
    // Control messages: the drop instructions (plus nothing per epoch —
    // all decisions are local).
    let control_messages = stats.blobs_dropped + stats.drop_failures;
    Ok(DgcRow {
        approach: format!("object-swapping ({cluster}/cluster)"),
        data_messages: data_messages + stats.swap_ins,
        control_messages,
    })
}

/// Run the scenario with per-object offload + per-object DGC.
fn offload_row(n: usize, epochs: usize) -> Result<DgcRow> {
    let u = standard_classes();
    let mut server = Server::new(u.clone());
    let head = server.build_list("Node", n, crate::workloads::PAYLOAD_FOR_64B)?;
    let mut p = Process::new(
        u,
        server.into_shared(),
        n * 64 * 8 + (1 << 20),
        ReplConfig::with_cluster_size(n),
    );
    let root = p.replicate_root(head)?;
    p.set_global("head", Value::Ref(root));
    let mut net = SimNet::new();
    let pda = net.add_device("pda", DeviceKind::Pda, 0);
    let srv = net.add_device("offload-server", DeviceKind::Desktop, 16 << 20);
    net.connect(pda, srv, LinkSpec::bluetooth())?;
    let mut off = Offloader::new(Arc::new(Mutex::new(net)), pda, srv);
    // Offload every object (walk the chain first for handles).
    let mut handles = vec![root];
    loop {
        let last = *handles
            .last()
            .ok_or_else(|| BenchError::msg("handle chain empty"))?;
        match p.field_value(last, "next")? {
            Value::Ref(r) => handles.push(r),
            _ => break,
        }
    }
    // Offload from the tail so surrogate patching stays local.
    for &h in handles.iter().rev() {
        off.offload(&mut p, h)?;
    }
    // Discard the second half: the head global keeps only the chain of
    // surrogates… per-object offload replaced each object by a surrogate
    // whose holders were patched; cutting means dropping the global that
    // anchors the second half: sever at n/2 by clearing the surrogate
    // chain — the first surrogate of the second half loses its holder
    // when we cut the (remote) link. In this baseline the cut happens on
    // the offload server's copy; locally we emulate by unrooting.
    let half = n / 2;
    // The chain is entirely remote; local surrogates for it are owned by
    // scion pins. Cut: fetch node half-1 back, null its next, re-offload.
    let cut_oid = obiwan_heap::Oid(head.0 + half as u64 - 1);
    off.fetch_back(&mut p, cut_oid)?;
    let cut_handle = p
        .lookup_replica(cut_oid)
        .ok_or_else(|| BenchError::msg("cut node missing after fetch-back"))?;
    p.set_field_value(cut_handle, "next", Value::Null)?;
    off.offload(&mut p, cut_handle)?;
    p.collect();
    // DGC epochs: one liveness message per remote object, plus
    // reclamations.
    for _ in 0..epochs {
        off.run_dgc_epoch(&mut p)?;
        p.collect();
    }
    let stats = off.stats();
    Ok(DgcRow {
        approach: "per-object offload ([6,1])".to_string(),
        data_messages: stats.offloads + stats.fetches,
        control_messages: stats.dgc_messages,
    })
}

/// Run both approaches.
///
/// # Errors
///
/// Setup or housekeeping failure in either approach.
pub fn run_comparison(n: usize, cluster: usize, epochs: usize) -> Result<Vec<DgcRow>> {
    Ok(vec![
        swapping_row(n, cluster, epochs)?,
        offload_row(n, epochs)?,
    ])
}

/// Render the comparison.
pub fn render(rows: &[DgcRow], n: usize, epochs: usize) -> String {
    let mut out = format!(
        "Ablation 7 — Housekeeping traffic: local GC cooperation vs per-object DGC\n\
         ({n} objects evicted, half discarded, {epochs} housekeeping epochs)\n\n\
         {:<34}{:>16}{:>20}\n",
        "approach", "data messages", "control messages"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<34}{:>16}{:>20}\n",
            r.approach, r.data_messages, r.control_messages
        ));
    }
    out.push_str(
        "\n(Object-Swapping makes all liveness decisions locally and sends one\n\
         drop instruction per dead *cluster*; the offload DGC reports on every\n\
         remote *object* every epoch — paper §6.)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn swapping_sends_orders_of_magnitude_fewer_control_messages() {
        let rows = run_comparison(200, 25, 4).unwrap();
        let swap = &rows[0];
        let offload = &rows[1];
        assert!(
            offload.control_messages > swap.control_messages * 10,
            "offload {} vs swapping {}",
            offload.control_messages,
            swap.control_messages
        );
        // And the dead half was actually reclaimed remotely in both.
        assert!(swap.control_messages >= 3, "dead clusters were dropped");
        assert!(offload.data_messages > swap.data_messages);
    }
}
