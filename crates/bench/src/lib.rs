//! Benchmark harness for the Object-Swapping reproduction.
//!
//! * [`workloads`] builds the paper's Figure 5 workload (a list of 10 000
//!   64-byte objects) and runs the four tests (A1, A2, B1, B2) against any
//!   swap-cluster configuration.
//! * [`fig5`] sweeps the paper's configurations (swap-cluster sizes 20, 50,
//!   100, and *no swap-clusters*) and prints the table Figure 5 plots.
//! * [`memory`] produces the §5 memory-overhead comparison against the
//!   naive one-proxy-per-object baseline (Ablation 1).
//! * [`swapio`] sweeps swap-out / reload cost over cluster size and link
//!   bandwidth in *virtual* time (Ablation 2).
//! * [`victims`] replays an album-style access trace under memory pressure
//!   for each victim policy (Ablation 3).
//! * [`grouping`] sweeps the clusters-per-swap-cluster knob (Ablation 6).
//! * [`dgc_traffic`] counts housekeeping messages against the per-object
//!   offload DGC baseline (Ablation 7).
//! * [`durability`] measures reload availability and repair traffic under
//!   seeded churn for k-way placement (Ablation 8).
//! * [`contention`] races maintenance threads against a mutator over the
//!   shard-count grid of the manager's lock table (Ablation 9).
//!
//! Binaries: `fig5` prints the headline table, `ablations` prints the rest.
//! The Criterion benches under `benches/` reuse these workloads for
//! wall-clock measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

pub mod contention;
pub mod dgc_traffic;
pub mod durability;
pub mod fig5;
pub mod grouping;
pub mod memory;
pub mod swapio;
pub mod victims;
pub mod workloads;

/// Error from a benchmark run: any layer's failure, wrapped with enough
/// context to name the step that died instead of panicking mid-figure
/// (the PR 1 `SwapError` discipline, extended to the measurement crates).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchError(pub String);

impl BenchError {
    /// Build an error from a bare message.
    pub fn msg(m: impl Into<String>) -> Self {
        BenchError(m.into())
    }

    /// Wrap an underlying error with a step label.
    pub fn ctx(step: &str, e: impl fmt::Display) -> Self {
        BenchError(format!("{step}: {e}"))
    }
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bench: {}", self.0)
    }
}

impl std::error::Error for BenchError {}

impl From<obiwan_core::SwapError> for BenchError {
    fn from(e: obiwan_core::SwapError) -> Self {
        BenchError(format!("swap: {e}"))
    }
}

impl From<obiwan_heap::HeapError> for BenchError {
    fn from(e: obiwan_heap::HeapError) -> Self {
        BenchError(format!("heap: {e}"))
    }
}

impl From<obiwan_net::NetError> for BenchError {
    fn from(e: obiwan_net::NetError) -> Self {
        BenchError(format!("net: {e}"))
    }
}

impl From<obiwan_replication::ReplError> for BenchError {
    fn from(e: obiwan_replication::ReplError) -> Self {
        BenchError(format!("replication: {e}"))
    }
}

impl From<obiwan_baselines::offload::OffloadError> for BenchError {
    fn from(e: obiwan_baselines::offload::OffloadError) -> Self {
        BenchError(format!("offload baseline: {e}"))
    }
}

/// Result alias used across the harness modules.
pub type Result<T> = std::result::Result<T, BenchError>;

/// Run `f` on a thread with a large stack.
///
/// The A1/A2 workloads recurse 10 000 levels deep through the interpreter
/// (one `Process::invoke` frame per object, as in the paper's recursive
/// tests), which overflows default stacks.
///
/// # Errors
///
/// Spawn failure or a panic inside `f`, reported as [`BenchError`].
pub fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> Result<T> {
    std::thread::Builder::new()
        .stack_size(512 << 20)
        .spawn(f)
        .map_err(|e| BenchError::ctx("spawn big-stack thread", e))?
        .join()
        .map_err(|_| BenchError::msg("big-stack thread panicked"))
}
