//! Benchmark harness for the Object-Swapping reproduction.
//!
//! * [`workloads`] builds the paper's Figure 5 workload (a list of 10 000
//!   64-byte objects) and runs the four tests (A1, A2, B1, B2) against any
//!   swap-cluster configuration.
//! * [`fig5`] sweeps the paper's configurations (swap-cluster sizes 20, 50,
//!   100, and *no swap-clusters*) and prints the table Figure 5 plots.
//! * [`memory`] produces the §5 memory-overhead comparison against the
//!   naive one-proxy-per-object baseline (Ablation 1).
//! * [`swapio`] sweeps swap-out / reload cost over cluster size and link
//!   bandwidth in *virtual* time (Ablation 2).
//! * [`victims`] replays an album-style access trace under memory pressure
//!   for each victim policy (Ablation 3).
//! * [`grouping`] sweeps the clusters-per-swap-cluster knob (Ablation 6).
//! * [`dgc_traffic`] counts housekeeping messages against the per-object
//!   offload DGC baseline (Ablation 7).
//! * [`durability`] measures reload availability and repair traffic under
//!   seeded churn for k-way placement (Ablation 8).
//!
//! Binaries: `fig5` prints the headline table, `ablations` prints the rest.
//! The Criterion benches under `benches/` reuse these workloads for
//! wall-clock measurements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dgc_traffic;
pub mod durability;
pub mod fig5;
pub mod grouping;
pub mod memory;
pub mod swapio;
pub mod victims;
pub mod workloads;

/// Run `f` on a thread with a large stack.
///
/// The A1/A2 workloads recurse 10 000 levels deep through the interpreter
/// (one `Process::invoke` frame per object, as in the paper's recursive
/// tests), which overflows default stacks.
pub fn with_big_stack<T: Send + 'static>(f: impl FnOnce() -> T + Send + 'static) -> T {
    std::thread::Builder::new()
        .stack_size(512 << 20)
        .spawn(f)
        .expect("spawn big-stack thread")
        .join()
        .expect("big-stack thread panicked")
}
