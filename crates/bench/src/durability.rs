//! Ablation 8: reload availability and repair traffic under churn.
//!
//! The paper ships exactly one copy of each swapped-out cluster, so a
//! single departed neighbour makes the data unreachable. This sweep
//! measures what `replication_factor = k` buys: for each churn rate, every
//! round swaps a cluster out, departs each storage device with the given
//! seeded probability, runs the policy pump (the `HolderLost` → repair
//! path), and then attempts the reload. Availability is the fraction of
//! reloads that found a reachable copy; repair traffic is the bytes the
//! sweep re-replicated to stay at k copies. Everything is virtual-time and
//! seeded — the sweep is deterministic.

use crate::{BenchError, Result};
use obiwan_core::{Middleware, StoreSpec, SwapConfig, SwapError};
use obiwan_heap::Value;
use obiwan_net::DeviceKind;
use obiwan_replication::{standard_classes, Server};

/// One measured point of the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct DurabilityPoint {
    /// Holder devices per swapped-out blob.
    pub replication_factor: usize,
    /// Per-round probability that each storage device departs.
    pub churn_rate: f64,
    /// Reload attempts made (one per round).
    pub rounds: usize,
    /// Reloads that found a reachable copy.
    pub available: usize,
    /// Repair actions the policy pump performed.
    pub repairs: u64,
    /// Bytes re-replicated by the repair sweep (the durability overhead).
    pub repair_bytes: u64,
}

impl DurabilityPoint {
    /// Reload availability in percent.
    pub fn availability_pct(&self) -> f64 {
        if self.rounds == 0 {
            return 100.0;
        }
        self.available as f64 * 100.0 / self.rounds as f64
    }
}

/// Splitmix-style step for the deterministic churn schedule.
fn next_rand(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`.
fn next_unit(state: &mut u64) -> f64 {
    (next_rand(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Run `rounds` swap-out / churn / repair / reload rounds for one
/// `(k, churn_rate)` configuration and return the point.
///
/// # Errors
///
/// Setup, churn scheduling, or an unexpected (non-availability) reload
/// failure.
pub fn run_point(k: usize, churn_rate: f64, rounds: usize, seed: u64) -> Result<DurabilityPoint> {
    const STORES: usize = 4;
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 40, crate::workloads::PAYLOAD_FOR_64B)?;
    // Builtin policies stay ON: the repair sweep rides the policy pump.
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .stores(
            (0..STORES)
                .map(|i| StoreSpec::new(format!("store-{i}"), DeviceKind::Laptop, 1 << 20))
                .collect(),
        )
        .swap_config(SwapConfig::default().replication_factor(k))
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![])?;
    let stores = {
        let net = mw.net();
        let net = net
            .lock()
            .map_err(|_| BenchError::msg("net lock poisoned"))?;
        net.nearby(mw.home_device())
    };

    let mut rng = seed;
    let mut away: Vec<obiwan_net::DeviceId> = Vec::new();
    let mut available = 0usize;
    for _ in 0..rounds {
        // Everyone who left last round wanders back in, and a recovery
        // reload (uncounted) clears any unavailability left behind.
        {
            let net = mw.net();
            let mut net = net
                .lock()
                .map_err(|_| BenchError::msg("net lock poisoned"))?;
            for d in away.drain(..) {
                net.arrive(d)?;
            }
        }
        mw.pump()?;
        let swapped_out = {
            let manager = mw.manager();
            manager.swapped_clusters().contains(&2)
        };
        if swapped_out {
            mw.swap_in(2)
                .map_err(|e| BenchError::ctx("recovery reload with everyone present", e))?;
        }

        mw.swap_out(2)?;
        // Churn: each storage device departs with the configured
        // probability, all in the same round.
        {
            let net = mw.net();
            let mut net = net
                .lock()
                .map_err(|_| BenchError::msg("net lock poisoned"))?;
            for &d in &stores {
                if next_unit(&mut rng) < churn_rate {
                    net.depart(d)?;
                    away.push(d);
                }
            }
        }
        // The pump notices the departures and repairs what it can.
        mw.pump()?;
        match mw.swap_in(2) {
            Ok(_) => available += 1,
            Err(SwapError::BlobUnavailable { .. }) => {}
            Err(e) => return Err(BenchError::ctx("unexpected reload failure", e)),
        }
    }
    let stats = mw.swap_stats();
    Ok(DurabilityPoint {
        replication_factor: k,
        churn_rate,
        rounds,
        available,
        repairs: stats.repairs,
        repair_bytes: stats.repair_bytes,
    })
}

/// Sweep churn rates × replication factors.
///
/// # Errors
///
/// Any point failing as in [`run_point`].
pub fn run_sweep(rounds: usize) -> Result<Vec<DurabilityPoint>> {
    let mut points = Vec::new();
    for k in [1usize, 2, 3] {
        for rate in [0.0, 0.15, 0.30, 0.50] {
            let seed = 0xD00D ^ ((k as u64) << 32) ^ (rate * 100.0) as u64;
            points.push(run_point(k, rate, rounds, seed)?);
        }
    }
    Ok(points)
}

/// Render the sweep as a table.
pub fn render(points: &[DurabilityPoint]) -> String {
    let mut out = String::from(
        "Ablation 8 — Reload availability and repair traffic under churn\n\
         (seeded depart/arrive; k = 1 is the paper's single copy)\n\n",
    );
    out.push_str(&format!(
        "{:<6}{:<12}{:>8}{:>15}{:>10}{:>15}\n",
        "k", "churn rate", "rounds", "availability", "repairs", "repair bytes"
    ));
    for p in points {
        out.push_str(&format!(
            "{:<6}{:<12.2}{:>8}{:>14.1}%{:>10}{:>15}\n",
            p.replication_factor,
            p.churn_rate,
            p.rounds,
            p.availability_pct(),
            p.repairs,
            p.repair_bytes,
        ));
    }
    out
}

/// Serialize the sweep as JSON (for the committed `BENCH_durability.json`
/// snapshot; hand-rolled — the workspace carries no serde).
pub fn to_json(rounds: usize, points: &[DurabilityPoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"durability.availability_under_churn\",\n");
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"replication_factor\": {}, \"churn_rate\": {:.2}, \
             \"availability_pct\": {:.1}, \"repairs\": {}, \"repair_bytes\": {}}}{}\n",
            p.replication_factor,
            p.churn_rate,
            p.availability_pct(),
            p.repairs,
            p.repair_bytes,
            if i + 1 == points.len() { "" } else { "," },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn clean_rooms_never_lose_a_reload() {
        for k in [1usize, 2] {
            let p = run_point(k, 0.0, 12, 7).unwrap();
            assert_eq!(p.available, p.rounds, "k={k} must be 100% with no churn");
            assert_eq!(p.repair_bytes, 0, "nothing to repair without churn");
        }
    }

    #[test]
    fn replication_buys_availability_under_heavy_churn() {
        let single = run_point(1, 0.5, 40, 11).unwrap();
        let triple = run_point(3, 0.5, 40, 11).unwrap();
        assert!(
            single.available < single.rounds,
            "heavy churn must cost the single-copy setup some reloads"
        );
        assert!(
            triple.availability_pct() > single.availability_pct(),
            "k=3 ({:.1}%) must beat k=1 ({:.1}%)",
            triple.availability_pct(),
            single.availability_pct()
        );
        assert!(
            triple.repair_bytes > 0,
            "staying at k=3 under churn costs repair traffic"
        );
    }

    #[test]
    fn json_snapshot_is_well_formed() {
        let points = run_sweep(6).unwrap();
        let json = to_json(6, &points);
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert_eq!(json.matches("\"replication_factor\"").count(), points.len());
        assert_eq!(points.len(), 12, "3 k values x 4 churn rates");
    }
}
