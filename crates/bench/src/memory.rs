//! Ablation 1: the §5 memory argument, quantified.
//!
//! "this could potentially double memory occupation when fully-loaded …
//! even when all objects were swapped, the proxies would still remain" —
//! the naive one-proxy-per-object design versus swap-clusters of 20 / 50 /
//! 100 objects, measured fully loaded and fully swapped out.

use crate::{BenchError, Result};
use obiwan_baselines::naive::{heap_breakdown, HeapBreakdown};
use obiwan_core::Middleware;
use obiwan_heap::Value;
use obiwan_replication::{standard_classes, Server};

/// One row of the memory table.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryRow {
    /// Configuration label ("naive (1)", "20", …).
    pub label: String,
    /// Composition with everything loaded.
    pub loaded: HeapBreakdown,
    /// Composition after swapping every cluster out (and collecting).
    pub swapped: HeapBreakdown,
    /// Total heap bytes loaded / swapped.
    pub total_loaded: usize,
    /// Total heap bytes after swap-out of everything.
    pub total_swapped: usize,
}

/// Build, warm, measure, swap everything, measure again.
fn measure(label: &str, cluster_size: usize, list_len: usize) -> Result<MemoryRow> {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", list_len, crate::workloads::PAYLOAD_FOR_64B)?;
    let mut mw = Middleware::builder()
        .cluster_size(cluster_size)
        .device_memory(list_len * 64 * 8 + (1 << 20))
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("head", Value::Ref(root));
    let n = mw.invoke_i64(root, "length", vec![])?;
    if n as usize != list_len {
        return Err(BenchError::msg(format!(
            "full traversal saw {n} nodes, expected {list_len}"
        )));
    }
    mw.run_gc()?;
    let loaded = heap_breakdown(&mw);
    let total_loaded = mw.process().heap().bytes_used();

    let clusters = {
        let manager = mw.manager();
        manager.loaded_clusters()
    };
    for sc in clusters {
        mw.swap_out(sc)?;
    }
    mw.run_gc()?;
    let swapped = heap_breakdown(&mw);
    let total_swapped = mw.process().heap().bytes_used();
    Ok(MemoryRow {
        label: label.to_string(),
        loaded,
        swapped,
        total_loaded,
        total_swapped,
    })
}

/// Run the comparison for the naive baseline and the paper's sizes.
///
/// # Errors
///
/// Setup, traversal, or swap-out failure for any configuration.
pub fn run_comparison(list_len: usize) -> Result<Vec<MemoryRow>> {
    let mut rows = vec![measure("naive (1/obj)", 1, list_len)?];
    for size in [20, 50, 100] {
        rows.push(measure(&size.to_string(), size, list_len)?);
    }
    Ok(rows)
}

/// Render the rows as a table.
pub fn render(rows: &[MemoryRow], list_len: usize) -> String {
    let app_bytes = rows.first().map(|r| r.loaded.app_bytes).unwrap_or(0).max(1);
    let mut out = format!(
        "Ablation 1 — Memory occupation vs the naive per-object design\n\
         (list of {list_len} 64-byte objects = {app_bytes} B of application data)\n\n\
         {:<14}{:>14}{:>12}{:>12}{:>16}{:>14}\n",
        "config", "loaded total", "proxies", "overhead", "swapped total", "left behind"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14}{:>12} B{:>12}{:>11.0}%{:>14} B{:>12} B\n",
            r.label,
            r.total_loaded,
            r.loaded.proxies,
            r.loaded.overhead_ratio() * 100.0,
            r.total_swapped,
            r.total_swapped,
        ));
    }
    out.push_str(
        "\n(\"left behind\" = bytes that remain on the device even though every\n\
         object is swapped out: proxies + replacement objects. The paper: for\n\
         the naive design, \"even when all objects were swapped, the proxies\n\
         would still remain\".)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn naive_overhead_dwarfs_swap_cluster_overhead() {
        let rows = run_comparison(300).unwrap();
        let naive = &rows[0];
        let sc100 = rows.iter().find(|r| r.label == "100").unwrap();
        // Naive: ~one proxy per object; paper's "could potentially double".
        assert!(naive.loaded.overhead_ratio() > 0.8);
        // Swap-clusters of 100: proxies only at boundaries (~1 % of naive).
        assert!(sc100.loaded.overhead_ratio() < 0.1);
        // And after swapping everything, naive leaves far more behind.
        assert!(naive.total_swapped > sc100.total_swapped * 5);
    }

    #[test]
    fn render_mentions_every_config() {
        let rows = run_comparison(100).unwrap();
        let text = render(&rows, 100);
        for label in ["naive", "20", "50", "100"] {
            assert!(text.contains(label), "{label} missing");
        }
    }
}
