//! Ablation 6: swap-cluster *grouping* — the paper's "considering a number
//! (also adaptable) of chained (via references) object clusters as a
//! single macro-object".
//!
//! At a fixed replication cluster size, grouping more clusters per
//! swap-cluster trades boundary-proxy overhead (fewer boundaries) against
//! swap granularity (bigger blobs, coarser eviction). This sweep measures
//! both ends deterministically.

use crate::Result;
use obiwan_core::Middleware;
use obiwan_heap::{ObjectKind, Value};
use obiwan_replication::{standard_classes, Server};

/// One grouping configuration's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupingRow {
    /// Replication clusters per swap-cluster.
    pub group: usize,
    /// Swap-clusters formed.
    pub swap_clusters: usize,
    /// Live boundary proxies after a full warm traversal + GC.
    pub proxies: usize,
    /// Proxy bytes (the standing memory cost of mediation).
    pub proxy_bytes: usize,
    /// Blob bytes for swapping out the first swap-cluster.
    pub blob_bytes: usize,
}

/// Sweep grouping factors at a fixed replication cluster size.
///
/// # Errors
///
/// Setup, traversal, or swap-out failure for any grouping factor.
pub fn run_sweep(
    list_len: usize,
    repl_cluster: usize,
    groups: &[usize],
) -> Result<Vec<GroupingRow>> {
    let mut rows = Vec::with_capacity(groups.len());
    for &group in groups {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", list_len, crate::workloads::PAYLOAD_FOR_64B)?;
        let mut mw = Middleware::builder()
            .cluster_size(repl_cluster)
            .clusters_per_swap_cluster(group)
            .device_memory(list_len * 64 * 8 + (1 << 20))
            .no_builtin_policies()
            .build(server);
        let root = mw.replicate_root(head)?;
        mw.set_global("head", Value::Ref(root));
        mw.invoke_i64(root, "length", vec![])?;
        mw.run_gc()?;
        let heap = mw.process().heap();
        let (proxies, proxy_bytes) = heap
            .iter_live()
            .filter_map(|r| heap.get(r).ok())
            .filter(|o| o.kind() == ObjectKind::SwapProxy)
            .fold((0, 0), |(n, b), o| (n + 1, b + o.size()));
        let swap_clusters = {
            let manager = mw.manager();
            manager.loaded_clusters().len()
        };
        let blob_bytes = mw.swap_out(1)?;
        rows.push(GroupingRow {
            group,
            swap_clusters,
            proxies,
            proxy_bytes,
            blob_bytes,
        });
    }
    Ok(rows)
}

/// Render the sweep.
pub fn render(rows: &[GroupingRow], list_len: usize, repl_cluster: usize) -> String {
    let mut out = format!(
        "Ablation 6 — Grouping replication clusters into macro-objects\n\
         ({list_len} objects, replication clusters of {repl_cluster}; the paper's\n\
          \"number (also adaptable) of chained object clusters as a single macro-object\")\n\n\
         {:<10}{:>14}{:>12}{:>14}{:>16}\n",
        "group", "swap-clusters", "proxies", "proxy bytes", "blob per swap"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<10}{:>14}{:>12}{:>14}{:>14} B\n",
            r.group, r.swap_clusters, r.proxies, r.proxy_bytes, r.blob_bytes
        ));
    }
    out.push_str(
        "\n(larger groups: fewer boundaries → fewer proxies, but coarser\n\
         eviction — each swap moves a bigger blob)\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn grouping_trades_proxies_for_blob_size() {
        let rows = run_sweep(400, 10, &[1, 2, 5]).unwrap();
        assert_eq!(rows.len(), 3);
        // Fewer swap-clusters and proxies as grouping grows…
        assert!(rows[0].swap_clusters > rows[1].swap_clusters);
        assert!(rows[1].swap_clusters > rows[2].swap_clusters);
        assert!(rows[0].proxies > rows[2].proxies);
        // …but bigger blobs per eviction.
        assert!(rows[0].blob_bytes < rows[1].blob_bytes);
        assert!(rows[1].blob_bytes < rows[2].blob_bytes);
    }

    #[test]
    fn grouped_clusters_still_reload_transparently() {
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", 100, 8).expect("build");
        let mut mw = Middleware::builder()
            .cluster_size(10)
            .clusters_per_swap_cluster(5)
            .device_memory(1 << 20)
            .no_builtin_policies()
            .build(server);
        let root = mw.replicate_root(head).expect("replicate");
        mw.set_global("head", Value::Ref(root));
        assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 100);
        // Two macro-objects of 50; swap the first.
        mw.swap_out(1).expect("swap");
        assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 100);
        assert_eq!(mw.swap_stats().swap_ins, 1);
    }
}
