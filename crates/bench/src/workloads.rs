//! The Figure 5 workload: "a list of 10000 64-byte objects" traversed by
//! "recursive and iterative invocations … of simple (quasi-empty) methods,
//! in order not to mask the overhead being measured".

use crate::{BenchError, Result};
use obiwan_core::Middleware;
use obiwan_heap::Value;
use obiwan_replication::{standard_classes, Server};

/// Node payload bytes such that one `Node` replica charges exactly 64 B:
/// 24 B object base + 2 × 16 B field slots + 8 B payload.
pub const PAYLOAD_FOR_64B: usize = 8;

/// One Figure 5 configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fig5Config {
    /// Objects per swap-cluster; `None` is the paper's *NO SWAP-CLUSTERS*
    /// lower-bound configuration (swapping disabled entirely).
    pub swap_cluster_size: Option<usize>,
    /// List length (the paper uses 10 000).
    pub list_len: usize,
}

impl Fig5Config {
    /// A configuration with swap-clusters of `size` objects.
    pub fn with_clusters(size: usize, list_len: usize) -> Self {
        Fig5Config {
            swap_cluster_size: Some(size),
            list_len,
        }
    }

    /// The no-swap-clusters baseline.
    pub fn without_clusters(list_len: usize) -> Self {
        Fig5Config {
            swap_cluster_size: None,
            list_len,
        }
    }

    /// Column label as in the paper's figure.
    pub fn label(&self) -> String {
        match self.swap_cluster_size {
            Some(n) => n.to_string(),
            None => "NO SWAP-CLUSTERS".to_string(),
        }
    }
}

/// A fully warmed-up Figure 5 world: every object replicated, every
/// boundary mediated by swap-cluster-proxies (when enabled), nothing
/// swapped out — the paper measures pure traversal overhead.
#[derive(Debug)]
pub struct Fig5World {
    /// The middleware under test.
    pub mw: Middleware,
    /// Application-level reference to the list head.
    pub root: obiwan_heap::ObjRef,
    /// The configuration it was built with.
    pub config: Fig5Config,
}

/// Build and warm a Figure 5 world.
///
/// # Errors
///
/// Any middleware failure during setup or the warm traversals.
pub fn build_fig5(config: Fig5Config) -> Result<Fig5World> {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", config.list_len, PAYLOAD_FOR_64B)?;
    let memory = (config.list_len * 64) * 8 + (1 << 20);
    let mut builder = Middleware::builder()
        .device_memory(memory)
        .no_builtin_policies();
    builder = match config.swap_cluster_size {
        Some(n) => builder.cluster_size(n).clusters_per_swap_cluster(1),
        None => builder.cluster_size(50).swapping_disabled(),
    };
    let mut mw = builder.build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("head", Value::Ref(root));
    // Warm 1: replicate everything (object faults all fire here).
    let len = mw.invoke_i64(root, "length", vec![])?;
    if len as usize != config.list_len {
        return Err(BenchError::msg(format!(
            "warm traversal saw {len} nodes, expected {}",
            config.list_len
        )));
    }
    // Warm 2: touch every boundary so proxy structures exist and the
    // measured runs exercise the steady state.
    let depth = mw.invoke_i64(root, "visit", vec![Value::Int(0)])?;
    if depth as usize != config.list_len - 1 {
        return Err(BenchError::msg(format!(
            "warm visit reached depth {depth}, expected {}",
            config.list_len - 1
        )));
    }
    Ok(Fig5World { mw, root, config })
}

/// **Test A1**: recursive traversal passing an integer depth. Returns the
/// final recursion depth (= list length − 1).
///
/// # Errors
///
/// Invocation failure (setup bug).
pub fn run_a1(world: &mut Fig5World) -> Result<i64> {
    Ok(world
        .mw
        .invoke_i64(world.root, "visit", vec![Value::Int(0)])?)
}

/// **Test A2**: A1 extended with an inner recursion of depth 10 per step
/// that returns an object reference (≈10× more invocations, plus transient
/// proxies for cross-boundary returned references).
///
/// # Errors
///
/// Invocation or collection failure (setup bug).
pub fn run_a2(world: &mut Fig5World) -> Result<i64> {
    let out = world
        .mw
        .invoke_i64(world.root, "deep_visit", vec![Value::Int(0)])?;
    // The transient proxies created for returned references are "later
    // reclaimed by the LGC" (paper §5); the collection is part of the
    // test's cost, as inline GC activity was on the .NET CF runtime.
    world.mw.run_gc()?;
    Ok(out)
}

/// Read the `cursor` global as a reference.
fn cursor_ref(mw: &Middleware) -> Result<obiwan_heap::ObjRef> {
    mw.global("cursor")?
        .expect_ref()
        .map_err(|e| BenchError::ctx("global `cursor`", e))
}

/// **Test B1**: full iteration with a `for` loop and a global variable
/// (swap-cluster-0); every returned reference is mediated afresh. Returns
/// the number of steps.
///
/// # Errors
///
/// Invocation or collection failure (setup bug).
pub fn run_b1(world: &mut Fig5World) -> Result<i64> {
    let mw = &mut world.mw;
    mw.set_global("cursor", Value::Ref(world.root));
    let mut steps = 0;
    loop {
        let cur = cursor_ref(mw)?;
        match mw.invoke(cur, "next", vec![])? {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                steps += 1;
            }
            _ => break,
        }
    }
    mw.run_gc()?;
    Ok(steps)
}

/// **Test B2**: B1 with the iteration optimization — the cursor proxy is
/// assign-marked once and patches itself per step (paper §4).
///
/// With swapping disabled there is no proxy to mark; B2 degenerates to B1,
/// matching the paper's identical 36 ms floor for both tests.
///
/// # Errors
///
/// Invocation or collection failure (setup bug).
pub fn run_b2(world: &mut Fig5World) -> Result<i64> {
    let swapping = world.config.swap_cluster_size.is_some();
    let mw = &mut world.mw;
    let cursor = if swapping {
        // The paper's `assign` marks the iterating *variable*'s own proxy;
        // it patches itself per step, leaving `head` untouched.
        mw.make_cursor(world.root)?
    } else {
        world.root
    };
    mw.set_global("cursor", Value::Ref(cursor));
    let mut steps = 0;
    loop {
        let cur = cursor_ref(mw)?;
        match mw.invoke(cur, "next", vec![])? {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                steps += 1;
            }
            _ => break,
        }
    }
    mw.run_gc()?;
    Ok(steps)
}

/// The four tests by name, for sweep drivers.
pub const TESTS: [&str; 4] = ["A1", "A2", "B1", "B2"];

/// Run one named test.
///
/// # Errors
///
/// Unknown test names or invocation failure.
pub fn run_test(world: &mut Fig5World, test: &str) -> Result<i64> {
    match test {
        "A1" => run_a1(world),
        "A2" => run_a2(world),
        "B1" => run_b1(world),
        "B2" => run_b2(world),
        other => Err(BenchError::msg(format!("unknown Figure 5 test {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::disallowed_methods)]

    use super::*;

    #[test]
    fn small_worlds_produce_expected_counts() {
        for config in [
            Fig5Config::with_clusters(20, 200),
            Fig5Config::without_clusters(200),
        ] {
            let mut world = build_fig5(config).unwrap();
            assert_eq!(run_a1(&mut world).unwrap(), 199);
            assert_eq!(run_a2(&mut world).unwrap(), 199);
            assert_eq!(run_b1(&mut world).unwrap(), 199);
            assert_eq!(run_b2(&mut world).unwrap(), 199);
        }
    }

    #[test]
    fn node_replicas_are_exactly_64_bytes() {
        let world = build_fig5(Fig5Config::with_clusters(20, 40)).unwrap();
        let p = world.mw.process();
        let node = p
            .lookup_replica(obiwan_heap::Oid(1))
            .expect("head replicated");
        assert_eq!(p.heap().get(node).unwrap().size(), 64);
    }

    #[test]
    fn b2_creates_fewer_proxies_than_b1() {
        let mut world = build_fig5(Fig5Config::with_clusters(20, 300)).unwrap();
        let s0 = world.mw.swap_stats();
        run_b1(&mut world).unwrap();
        let s1 = world.mw.swap_stats();
        run_b2(&mut world).unwrap();
        let s2 = world.mw.swap_stats();
        let b1_created = s1.proxies_created - s0.proxies_created;
        let b2_created = s2.proxies_created - s1.proxies_created;
        // B1 reuses the proxies it created on its own earlier runs, so the
        // meaningful comparison is patches: B2 self-patches per step.
        assert!(s2.assign_patches > 250, "B2 patches: {}", s2.assign_patches);
        assert!(b2_created <= b1_created);
    }

    #[test]
    fn no_swap_world_counts_zero_crossings() {
        let mut world = build_fig5(Fig5Config::without_clusters(100)).unwrap();
        run_a1(&mut world).unwrap();
        assert_eq!(world.mw.swap_stats().crossings, 0);
    }
}
