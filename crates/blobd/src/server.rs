//! The daemon: a TCP accept loop over a quota-enforcing [`MemStore`].
//!
//! One `Blobd` is one storage device as a real process. Each accepted
//! connection gets its own thread; requests on a connection are served in
//! arrival order against the shared store, so the daemon mirrors the
//! simulation's per-device serialization. Quota enforcement *is*
//! [`MemStore`]'s — the daemon wraps the exact store the simulation runs,
//! so the charge/refund symmetry the quota tests pin holds identically on
//! both sides of the wire.
//!
//! Shutdown is graceful: a `Shutdown` request (or
//! [`BlobdHandle::shutdown`]) flips a flag; the accept loop stops taking
//! connections, in-flight connections finish their current frame and see
//! `ShuttingDown` afterwards, and [`Blobd::run`] joins every connection
//! thread before returning.

use crate::frame::{
    decode_request, encode_response, encode_stat, read_frame, write_frame, FrameError, Request,
    Response, PEEK_LEN,
};
use obiwan_net::clock::RealClock;
use obiwan_net::{BlobStore, Bytes, DeviceId, MemStore, NetError};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// How long a connection thread blocks on a read before re-checking the
/// shutdown flag. Bounds both shutdown latency and how long a stalled
/// peer can pin a thread.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long the accept loop sleeps between polls.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Shared daemon state: the store plus control flags.
struct Shared {
    store: Mutex<MemStore>,
    shutdown: AtomicBool,
    ops_served: AtomicU64,
    clock: RealClock,
    started_at_us: AtomicU64,
}

impl Shared {
    fn lock_store(&self) -> std::sync::MutexGuard<'_, MemStore> {
        // A poisoned store means a peer thread panicked mid-op; the store
        // itself is a plain map and stays structurally valid, and a
        // storage daemon must keep serving the surviving replicas.
        self.store.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A handle for controlling a running daemon from another thread.
#[derive(Clone)]
pub struct BlobdHandle {
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl BlobdHandle {
    /// The address the daemon is listening on.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the daemon to stop; [`Blobd::run`] returns shortly after.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Total requests served so far.
    pub fn ops_served(&self) -> u64 {
        self.shared.ops_served.load(Ordering::SeqCst)
    }

    /// Microseconds this daemon has been up, by the sanctioned real
    /// clock seam.
    pub fn uptime_us(&self) -> u64 {
        self.shared
            .clock
            .now()
            .as_micros()
            .saturating_sub(self.shared.started_at_us.load(Ordering::SeqCst))
    }
}

/// The blob-store daemon: the paper's dumb storage device as a process.
pub struct Blobd {
    listener: TcpListener,
    shared: Arc<Shared>,
    addr: SocketAddr,
}

impl Blobd {
    /// Bind a daemon with a storage quota. Use port `0` to let the OS
    /// pick; read the result back from [`Blobd::local_addr`].
    ///
    /// # Errors
    ///
    /// The underlying bind failure.
    pub fn bind(addr: &str, quota: usize) -> io::Result<Blobd> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let clock = obiwan_net::clock::real();
        let started_at_us = AtomicU64::new(clock.now().as_micros());
        Ok(Blobd {
            listener,
            shared: Arc::new(Shared {
                // The daemon is one device; id 0 is its self-attribution
                // in store errors (clients re-attribute to their own id).
                store: Mutex::new(MemStore::new(DeviceId::from_index(0), quota)),
                shutdown: AtomicBool::new(false),
                ops_served: AtomicU64::new(0),
                clock,
                started_at_us,
            }),
            addr,
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A control handle usable from other threads.
    pub fn handle(&self) -> BlobdHandle {
        BlobdHandle {
            shared: Arc::clone(&self.shared),
            addr: self.addr,
        }
    }

    /// Serve until shut down, then join every connection thread.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O faults other than the expected non-blocking
    /// `WouldBlock`.
    pub fn run(self) -> io::Result<()> {
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&self.shared);
                    conns.push(std::thread::spawn(move || serve_conn(stream, &shared)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        for h in conns {
            let _ = h.join();
        }
        Ok(())
    }

    /// Bind on a loopback ephemeral port and serve on a background
    /// thread — the in-process deployment the loopback tests and the
    /// actor runtime's scripted worlds use.
    ///
    /// # Errors
    ///
    /// As [`Blobd::bind`].
    pub fn spawn_local(quota: usize) -> io::Result<BlobdHandle> {
        let daemon = Blobd::bind("127.0.0.1:0", quota)?;
        let handle = daemon.handle();
        std::thread::spawn(move || {
            let _ = daemon.run();
        });
        Ok(handle)
    }
}

/// Serve one connection until close, fatal framing fault, or shutdown.
fn serve_conn(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut reader = io::BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = io::BufWriter::new(stream);
    loop {
        let body = match read_frame(&mut reader) {
            Ok(body) => body,
            Err(FrameError::Closed) => return,
            Err(FrameError::Io { kind, .. })
                if kind == io::ErrorKind::WouldBlock || kind == io::ErrorKind::TimedOut =>
            {
                // Idle poll tick: re-check shutdown, keep the connection.
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
            Err(FrameError::Io { .. }) => return,
            Err(fatal @ FrameError::Oversized { .. }) => {
                // The stream cannot be resynchronized after a corrupt
                // length prefix: report and drop the connection.
                let resp = Response::Malformed {
                    detail: fatal.to_string(),
                };
                let _ = write_frame(&mut writer, &encode_response(&resp));
                return;
            }
            Err(other) => {
                let resp = Response::Malformed {
                    detail: other.to_string(),
                };
                let _ = write_frame(&mut writer, &encode_response(&resp));
                return;
            }
        };
        let resp = match decode_request(&body) {
            // Frame boundaries survived but the body is corrupt: the
            // connection stays usable for the next frame.
            Err(bad) => Response::Malformed {
                detail: bad.to_string(),
            },
            Ok(req) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    Response::ShuttingDown
                } else {
                    apply(shared, req)
                }
            }
        };
        shared.ops_served.fetch_add(1, Ordering::SeqCst);
        if write_frame(&mut writer, &encode_response(&resp)).is_err() {
            return;
        }
    }
}

/// Apply one decoded request to the store.
fn apply(shared: &Shared, req: Request) -> Response {
    match req {
        Request::Store { key, data } => match shared.lock_store().store(&key, data) {
            Ok(()) => Response::Ok {
                payload: Bytes::new(),
            },
            Err(e) => error_response(e),
        },
        Request::Fetch { key } => match shared.lock_store().fetch(&key) {
            Ok(data) => Response::Ok { payload: data },
            Err(e) => error_response(e),
        },
        Request::Drop { key } => match shared.lock_store().drop_blob(&key) {
            Ok(()) => Response::Ok {
                payload: Bytes::new(),
            },
            Err(e) => error_response(e),
        },
        Request::PeekHeader { key } => match shared.lock_store().peek(&key) {
            Some(data) => {
                let head = data.get(..PEEK_LEN.min(data.len())).unwrap_or_default();
                Response::Ok {
                    payload: Bytes::copy_from_slice(head),
                }
            }
            None => Response::UnknownBlob,
        },
        Request::Stat => {
            let store = shared.lock_store();
            let payload = encode_stat(
                store.used_bytes() as u64,
                store.quota() as u64,
                store.blob_count() as u64,
            );
            Response::Ok {
                payload: Bytes::from(payload),
            }
        }
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            Response::Ok {
                payload: Bytes::new(),
            }
        }
    }
}

/// Map a store-side [`NetError`] onto the wire status vocabulary.
fn error_response(e: NetError) -> Response {
    match e {
        NetError::UnknownBlob { .. } => Response::UnknownBlob,
        NetError::DuplicateBlob { .. } => Response::Duplicate,
        NetError::QuotaExceeded {
            requested,
            used,
            quota,
            ..
        } => Response::QuotaExceeded {
            requested: requested as u64,
            used: used as u64,
            quota: quota as u64,
        },
        NetError::InjectedFailure { .. } => Response::Injected,
        other => Response::Malformed {
            detail: other.to_string(),
        },
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use crate::client::RemoteStore;

    #[test]
    fn spawned_daemon_serves_the_three_verbs() {
        let handle = Blobd::spawn_local(1 << 20).unwrap();
        let mut store = RemoteStore::connect(DeviceId::from_index(1), handle.addr());
        let data = Bytes::from_static(b"<swap-cluster/>");
        store.store("k1", data.clone()).unwrap();
        assert!(store.contains("k1"));
        assert_eq!(store.fetch("k1").unwrap(), data);
        store.drop_blob("k1").unwrap();
        assert!(!store.contains("k1"));
        assert!(handle.ops_served() >= 4);
        handle.shutdown();
    }

    #[test]
    fn quota_violation_carries_the_accounting() {
        let handle = Blobd::spawn_local(8).unwrap();
        let mut store = RemoteStore::connect(DeviceId::from_index(1), handle.addr());
        let err = store
            .store("key-much-longer-than-quota", Bytes::from_static(b"xxxx"))
            .unwrap_err();
        assert!(matches!(err, NetError::QuotaExceeded { quota: 8, .. }));
        handle.shutdown();
    }
}
