//! `obiwan-blobd` — the paper's "dumb storage device" as a real process.
//!
//! The paper requires of a storage device only that it "store and return a
//! textual representation of the serialized objects". PRs 0–7 modelled
//! that device inside the [`obiwan_net::SimNet`] simulation; this crate is
//! the same three-verb store as a standalone TCP daemon, so the swap
//! fabric can run as the distributed system the paper describes: a PDA's
//! middleware detaching swap-clusters and shipping the self-describing
//! `WireFormat` blobs to live neighbour processes.
//!
//! # Wire protocol
//!
//! Every message is one frame: `[u32 LE body-length][body]`, bodies capped
//! at [`frame::MAX_FRAME`]. Requests are `[op][key_len u16 LE][key][payload]`,
//! responses `[status][payload]`:
//!
//! | op | name | payload → | reply payload |
//! |----|------|-----------|---------------|
//! | 1 | `store` | blob bytes | empty |
//! | 2 | `fetch` | — | blob bytes |
//! | 3 | `drop` | — | empty |
//! | 4 | `peek_header` | — | first ≤ 64 B of the blob |
//! | 5 | `stat` | — | used, quota, count (3 × u64 LE) |
//! | 6 | `shutdown` | — | empty |
//!
//! | status | meaning |
//! |--------|---------|
//! | 0 | ok |
//! | 1 | unknown blob |
//! | 2 | duplicate key |
//! | 3 | quota exceeded (payload: requested/used/quota, 3 × u64 LE) |
//! | 4 | malformed request |
//! | 5 | injected failure |
//! | 6 | shutting down |
//!
//! The daemon wraps the simulation's own [`obiwan_net::MemStore`], so
//! quota accounting (keys charged and refunded symmetrically with
//! payloads) is byte-identical on both sides of the wire. The
//! [`RemoteStore`] client implements [`obiwan_net::BlobStore`] over this
//! protocol with per-op timeouts and bounded reconnect-retry, mapping a
//! dead daemon to [`obiwan_net::NetError::Departed`] (so the core's
//! ordered failover works unchanged) and corruption to the hard
//! [`obiwan_net::NetError::Protocol`].
//!
//! Real time enters only through [`obiwan_net::clock::real`] — the
//! workspace's single sanctioned wall-clock seam (lint S7).

pub mod client;
pub mod frame;
pub mod server;

pub use client::RemoteStore;
pub use frame::{FrameError, Request, Response, MAX_FRAME, PEEK_LEN};
pub use server::{Blobd, BlobdHandle};
