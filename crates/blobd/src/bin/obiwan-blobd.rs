//! The `obiwan-blobd` daemon binary: a dumb storage device as a process.
//!
//! ```text
//! obiwan-blobd [--addr 127.0.0.1:0] [--quota BYTES]
//! ```
//!
//! Prints `obiwan-blobd listening on <addr>` on stdout once bound (parents
//! that spawn it with port 0 read the chosen port from that line), then
//! serves until a `shutdown` op arrives.

use obiwan_blobd::Blobd;
use std::io::Write;

const USAGE: &str = "usage: obiwan-blobd [--addr HOST:PORT] [--quota BYTES]

  --addr HOST:PORT   listen address (default 127.0.0.1:0 = ephemeral port)
  --quota BYTES      storage quota in bytes (default 16777216 = 16 MiB)
";

fn main() {
    let mut addr = String::from("127.0.0.1:0");
    let mut quota: usize = 16 * 1024 * 1024;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => die("--addr needs a value"),
            },
            "--quota" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => quota = v,
                None => die("--quota needs an integer byte count"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }

    let daemon = match Blobd::bind(&addr, quota) {
        Ok(d) => d,
        Err(e) => die(&format!("bind {addr}: {e}")),
    };
    println!("obiwan-blobd listening on {}", daemon.local_addr());
    let _ = std::io::stdout().flush();
    if let Err(e) = daemon.run() {
        die(&format!("serve: {e}"));
    }
}

fn die(msg: &str) -> ! {
    eprintln!("obiwan-blobd: {msg}\n{USAGE}");
    std::process::exit(2);
}
