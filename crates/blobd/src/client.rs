//! `RemoteStore`: a [`BlobStore`] whose bytes live in an `obiwan-blobd`
//! process.
//!
//! The client owns one lazily-established TCP connection behind a mutex
//! (the read-only trait methods `contains`/`used_bytes`/`blob_count` take
//! `&self`), applies per-operation timeouts, and retries each call a
//! bounded number of times with a fresh connection. Failure mapping is the
//! heart of the design: a dead, refused or timed-out daemon surfaces as
//! [`NetError::Departed`] — exactly the error the swapping core's k-way
//! fan-out, ordered failover reload and repair sweep already treat as
//! "move on to the next holder" — while a corrupt frame surfaces as the
//! hard [`NetError::Protocol`], because failover must not paper over
//! corruption.

use crate::frame::{
    decode_response, decode_stat, encode_request, read_frame, write_frame, FrameError, Request,
    Response,
};
use obiwan_net::{BlobStore, Bytes, DeviceId, NetError};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Per-operation socket timeout (connect, read and write).
const OP_TIMEOUT: Duration = Duration::from_secs(2);

/// Connection attempts per call before declaring the daemon departed.
const MAX_ATTEMPTS: u32 = 3;

/// A blob store client speaking the framed protocol to one daemon.
pub struct RemoteStore {
    device: DeviceId,
    addr: SocketAddr,
    conn: Mutex<Option<TcpStream>>,
}

/// What one wire call produced, plus whether the connection had to be
/// re-established mid-call (which makes a `Duplicate` on a retried store
/// ambiguous — see [`RemoteStore::store_blob`]).
struct CallOutcome {
    response: Response,
    reconnected: bool,
}

impl RemoteStore {
    /// A client for the daemon at `addr`, attributing errors to `device`
    /// (the id this store plays in the caller's world). The connection is
    /// established lazily on first use.
    pub fn connect(device: DeviceId, addr: SocketAddr) -> RemoteStore {
        RemoteStore {
            device,
            addr,
            conn: Mutex::new(None),
        }
    }

    /// The daemon's address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn departed(&self) -> NetError {
        NetError::Departed {
            device: self.device,
        }
    }

    fn protocol(&self, detail: impl std::fmt::Display) -> NetError {
        NetError::Protocol {
            device: self.device,
            detail: detail.to_string(),
        }
    }

    fn dial(&self) -> io::Result<TcpStream> {
        let stream = TcpStream::connect_timeout(&self.addr, OP_TIMEOUT)?;
        stream.set_read_timeout(Some(OP_TIMEOUT))?;
        stream.set_write_timeout(Some(OP_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    /// Take the cached connection, leaving the slot empty.
    fn take_conn(&self) -> Option<TcpStream> {
        self.conn.lock().unwrap_or_else(|p| p.into_inner()).take()
    }

    /// Stow a healthy connection back for the next call. If another call
    /// raced us and stowed its own, the newer one wins and ours is
    /// dropped — briefly redundant, never wrong.
    fn stow_conn(&self, stream: TcpStream) {
        *self.conn.lock().unwrap_or_else(|p| p.into_inner()) = Some(stream);
    }

    /// One request/response exchange with bounded reconnect-and-retry.
    ///
    /// The `conn` mutex is held only to take the cached stream out and to
    /// stow it back: every dial and wire exchange runs lock-free, so a
    /// slow or dead daemon stalls only the calling thread, never other
    /// threads parked on the client's lock.
    fn call(&self, req: &Request) -> Result<CallOutcome, NetError> {
        let body = encode_request(req);
        let mut cached = self.take_conn();
        let mut reconnected = false;
        for _attempt in 0..MAX_ATTEMPTS {
            if cached.is_none() {
                reconnected = true;
                match self.dial() {
                    Ok(s) => cached = Some(s),
                    Err(_) => continue, // daemon down; next attempt re-dials
                }
            }
            let Some(stream) = cached.as_mut() else {
                continue;
            };
            let exchanged = write_frame(stream, &body).and_then(|()| read_frame(stream));
            match exchanged {
                Ok(resp_body) => {
                    // The wire exchange succeeded, so the connection is
                    // healthy — stow it whatever the payload says.
                    if let Some(stream) = cached.take() {
                        self.stow_conn(stream);
                    }
                    let response = decode_response(&resp_body).map_err(|e| self.protocol(&e))?;
                    if let Response::Malformed { detail } = response {
                        return Err(self.protocol(detail));
                    }
                    return Ok(CallOutcome {
                        response,
                        reconnected,
                    });
                }
                Err(FrameError::Oversized { .. } | FrameError::UnknownStatus(_)) => {
                    return Err(self.protocol("corrupt response frame"));
                }
                Err(_io_or_truncation) => {
                    // Dead socket, timeout or mid-frame stall: reconnect
                    // and retry with the next attempt.
                    cached = None;
                }
            }
        }
        Err(self.departed())
    }

    fn store_blob(&self, key: &str, data: Bytes) -> Result<(), NetError> {
        let out = self.call(&Request::Store {
            key: key.to_owned(),
            data,
        })?;
        match out.response {
            Response::Ok { .. } => Ok(()),
            // If the connection dropped after the daemon applied a store
            // but before its reply arrived, the retried store sees
            // `Duplicate` for a blob that *is* durably stored. Keys are
            // epoch-unique (`dev{home}-sc{sc}-e{epoch}`), so a duplicate
            // on a reconnected call can only be our own first attempt.
            Response::Duplicate if out.reconnected => Ok(()),
            other => Err(self.response_error(other, "store", key)),
        }
    }

    /// Map a non-`Ok` response to the caller-side error vocabulary.
    fn response_error(&self, resp: Response, op: &'static str, key: &str) -> NetError {
        match resp {
            Response::Ok { .. } => self.protocol("Ok response routed to error mapping"),
            Response::UnknownBlob => NetError::UnknownBlob {
                device: self.device,
                key: key.to_owned(),
            },
            Response::Duplicate => NetError::DuplicateBlob {
                device: self.device,
                key: key.to_owned(),
            },
            Response::QuotaExceeded {
                requested,
                used,
                quota,
            } => NetError::QuotaExceeded {
                device: self.device,
                requested: requested as usize,
                used: used as usize,
                quota: quota as usize,
            },
            Response::Injected => NetError::InjectedFailure {
                device: self.device,
                op,
            },
            Response::Malformed { detail } => self.protocol(detail),
            Response::ShuttingDown => self.departed(),
        }
    }

    /// `(used_bytes, quota, blob_count)` from the daemon's `Stat` op.
    ///
    /// # Errors
    ///
    /// [`NetError::Departed`] for a dead daemon, [`NetError::Protocol`]
    /// for a corrupt reply.
    pub fn stat(&self) -> Result<(u64, u64, u64), NetError> {
        let out = self.call(&Request::Stat)?;
        match out.response {
            Response::Ok { payload } => decode_stat(&payload).map_err(|e| self.protocol(&e)),
            other => Err(self.response_error(other, "stat", "")),
        }
    }

    /// Ask the daemon to shut down gracefully.
    ///
    /// # Errors
    ///
    /// As [`RemoteStore::stat`].
    pub fn shutdown_daemon(&self) -> Result<(), NetError> {
        let out = self.call(&Request::Shutdown)?;
        match out.response {
            Response::Ok { .. } => Ok(()),
            other => Err(self.response_error(other, "shutdown", "")),
        }
    }
}

impl std::fmt::Debug for RemoteStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteStore")
            .field("device", &self.device)
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl BlobStore for RemoteStore {
    fn store(&mut self, key: &str, data: Bytes) -> obiwan_net::Result<()> {
        self.store_blob(key, data)
    }

    fn fetch(&mut self, key: &str) -> obiwan_net::Result<Bytes> {
        let out = self.call(&Request::Fetch {
            key: key.to_owned(),
        })?;
        match out.response {
            Response::Ok { payload } => Ok(payload),
            other => Err(self.response_error(other, "fetch", key)),
        }
    }

    fn drop_blob(&mut self, key: &str) -> obiwan_net::Result<()> {
        let out = self.call(&Request::Drop {
            key: key.to_owned(),
        })?;
        match out.response {
            Response::Ok { .. } => Ok(()),
            // Symmetric to the store-retry case: if the daemon applied
            // the drop but the reply was lost, the retry sees the key
            // already gone.
            Response::UnknownBlob if out.reconnected => Ok(()),
            other => Err(self.response_error(other, "drop", key)),
        }
    }

    fn contains(&self, key: &str) -> bool {
        self.call(&Request::PeekHeader {
            key: key.to_owned(),
        })
        .is_ok_and(|out| matches!(out.response, Response::Ok { .. }))
    }

    fn used_bytes(&self) -> usize {
        self.stat().map(|(used, _, _)| used as usize).unwrap_or(0)
    }

    fn blob_count(&self) -> usize {
        self.stat().map(|(_, _, n)| n as usize).unwrap_or(0)
    }
}
