//! Length-prefixed framing of the three-verb protocol.
//!
//! Every message on the wire is one frame: a 4-byte little-endian body
//! length followed by the body. Request bodies are
//! `[op u8][key_len u16 LE][key bytes][payload]`; response bodies are
//! `[status u8][payload]`. The payload of a `Store` request and of a
//! successful `Fetch` response is the self-describing `WireFormat` blob
//! exactly as the simulation ships it — the daemon never inspects it,
//! faithful to the paper's "dumb storage device".
//!
//! Decoding is total: any truncated, oversized or corrupt input maps to a
//! structured [`FrameError`], never a panic (the framing proptests in
//! `tests/framing.rs` drive truncation at every byte offset, the same
//! pattern the core wire formats are pinned with).

use obiwan_net::Bytes;
use std::io::{Read, Write};

/// Hard cap on a frame body. A swap blob at the repo's largest benchmark
/// sizes is well under a megabyte; anything beyond this is corruption or
/// abuse, and is rejected before any allocation.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Bytes returned by a `PeekHeader` response: enough to cover every
/// self-describing `WireFormat` header.
pub const PEEK_LEN: usize = 64;

/// A structured framing/decoding fault. Every decoding path returns one of
/// these; none panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// The body (or a field inside it) ended before its declared length.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME`].
    Oversized {
        /// Declared body length.
        len: usize,
        /// The cap it violated.
        max: usize,
    },
    /// The op byte is not part of the protocol.
    UnknownOp(u8),
    /// The status byte is not part of the protocol.
    UnknownStatus(u8),
    /// The key bytes are not valid UTF-8.
    BadKey,
    /// The body carries bytes past the end of the decoded message.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// An I/O fault on the underlying stream (includes read timeouts).
    Io {
        /// The I/O error kind.
        kind: std::io::ErrorKind,
        /// Human-readable detail.
        detail: String,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed at frame boundary"),
            FrameError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} B, got {got} B")
            }
            FrameError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} B declared, cap is {max} B")
            }
            FrameError::UnknownOp(op) => write!(f, "unknown op byte {op:#04x}"),
            FrameError::UnknownStatus(s) => write!(f, "unknown status byte {s:#04x}"),
            FrameError::BadKey => write!(f, "frame key is not valid UTF-8"),
            FrameError::TrailingBytes { extra } => {
                write!(f, "{extra} B of trailing garbage after the message")
            }
            FrameError::Io { kind, detail } => write!(f, "i/o fault ({kind:?}): {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io {
            kind: e.kind(),
            detail: e.to_string(),
        }
    }
}

/// A decoded request body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Store `data` under `key`.
    Store {
        /// Blob key.
        key: String,
        /// Opaque blob bytes.
        data: Bytes,
    },
    /// Return the blob under `key`.
    Fetch {
        /// Blob key.
        key: String,
    },
    /// Drop the blob under `key`.
    Drop {
        /// Blob key.
        key: String,
    },
    /// Return the first [`PEEK_LEN`] bytes of the blob under `key`
    /// (control plane: cheap existence/header checks without airtime).
    PeekHeader {
        /// Blob key.
        key: String,
    },
    /// Report `(used_bytes, quota, blob_count)`.
    Stat,
    /// Ask the daemon to stop accepting work and exit.
    Shutdown,
}

/// A decoded response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Success; the payload depends on the request op.
    Ok {
        /// `Fetch` → the blob; `PeekHeader` → its prefix; `Stat` →
        /// three LE u64 counters; otherwise empty.
        payload: Bytes,
    },
    /// The key is not stored here.
    UnknownBlob,
    /// The key is already stored here.
    Duplicate,
    /// Storing would exceed the quota.
    QuotaExceeded {
        /// Bytes the store needed.
        requested: u64,
        /// Bytes already charged.
        used: u64,
        /// The daemon's quota.
        quota: u64,
    },
    /// The daemon could not decode the request.
    Malformed {
        /// What the daemon rejected.
        detail: String,
    },
    /// A deterministic injected failure fired (fault-injection testing).
    Injected,
    /// The daemon is shutting down and refuses new work.
    ShuttingDown,
}

const OP_STORE: u8 = 1;
const OP_FETCH: u8 = 2;
const OP_DROP: u8 = 3;
const OP_PEEK: u8 = 4;
const OP_STAT: u8 = 5;
const OP_SHUTDOWN: u8 = 6;

const ST_OK: u8 = 0;
const ST_UNKNOWN_BLOB: u8 = 1;
const ST_DUPLICATE: u8 = 2;
const ST_QUOTA: u8 = 3;
const ST_MALFORMED: u8 = 4;
const ST_INJECTED: u8 = 5;
const ST_SHUTTING_DOWN: u8 = 6;

/// Bounded-consumption reader over a frame body.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self.pos.checked_add(n).ok_or(FrameError::Oversized {
            len: usize::MAX,
            max: MAX_FRAME,
        })?;
        let got = self.buf.get(self.pos..end).ok_or(FrameError::Truncated {
            needed: n,
            got: self.buf.len().saturating_sub(self.pos),
        })?;
        self.pos = end;
        Ok(got)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        self.take(1).map(|b| b.first().copied().unwrap_or_default())
    }

    fn u16_le(&mut self) -> Result<u16, FrameError> {
        let b = self.take(2)?;
        let arr: [u8; 2] = b.try_into().map_err(|_| FrameError::Truncated {
            needed: 2,
            got: b.len(),
        })?;
        Ok(u16::from_le_bytes(arr))
    }

    fn u64_le(&mut self) -> Result<u64, FrameError> {
        let b = self.take(8)?;
        let arr: [u8; 8] = b.try_into().map_err(|_| FrameError::Truncated {
            needed: 8,
            got: b.len(),
        })?;
        Ok(u64::from_le_bytes(arr))
    }

    fn rest(&mut self) -> &'a [u8] {
        let out = self.buf.get(self.pos..).unwrap_or_default();
        self.pos = self.buf.len();
        out
    }

    fn finish(self) -> Result<(), FrameError> {
        let extra = self.buf.len().saturating_sub(self.pos);
        if extra > 0 {
            return Err(FrameError::TrailingBytes { extra });
        }
        Ok(())
    }
}

fn decode_key(c: &mut Cursor<'_>) -> Result<String, FrameError> {
    let len = usize::from(c.u16_le()?);
    let raw = c.take(len)?;
    std::str::from_utf8(raw)
        .map(str::to_owned)
        .map_err(|_| FrameError::BadKey)
}

/// Encode a request body (no length prefix).
pub fn encode_request(req: &Request) -> Vec<u8> {
    fn keyed(op: u8, key: &str, payload: &[u8]) -> Vec<u8> {
        let key = key.as_bytes();
        let key_len = u16::try_from(key.len()).unwrap_or(u16::MAX);
        let key = key.get(..usize::from(key_len)).unwrap_or_default();
        let mut out = Vec::with_capacity(3 + key.len() + payload.len());
        out.push(op);
        out.extend_from_slice(&key_len.to_le_bytes());
        out.extend_from_slice(key);
        out.extend_from_slice(payload);
        out
    }
    match req {
        Request::Store { key, data } => keyed(OP_STORE, key, data),
        Request::Fetch { key } => keyed(OP_FETCH, key, &[]),
        Request::Drop { key } => keyed(OP_DROP, key, &[]),
        Request::PeekHeader { key } => keyed(OP_PEEK, key, &[]),
        Request::Stat => keyed(OP_STAT, "", &[]),
        Request::Shutdown => keyed(OP_SHUTDOWN, "", &[]),
    }
}

/// Decode a request body (no length prefix).
///
/// # Errors
///
/// Any structural fault as a [`FrameError`]; decoding never panics.
pub fn decode_request(body: &[u8]) -> Result<Request, FrameError> {
    let mut c = Cursor::new(body);
    let op = c.u8()?;
    let key = decode_key(&mut c)?;
    let req = match op {
        OP_STORE => Request::Store {
            key,
            data: Bytes::copy_from_slice(c.rest()),
        },
        OP_FETCH => Request::Fetch { key },
        OP_DROP => Request::Drop { key },
        OP_PEEK => Request::PeekHeader { key },
        OP_STAT => Request::Stat,
        OP_SHUTDOWN => Request::Shutdown,
        other => return Err(FrameError::UnknownOp(other)),
    };
    c.finish()?;
    Ok(req)
}

/// Encode a response body (no length prefix).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Ok { payload } => {
            let mut out = Vec::with_capacity(1 + payload.len());
            out.push(ST_OK);
            out.extend_from_slice(payload);
            out
        }
        Response::UnknownBlob => vec![ST_UNKNOWN_BLOB],
        Response::Duplicate => vec![ST_DUPLICATE],
        Response::QuotaExceeded {
            requested,
            used,
            quota,
        } => {
            let mut out = Vec::with_capacity(25);
            out.push(ST_QUOTA);
            out.extend_from_slice(&requested.to_le_bytes());
            out.extend_from_slice(&used.to_le_bytes());
            out.extend_from_slice(&quota.to_le_bytes());
            out
        }
        Response::Malformed { detail } => {
            let mut out = Vec::with_capacity(1 + detail.len());
            out.push(ST_MALFORMED);
            out.extend_from_slice(detail.as_bytes());
            out
        }
        Response::Injected => vec![ST_INJECTED],
        Response::ShuttingDown => vec![ST_SHUTTING_DOWN],
    }
}

/// Decode a response body (no length prefix).
///
/// # Errors
///
/// Any structural fault as a [`FrameError`]; decoding never panics.
pub fn decode_response(body: &[u8]) -> Result<Response, FrameError> {
    let mut c = Cursor::new(body);
    let status = c.u8()?;
    let resp = match status {
        ST_OK => Response::Ok {
            payload: Bytes::copy_from_slice(c.rest()),
        },
        ST_UNKNOWN_BLOB => Response::UnknownBlob,
        ST_DUPLICATE => Response::Duplicate,
        ST_QUOTA => Response::QuotaExceeded {
            requested: c.u64_le()?,
            used: c.u64_le()?,
            quota: c.u64_le()?,
        },
        ST_MALFORMED => Response::Malformed {
            detail: String::from_utf8_lossy(c.rest()).into_owned(),
        },
        ST_INJECTED => Response::Injected,
        ST_SHUTTING_DOWN => Response::ShuttingDown,
        other => return Err(FrameError::UnknownStatus(other)),
    };
    c.finish()?;
    Ok(resp)
}

/// Write one length-prefixed frame.
///
/// # Errors
///
/// [`FrameError::Oversized`] if the body exceeds [`MAX_FRAME`], or the
/// underlying I/O fault.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<(), FrameError> {
    if body.len() > MAX_FRAME {
        return Err(FrameError::Oversized {
            len: body.len(),
            max: MAX_FRAME,
        });
    }
    let len = u32::try_from(body.len()).map_err(|_| FrameError::Oversized {
        len: body.len(),
        max: MAX_FRAME,
    })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()?;
    Ok(())
}

/// Consecutive zero-progress read timeouts tolerated once a frame has
/// started arriving. A peer making *any* progress resets the count; a
/// peer that stalls mid-frame for this many socket-timeout ticks is
/// declared dead rather than pinning the connection forever.
const MID_FRAME_STALL_LIMIT: u32 = 20;

/// Fill `buf` completely, tolerating bounded mid-transfer stalls.
///
/// `at_boundary` marks whether byte 0 of `buf` is a frame boundary: a
/// clean close there is [`FrameError::Closed`], and a read timeout there
/// is surfaced immediately as the idle-poll signal. Past the boundary,
/// a close is [`FrameError::Truncated`] and timeouts are retried up to
/// [`MID_FRAME_STALL_LIMIT`] before giving up.
fn read_full(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), FrameError> {
    let needed = buf.len();
    let mut filled = 0;
    let mut stalls = 0u32;
    while filled < needed {
        match r.read(buf.get_mut(filled..).unwrap_or_default()) {
            Ok(0) => {
                if filled == 0 && at_boundary {
                    return Err(FrameError::Closed);
                }
                return Err(FrameError::Truncated {
                    needed,
                    got: filled,
                });
            }
            Ok(n) => {
                filled += n;
                stalls = 0;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if filled == 0 && at_boundary {
                    return Err(e.into()); // idle between frames, not a fault
                }
                stalls += 1;
                if stalls >= MID_FRAME_STALL_LIMIT {
                    // The peer stalled mid-frame past all patience: the
                    // stream can never be resynchronized, so report what
                    // did arrive rather than an ambiguous timeout (an
                    // `Io`/`WouldBlock` here would read as an idle tick).
                    return Err(FrameError::Truncated {
                        needed,
                        got: filled,
                    });
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read one length-prefixed frame body.
///
/// # Errors
///
/// [`FrameError::Closed`] on a clean close at a frame boundary,
/// [`FrameError::Oversized`] when the prefix violates [`MAX_FRAME`], and
/// [`FrameError::Io`] for timeouts and stream faults. A declared length
/// the peer never delivers surfaces as [`FrameError::Truncated`] or a
/// bounded run of timeouts — never an unbounded hang.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut len_buf = [0u8; 4];
    read_full(r, &mut len_buf, true)?;
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::Oversized {
            len,
            max: MAX_FRAME,
        });
    }
    let mut body = vec![0u8; len];
    read_full(r, &mut body, false)?;
    Ok(body)
}

/// Encode the 24-byte `Stat` payload.
pub fn encode_stat(used: u64, quota: u64, count: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(24);
    out.extend_from_slice(&used.to_le_bytes());
    out.extend_from_slice(&quota.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
    out
}

/// Decode the 24-byte `Stat` payload as `(used, quota, count)`.
///
/// # Errors
///
/// [`FrameError::Truncated`] / [`FrameError::TrailingBytes`] on a payload
/// of the wrong size.
pub fn decode_stat(payload: &[u8]) -> Result<(u64, u64, u64), FrameError> {
    let mut c = Cursor::new(payload);
    let used = c.u64_le()?;
    let quota = c.u64_le()?;
    let count = c.u64_le()?;
    c.finish()?;
    Ok((used, quota, count))
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let reqs = [
            Request::Store {
                key: "dev0-sc1-e2".into(),
                data: Bytes::from_static(b"<swap-cluster/>"),
            },
            Request::Fetch { key: "k".into() },
            Request::Drop { key: "k".into() },
            Request::PeekHeader { key: "k".into() },
            Request::Stat,
            Request::Shutdown,
        ];
        for req in reqs {
            let body = encode_request(&req);
            assert_eq!(decode_request(&body).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        let resps = [
            Response::Ok {
                payload: Bytes::from_static(b"blob"),
            },
            Response::UnknownBlob,
            Response::Duplicate,
            Response::QuotaExceeded {
                requested: 10,
                used: 90,
                quota: 95,
            },
            Response::Malformed {
                detail: "bad".into(),
            },
            Response::Injected,
            Response::ShuttingDown,
        ];
        for resp in resps {
            let body = encode_response(&resp);
            assert_eq!(decode_response(&body).unwrap(), resp);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut wire.as_slice()).unwrap_err();
        assert!(matches!(err, FrameError::Oversized { .. }));
    }

    #[test]
    fn clean_close_is_distinguished_from_truncation() {
        let empty: &[u8] = &[];
        assert_eq!(read_frame(&mut { empty }).unwrap_err(), FrameError::Closed);
        let partial: &[u8] = &[3, 0];
        assert!(matches!(
            read_frame(&mut { partial }).unwrap_err(),
            FrameError::Truncated { .. }
        ));
    }

    #[test]
    fn unknown_op_and_status_are_structured_errors() {
        assert_eq!(
            decode_request(&[0xee, 0, 0]).unwrap_err(),
            FrameError::UnknownOp(0xee)
        );
        assert_eq!(
            decode_response(&[0xee]).unwrap_err(),
            FrameError::UnknownStatus(0xee)
        );
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut body = encode_request(&Request::Fetch { key: "k".into() });
        body.push(0xff);
        assert!(matches!(
            decode_request(&body).unwrap_err(),
            FrameError::TrailingBytes { extra: 1 }
        ));
    }

    #[test]
    fn stat_payload_roundtrip() {
        let p = encode_stat(1, 2, 3);
        assert_eq!(decode_stat(&p).unwrap(), (1, 2, 3));
        assert!(decode_stat(&p[..23]).is_err());
    }
}
