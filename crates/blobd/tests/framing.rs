//! Property tests of the wire framing: a malformed, truncated or corrupt
//! frame must surface as a structured [`FrameError`] — never a panic,
//! never a hang, never a silent misparse.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_blobd::frame::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    FrameError, Request, Response, MAX_FRAME,
};
use obiwan_net::Bytes;
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = String> {
    // Up to the u16 key-length limit, through the interesting sizes.
    prop_oneof!["[a-z0-9-]{0,40}", "[a-z]{200,300}", Just(String::new()),]
}

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        (arb_key(), prop::collection::vec(any::<u8>(), 0..2048)).prop_map(|(key, data)| {
            Request::Store {
                key,
                data: Bytes::from(data),
            }
        }),
        arb_key().prop_map(|key| Request::Fetch { key }),
        arb_key().prop_map(|key| Request::Drop { key }),
        arb_key().prop_map(|key| Request::PeekHeader { key }),
        Just(Request::Stat),
        Just(Request::Shutdown),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..2048).prop_map(|payload| Response::Ok {
            payload: Bytes::from(payload),
        }),
        Just(Response::UnknownBlob),
        Just(Response::Duplicate),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(requested, used, quota)| {
            Response::QuotaExceeded {
                requested,
                used,
                quota,
            }
        }),
        Just(Response::Injected),
        "[ -~]{0,60}".prop_map(|detail| Response::Malformed { detail }),
        Just(Response::ShuttingDown),
    ]
}

/// A full frame as it would appear on the wire.
fn framed(body: &[u8]) -> Vec<u8> {
    let mut wire = Vec::new();
    write_frame(&mut wire, body).expect("writing to a Vec cannot fail");
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn requests_round_trip_through_the_wire(req in arb_request()) {
        let wire = framed(&encode_request(&req));
        let body = read_frame(&mut wire.as_slice()).expect("complete frame reads");
        let back = decode_request(&body).expect("encoded request decodes");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn responses_round_trip_through_the_wire(resp in arb_response()) {
        let wire = framed(&encode_response(&resp));
        let body = read_frame(&mut wire.as_slice()).expect("complete frame reads");
        let back = decode_response(&body).expect("encoded response decodes");
        prop_assert_eq!(back, resp);
    }

    #[test]
    fn truncation_anywhere_is_a_structured_error(
        req in arb_request(),
        cut_seed in 0u32..u32::MAX,
    ) {
        let wire = framed(&encode_request(&req));
        // Cut strictly short of the full frame, anywhere: inside the
        // length prefix, inside the body, or right at the boundary.
        let cut = cut_seed as usize % wire.len();
        let truncated = wire.get(..cut).expect("cut is in range");
        match read_frame(&mut &truncated[..]) {
            Err(FrameError::Closed) => prop_assert_eq!(cut, 0, "Closed only at a frame boundary"),
            Err(FrameError::Truncated { .. }) => prop_assert!(cut > 0),
            Err(other) => prop_assert!(false, "unexpected error for cut {}: {}", cut, other),
            Ok(_) => prop_assert!(false, "a truncated frame must not parse"),
        }
    }

    #[test]
    fn corrupt_bytes_never_panic_the_decoders(junk in prop::collection::vec(any::<u8>(), 0..512)) {
        // Whatever a hostile or confused peer sends, the decoders return.
        let _ = decode_request(&junk);
        let _ = decode_response(&junk);
        let _ = read_frame(&mut junk.as_slice());
    }

    #[test]
    fn flipping_one_byte_is_an_error_or_a_different_message(
        req in arb_request(),
        pos_seed in 0u32..u32::MAX,
        xor in 1u32..256,
    ) {
        let body = encode_request(&req);
        prop_assert!(!body.is_empty(), "every request carries at least an op byte");
        let pos = pos_seed as usize % body.len();
        let mut corrupt = body.clone();
        if let Some(b) = corrupt.get_mut(pos) {
            *b ^= xor as u8;
        }
        // Either a structured decode error, or a validly-framed *different*
        // message — never a panic, and never the original parsing back out
        // of corrupted bytes as if nothing happened... unless the flip
        // landed in ignored padding, which this protocol does not have.
        if let Ok(back) = decode_request(&corrupt) {
            prop_assert!(back != req, "a flipped byte cannot decode to the same request");
        }
    }

    #[test]
    fn oversized_length_prefixes_are_rejected_without_allocating(
        extra in 1u64..=u64::from(u32::MAX - MAX_FRAME as u32)
    ) {
        let len = MAX_FRAME as u32 + u32::try_from(extra).expect("range-bounded");
        let mut wire = len.to_le_bytes().to_vec();
        wire.extend_from_slice(b"body bytes that should never be read");
        match read_frame(&mut wire.as_slice()) {
            Err(FrameError::Oversized { len: l, .. }) => prop_assert_eq!(l as u32, len),
            other => prop_assert!(false, "expected Oversized, got {:?}", other.map(|_| ())),
        }
    }
}

#[test]
fn a_short_key_length_prefix_is_a_decode_error_not_a_panic() {
    // Claims a 300-byte key but carries 3 bytes.
    let mut body = vec![1u8]; // op = store
    body.extend_from_slice(&300u16.to_le_bytes());
    body.extend_from_slice(b"abc");
    assert!(decode_request(&body).is_err());
}

#[test]
fn non_utf8_keys_are_rejected_structurally() {
    let mut body = vec![2u8]; // op = fetch
    body.extend_from_slice(&2u16.to_le_bytes());
    body.extend_from_slice(&[0xff, 0xfe]);
    assert!(decode_request(&body).is_err());
}
