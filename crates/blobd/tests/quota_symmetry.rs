//! Quota symmetry regression: storing then dropping a set of blobs must
//! return the used-byte accounting to exactly where it started — zero on
//! a fresh store — with the *same* arithmetic whether the store is the
//! simulation's in-memory [`MemStore`] or a live `obiwan-blobd` daemon
//! reached over TCP. The daemon wraps the exact same store type, and this
//! test is the pin that keeps the two sides of the wire from drifting.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_blobd::{Blobd, RemoteStore};
use obiwan_net::{BlobStore, Bytes, DeviceId, MemStore, NetError};

/// The shared scenario, run against any [`BlobStore`]: store a mixed bag
/// of blobs (empty payloads, long keys, real payloads), verify the quota
/// charge grows monotonically, then drop everything and require the
/// accounting lands back at exactly zero — not merely "small".
fn assert_store_then_drop_returns_to_zero(store: &mut dyn BlobStore) {
    assert_eq!(store.used_bytes(), 0, "fresh store starts empty");
    let blobs: &[(&str, &[u8])] = &[
        (
            "dev0-sc1-e0",
            b"<swap-cluster epoch='0'>payload</swap-cluster>",
        ),
        ("dev0-sc2-e1", b""),
        (
            "a-much-longer-key-charged-against-the-quota-like-any-bytes",
            b"x",
        ),
        ("k", &[0u8; 1024]),
    ];
    let mut expected = 0usize;
    for (key, data) in blobs {
        store
            .store(key, Bytes::copy_from_slice(data))
            .expect("blob fits");
        // Key bytes are charged too: many tiny blobs cannot sneak past
        // the quota for free.
        expected += key.len() + data.len();
        assert_eq!(store.used_bytes(), expected, "charge after storing {key}");
    }
    assert_eq!(store.blob_count(), blobs.len());
    for (key, _) in blobs {
        store.drop_blob(key).expect("blob exists");
    }
    assert_eq!(
        store.used_bytes(),
        0,
        "store-then-drop must refund every charged byte"
    );
    assert_eq!(store.blob_count(), 0);
    // Double-drop stays an error, not a double-refund.
    assert!(matches!(
        store.drop_blob("dev0-sc1-e0"),
        Err(NetError::UnknownBlob { .. })
    ));
    assert_eq!(store.used_bytes(), 0);
}

#[test]
fn memstore_quota_is_symmetric() {
    let mut store = MemStore::new(DeviceId::from_index(0), 1 << 20);
    assert_store_then_drop_returns_to_zero(&mut store);
}

#[test]
fn daemon_quota_is_symmetric_over_the_wire() {
    let handle = Blobd::spawn_local(1 << 20).expect("bind loopback");
    let mut store = RemoteStore::connect(DeviceId::from_index(1), handle.addr());
    assert_store_then_drop_returns_to_zero(&mut store);
    handle.shutdown();
}

#[test]
fn daemon_refuses_over_quota_and_refunds_nothing_it_never_charged() {
    let handle = Blobd::spawn_local(64).expect("bind loopback");
    let mut store = RemoteStore::connect(DeviceId::from_index(1), handle.addr());
    store
        .store("small", Bytes::copy_from_slice(&[1u8; 16]))
        .expect("fits");
    let used_before = store.used_bytes();
    let err = store
        .store("big", Bytes::copy_from_slice(&[2u8; 64]))
        .expect_err("over quota");
    assert!(matches!(err, NetError::QuotaExceeded { quota: 64, .. }));
    assert_eq!(
        store.used_bytes(),
        used_before,
        "a refused store charges nothing"
    );
    handle.shutdown();
}
