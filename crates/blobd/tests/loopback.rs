//! End-to-end over real TCP: the full middleware stack swapping clusters
//! out to live `obiwan-blobd` daemons through the actor-runtime transport,
//! killing a daemon, and reloading via the ordered failover — the same
//! scenario the simulation's durability tests pin, now with actual sockets
//! and processes underneath.

#![allow(clippy::disallowed_methods)] // tests may panic on impossible states

use obiwan_blobd::{Blobd, BlobdHandle, RemoteStore};
use obiwan_core::{Middleware, StoreSpec, SwapConfig};
use obiwan_heap::Value;
use obiwan_net::{
    BlobStore, Bytes, DeviceId, DeviceKind, LinkSpec, NetFabric, Transport, TransportKind,
};
use obiwan_netd::ActorNet;
use obiwan_replication::{standard_classes, Server};
use std::io::BufRead;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const QUOTA: usize = 1 << 20;

/// A PDA over a 40-node list in a live world: two `obiwan-blobd` daemons
/// on loopback ports, fronted by the actor runtime, k = 2 fan-out.
fn tcp_world() -> (
    Middleware,
    obiwan_heap::ObjRef,
    Vec<DeviceId>,
    Vec<BlobdHandle>,
) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 40, 16).expect("build list");
    let mut net = ActorNet::new();
    let home = net.add_device("pda", DeviceKind::Pda, 0);
    let mut handles = Vec::new();
    let mut devices = Vec::new();
    for i in 0..2 {
        let handle = Blobd::spawn_local(QUOTA).expect("bind loopback daemon");
        let d = net.add_remote_device(
            format!("blobd-{i}"),
            DeviceKind::Laptop,
            QUOTA,
            handle.addr(),
        );
        net.connect(home, d, LinkSpec::bluetooth()).expect("link");
        handles.push(handle);
        devices.push(d);
    }
    let shared = Arc::new(Mutex::new(NetFabric::backend(Box::new(net))));
    let universe = server.classes().clone();
    let mut mw = Middleware::builder()
        .swap_config(SwapConfig::default().transport(TransportKind::Tcp))
        .cluster_size(10)
        .device_memory(1 << 20)
        .replication_factor(2)
        .no_builtin_policies()
        .build_in_world(universe, server.into_shared(), shared, home);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    assert_eq!(mw.invoke_i64(root, "length", vec![]).expect("warm"), 40);
    (mw, root, devices, handles)
}

/// The identical scenario through the default simulated room — the oracle
/// the TCP path must byte-match.
fn sim_twin() -> (Middleware, obiwan_heap::ObjRef) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 40, 16).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .replication_factor(2)
        .no_builtin_policies()
        .stores(vec![
            StoreSpec::new("blobd-0", DeviceKind::Laptop, QUOTA),
            StoreSpec::new("blobd-1", DeviceKind::Laptop, QUOTA),
        ])
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    assert_eq!(mw.invoke_i64(root, "length", vec![]).expect("warm"), 40);
    (mw, root)
}

/// Wait until nothing answers at `addr` any more (the daemon's listener is
/// closed, not merely its shutdown flag set).
fn wait_until_down(addr: SocketAddr) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(200)) {
            Err(_) => return,
            Ok(_) if Instant::now() > deadline => panic!("daemon at {addr} never went down"),
            Ok(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

#[test]
fn swap_out_kill_a_daemon_and_reload_via_failover() {
    let (mut mw, root, devices, handles) = tcp_world();
    let (mut sim, sim_root) = sim_twin();

    // Swap cluster 2 out over real sockets and in the simulated oracle.
    let shipped = mw.swap_out(2).expect("swap out over TCP");
    let sim_shipped = sim.swap_out(2).expect("swap out in sim");
    assert_eq!(
        shipped, sim_shipped,
        "identical graphs detach to identical sizes"
    );

    let manager = mw.manager();
    let (_, key, held) = manager.holders_of(2).expect("cluster is swapped out");
    assert_eq!(held.len(), 2, "k = 2 fan-out placed two live copies");
    let sim_manager = sim.manager();
    let (_, sim_key, sim_held) = sim_manager.holders_of(2).expect("sim cluster swapped out");
    assert_eq!(
        key, sim_key,
        "same home, same cluster, same epoch: same key"
    );

    // Every copy — two daemons, two sim devices — holds identical bytes.
    let tcp_copies: Vec<Bytes> = {
        let net = mw.net();
        let net = net.lock().expect("net");
        held.iter()
            .map(|&d| net.blob_data(d, &key).expect("copy on daemon"))
            .collect()
    };
    let sim_copy = {
        let net = sim.net();
        let net = net.lock().expect("net");
        net.blob_data(sim_held[0], &sim_key).expect("copy in sim")
    };
    assert_eq!(
        tcp_copies[0], tcp_copies[1],
        "both daemons store identical bytes"
    );
    assert_eq!(
        tcp_copies[0], sim_copy,
        "the blob on the wire is byte-identical to the simulated path"
    );

    // Kill the daemon behind the primary holder — not a scripted depart,
    // an actual dead process whose port stops answering.
    let primary = held[0];
    let victim = devices
        .iter()
        .position(|&d| d == primary)
        .expect("holder is one of our daemons");
    handles[victim].shutdown();
    wait_until_down(handles[victim].addr());

    // Reload: the ordered failover walks past the dead daemon to the
    // surviving copy, and the rebuilt graph answers as before.
    mw.swap_in(2).expect("failover reload over TCP");
    assert_eq!(mw.invoke_i64(root, "length", vec![]).expect("reloaded"), 40);
    let stats = mw.swap_stats();
    assert_eq!(stats.swap_ins, 1);
    assert_eq!(stats.reload_failovers, 1, "exactly one holder was skipped");

    // The sim twin agrees end to end.
    sim.swap_in(2).expect("sim reload");
    assert_eq!(sim.invoke_i64(sim_root, "length", vec![]).expect("sim"), 40);

    // The surviving daemon dropped its copy on reload: quota symmetry
    // holds across a kill + failover, same as in the simulation.
    {
        let net = mw.net();
        let net = net.lock().expect("net");
        let survivor = *held.get(1).expect("two holders");
        assert_eq!(
            net.stored_bytes(survivor).expect("survivor answers"),
            0,
            "no copy survives reload on the live daemon"
        );
    }
    let report = mw.audit();
    assert!(
        !report.has_errors(),
        "graph invariants hold over TCP:\n{report}"
    );
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn child_process_daemon_round_trips_blobs() {
    // The real deployment shape: obiwan-blobd as a separate OS process,
    // its ephemeral port learned from its stdout banner.
    let exe = env!("CARGO_BIN_EXE_obiwan-blobd");
    let mut child = std::process::Command::new(exe)
        .args(["--addr", "127.0.0.1:0", "--quota", "1048576"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn obiwan-blobd");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut banner = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut banner)
        .expect("read banner");
    let addr: SocketAddr = banner
        .trim()
        .strip_prefix("obiwan-blobd listening on ")
        .expect("banner format")
        .parse()
        .expect("banner carries the bound address");

    let mut store = RemoteStore::connect(DeviceId::from_index(7), addr);
    let payload = Bytes::copy_from_slice(b"<swap-cluster epoch='0'/>");
    store.store("dev0-sc1-e0", payload.clone()).expect("store");
    assert!(store.contains("dev0-sc1-e0"));
    assert_eq!(store.fetch("dev0-sc1-e0").expect("fetch"), payload);
    store.drop_blob("dev0-sc1-e0").expect("drop");
    assert_eq!(store.used_bytes(), 0);

    store.shutdown_daemon().expect("graceful shutdown");
    let status = child.wait().expect("child exits");
    assert!(status.success(), "daemon exits cleanly after shutdown");
}
