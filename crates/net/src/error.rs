//! Error type for the simulated network.

use crate::DeviceId;
use std::fmt;

/// Error produced by network and blob-store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Device id not present in the net.
    UnknownDevice {
        /// The offending id.
        device: DeviceId,
    },
    /// The device is currently departed (out of range).
    Departed {
        /// The departed device.
        device: DeviceId,
    },
    /// No link between the two devices.
    NotConnected {
        /// Source device.
        from: DeviceId,
        /// Destination device.
        to: DeviceId,
    },
    /// The blob key is not stored on the device.
    UnknownBlob {
        /// Device that was asked.
        device: DeviceId,
        /// The missing key.
        key: String,
    },
    /// Storing the blob would exceed the device's quota.
    QuotaExceeded {
        /// Device that refused.
        device: DeviceId,
        /// Bytes the blob needed.
        requested: usize,
        /// Bytes already stored.
        used: usize,
        /// The device's quota.
        quota: usize,
    },
    /// An injected store failure fired (fault-injection testing).
    InjectedFailure {
        /// Device whose store failed.
        device: DeviceId,
        /// The operation that failed ("store", "fetch", "drop").
        op: &'static str,
    },
    /// A blob key was stored twice without an intervening drop.
    DuplicateBlob {
        /// Device that refused.
        device: DeviceId,
        /// The duplicated key.
        key: String,
    },
    /// A live transport peer spoke the framed protocol incorrectly
    /// (truncated frame, oversized length, unknown op or status). Unlike
    /// [`NetError::Departed`], this is a hard error: failover must not
    /// paper over corruption.
    Protocol {
        /// Device whose connection misbehaved.
        device: DeviceId,
        /// Human-readable description of the framing fault.
        detail: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownDevice { device } => write!(f, "unknown device {device}"),
            NetError::Departed { device } => write!(f, "device {device} has departed"),
            NetError::NotConnected { from, to } => {
                write!(f, "no link between {from} and {to}")
            }
            NetError::UnknownBlob { device, key } => {
                write!(f, "device {device} holds no blob `{key}`")
            }
            NetError::QuotaExceeded {
                device,
                requested,
                used,
                quota,
            } => write!(
                f,
                "device {device} quota exceeded: {requested} B requested with {used}/{quota} B used"
            ),
            NetError::InjectedFailure { device, op } => {
                write!(f, "injected {op} failure on device {device}")
            }
            NetError::DuplicateBlob { device, key } => {
                write!(f, "device {device} already holds blob `{key}`")
            }
            NetError::Protocol { device, detail } => {
                write!(f, "protocol error talking to device {device}: {detail}")
            }
        }
    }
}

impl std::error::Error for NetError {}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn messages_identify_devices_and_keys() {
        let e = NetError::UnknownBlob {
            device: DeviceId(2),
            key: "sc-9".into(),
        };
        let s = e.to_string();
        assert!(s.contains("dev#2") && s.contains("sc-9"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<NetError>();
    }
}
