//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since the epoch.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since the epoch (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}.{:03}ms", self.0 / 1_000, self.0 % 1_000)
    }
}

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Microseconds in the span.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds in the span (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:03}ms", self.0 / 1_000, self.0 % 1_000)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

/// The simulation's clock. Only the simulation advances it; reads are free.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by `d`, returning the new instant.
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.now += d;
        self.now
    }
}

/// A monotonic real-time clock reporting [`SimTime`] microseconds since
/// its construction.
///
/// This is the **only** sanctioned wall-clock seam in the workspace (lint
/// S7 exempts exactly this file): live transport backends — the actor
/// runtime, the `obiwan-blobd` daemon — stamp their events through a
/// `RealClock` obtained from [`real`], never through `Instant::now()`
/// directly. Keeping the seam here means the rest of the system stays
/// indifferent to whether time is simulated or real.
#[derive(Debug, Clone)]
pub struct RealClock {
    origin: std::time::Instant,
}

impl RealClock {
    /// Microseconds elapsed since this clock was created, as a [`SimTime`].
    pub fn now(&self) -> SimTime {
        let us = u64::try_from(self.origin.elapsed().as_micros()).unwrap_or(u64::MAX);
        SimTime::from_micros(us)
    }
}

/// A real-time clock anchored at the current instant.
///
/// See [`RealClock`] for why backends must obtain wall time through this
/// function and nowhere else.
pub fn real() -> RealClock {
    RealClock {
        origin: std::time::Instant::now(),
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(3);
        assert_eq!(t1.as_micros(), 3_000);
        assert_eq!(t1 - t0, SimDuration::from_millis(3));
        assert_eq!((t0 - t1), SimDuration::ZERO, "saturating");
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        let a = c.advance(SimDuration::from_micros(5));
        let b = c.advance(SimDuration::from_micros(7));
        assert!(b > a);
        assert_eq!(c.now().as_micros(), 12);
    }

    #[test]
    fn display_shows_milliseconds() {
        assert_eq!(SimTime::from_micros(1234).to_string(), "t=1.234ms");
        assert_eq!(SimDuration::from_micros(45).to_string(), "0.045ms");
    }

    #[test]
    fn secs_f64_conversion() {
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn real_clock_is_monotone_from_zero() {
        let c = real();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }
}
