//! Event trace of the simulated world.

use crate::{DeviceId, SimDuration, SimTime};
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceKind {
    /// A device joined the world.
    DeviceAdded {
        /// The new device.
        device: DeviceId,
    },
    /// A device left radio range (its blobs became unreachable).
    DeviceDeparted {
        /// The departed device.
        device: DeviceId,
        /// How many blobs it took along.
        blobs_lost_reach: usize,
    },
    /// A departed device came back.
    DeviceArrived {
        /// The returning device.
        device: DeviceId,
    },
    /// A blob was stored on a device.
    BlobStored {
        /// Sender.
        from: DeviceId,
        /// Storing device.
        to: DeviceId,
        /// Blob key.
        key: String,
        /// Blob size in bytes.
        bytes: usize,
        /// Airtime the transfer cost.
        airtime: SimDuration,
    },
    /// A blob was fetched back.
    BlobFetched {
        /// Requester.
        from: DeviceId,
        /// Storing device.
        to: DeviceId,
        /// Blob key.
        key: String,
        /// Blob size in bytes.
        bytes: usize,
        /// Airtime the transfer cost.
        airtime: SimDuration,
    },
    /// A blob transited a relay hop (multi-hop routing).
    BlobRelayed {
        /// Hop source.
        from: DeviceId,
        /// Hop destination.
        to: DeviceId,
        /// Blob key.
        key: String,
        /// Bytes forwarded.
        bytes: usize,
        /// Airtime this hop cost.
        airtime: SimDuration,
    },
    /// A storing device was instructed to drop a blob.
    BlobDropped {
        /// Requester.
        from: DeviceId,
        /// Storing device.
        to: DeviceId,
        /// Blob key.
        key: String,
        /// Airtime the control message cost (one link latency).
        airtime: SimDuration,
    },
    /// Two devices were linked.
    Linked {
        /// One endpoint.
        a: DeviceId,
        /// Other endpoint.
        b: DeviceId,
    },
    /// A link was removed.
    Unlinked {
        /// One endpoint.
        a: DeviceId,
        /// Other endpoint.
        b: DeviceId,
    },
}

/// A timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// When it happened (simulated time).
    pub at: SimTime,
    /// What happened.
    pub kind: TraceKind,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.at)?;
        match &self.kind {
            TraceKind::DeviceAdded { device } => write!(f, "added {device}"),
            TraceKind::DeviceDeparted {
                device,
                blobs_lost_reach,
            } => write!(f, "{device} departed with {blobs_lost_reach} blob(s)"),
            TraceKind::DeviceArrived { device } => write!(f, "{device} arrived"),
            TraceKind::BlobStored {
                from,
                to,
                key,
                bytes,
                airtime,
            } => write!(f, "{from} stored `{key}` ({bytes} B, {airtime}) on {to}"),
            TraceKind::BlobFetched {
                from,
                to,
                key,
                bytes,
                airtime,
            } => write!(f, "{from} fetched `{key}` ({bytes} B, {airtime}) from {to}"),
            TraceKind::BlobRelayed {
                from,
                to,
                key,
                bytes,
                airtime,
            } => write!(f, "{from} relayed `{key}` ({bytes} B, {airtime}) to {to}"),
            TraceKind::BlobDropped {
                from,
                to,
                key,
                airtime,
            } => {
                write!(f, "{from} dropped `{key}` on {to} ({airtime})")
            }
            TraceKind::Linked { a, b } => write!(f, "linked {a} <-> {b}"),
            TraceKind::Unlinked { a, b } => write!(f, "unlinked {a} <-> {b}"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceEvent {
            at: SimTime::from_micros(2_500),
            kind: TraceKind::BlobStored {
                from: DeviceId(0),
                to: DeviceId(1),
                key: "sc-2".into(),
                bytes: 640,
                airtime: SimDuration::from_micros(1_200),
            },
        };
        let s = e.to_string();
        assert!(s.contains("sc-2") && s.contains("640") && s.contains("dev#1"));
    }
}
