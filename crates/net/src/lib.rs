//! Deterministic simulated wireless world for the OBIWAN reproduction.
//!
//! The paper swaps object clusters over Bluetooth (700 Kbps on an iPAQ 3360)
//! to *dumb* nearby devices that only store, return or drop opaque bytes
//! keyed by a cluster id (the paper's wire format is XML text; the store
//! does not care). This crate simulates that world:
//!
//! * a virtual [`Clock`] in microseconds — no wall time, fully deterministic;
//! * [`DeviceId`]s with profiles ([`DeviceKind`], storage quota);
//! * [`LinkSpec`]s with bandwidth + latency (including the paper's
//!   [`LinkSpec::bluetooth`] preset) used to *cost* every transfer;
//! * per-device blob stores implementing the three-verb protocol
//!   (store / fetch / drop) with quota enforcement and optional injected
//!   failures ([`FailurePlan`]);
//! * churn: devices can [`SimNet::depart`] (taking their blobs with them)
//!   and re-[`SimNet::arrive`], which is how the tests exercise the
//!   "storage device walked away" scenario the paper's vision implies;
//! * a [`TraceEvent`] log for tests and examples.
//!
//! # Examples
//!
//! ```
//! use obiwan_net::{DeviceKind, LinkSpec, SimNet};
//!
//! # fn main() -> Result<(), obiwan_net::NetError> {
//! let mut net = SimNet::new();
//! let pda = net.add_device("my-pda", DeviceKind::Pda, 0);
//! let laptop = net.add_device("desk-laptop", DeviceKind::Laptop, 1 << 20);
//! net.connect(pda, laptop, LinkSpec::bluetooth());
//!
//! let cost = net.send_blob(pda, laptop, "sc-2", "<swap-cluster/>".into())?;
//! assert!(cost.as_micros() > 0);
//! let data = net.fetch_blob(pda, laptop, "sc-2")?; // refcounted bytes, no deep copy
//! assert_eq!(&data[..], b"<swap-cluster/>");
//! net.drop_blob(pda, laptop, "sc-2")?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
mod device;
mod error;
mod link;
mod route;
mod sim;
mod store;
mod trace;
mod transport;

pub use bytes::Bytes;
pub use clock::{Clock, RealClock, SimDuration, SimTime};
pub use device::{DeviceId, DeviceKind, DeviceProfile};
pub use error::NetError;
pub use link::LinkSpec;
pub use route::Route;
pub use sim::SimNet;
pub use store::{BlobStore, FailurePlan, MemStore};
pub use trace::{TraceEvent, TraceKind};
pub use transport::{NetFabric, Transport, TransportKind};

/// Convenience result alias used across this crate.
pub type Result<T> = std::result::Result<T, NetError>;
