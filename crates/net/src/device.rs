//! Devices in the simulated world.

use std::fmt;

/// Identifier of a device inside a [`crate::SimNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DeviceId(pub(crate) u32);

impl DeviceId {
    /// The raw numeric id (stable within one `SimNet`).
    pub fn index(self) -> u32 {
        self.0
    }

    /// Construct an id from a raw dense index.
    ///
    /// The simulation allocates its own ids in [`crate::SimNet::add_device`];
    /// this constructor exists for transport backends *outside* this crate
    /// (the actor runtime, remote worlds) that host their own device tables
    /// and must mint ids consistent with their dense ordering.
    pub fn from_index(raw: u32) -> DeviceId {
        DeviceId(raw)
    }
}

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

/// What sort of hardware a device is, following the paper's cast of
/// characters ("desktop and laptop PCs, other PDAs, or future wireless
/// devices, with extended memory capacity, present in the room").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// A memory-constrained handheld running applications (the swapper).
    Pda,
    /// A laptop PC offering storage.
    Laptop,
    /// A desktop PC offering storage.
    Desktop,
    /// A tiny memory-enabled wireless device (the paper's envisioned
    /// "myriad of small memory-enabled devices scattered all-over").
    Mote,
    /// A fixed access point / kiosk with storage.
    AccessPoint,
}

impl DeviceKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DeviceKind::Pda => "pda",
            DeviceKind::Laptop => "laptop",
            DeviceKind::Desktop => "desktop",
            DeviceKind::Mote => "mote",
            DeviceKind::AccessPoint => "access-point",
        }
    }
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Static description of a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceProfile {
    /// Friendly name (unique inside a net is conventional, not enforced).
    pub name: String,
    /// Hardware class.
    pub kind: DeviceKind,
    /// Bytes of blob storage this device offers to neighbours
    /// (0 = offers none, e.g. the swapping PDA itself).
    pub storage_quota: usize,
}

impl DeviceProfile {
    /// Create a profile.
    pub fn new(name: impl Into<String>, kind: DeviceKind, storage_quota: usize) -> Self {
        DeviceProfile {
            name: name.into(),
            kind,
            storage_quota,
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn kinds_have_distinct_names() {
        use std::collections::HashSet;
        let names: HashSet<_> = [
            DeviceKind::Pda,
            DeviceKind::Laptop,
            DeviceKind::Desktop,
            DeviceKind::Mote,
            DeviceKind::AccessPoint,
        ]
        .iter()
        .map(|k| k.name())
        .collect();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DeviceId(3).to_string(), "dev#3");
        assert_eq!(DeviceKind::Mote.to_string(), "mote");
    }
}
