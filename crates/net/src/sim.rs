//! The simulated world: devices, links, discovery, churn, blob transfers.

use crate::store::BlobStore;
use crate::{
    Clock, DeviceId, DeviceKind, DeviceProfile, FailurePlan, LinkSpec, MemStore, NetError, Result,
    SimDuration, SimTime, TraceEvent, TraceKind,
};
use bytes::Bytes;
use std::collections::HashMap;

#[derive(Debug)]
struct DeviceState {
    profile: DeviceProfile,
    store: MemStore,
    present: bool,
}

/// The deterministic simulated wireless world.
///
/// All transfers advance the virtual [`Clock`] by the link's cost and append
/// a [`TraceEvent`]; nothing consults the wall clock or an RNG.
///
/// See the [crate-level documentation](crate) for an end-to-end example.
#[derive(Debug, Default)]
pub struct SimNet {
    clock: Clock,
    devices: Vec<DeviceState>,
    links: HashMap<(DeviceId, DeviceId), LinkSpec>,
    trace: Vec<TraceEvent>,
    bytes_sent: u64,
    bytes_fetched: u64,
    churn_seq: u64,
}

impl SimNet {
    /// An empty world at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advance the clock without any transfer (application compute time in
    /// virtual-time experiments).
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        self.clock.advance(d)
    }

    /// Add a device offering `storage_quota` bytes of blob storage.
    pub fn add_device(
        &mut self,
        name: impl Into<String>,
        kind: DeviceKind,
        storage_quota: usize,
    ) -> DeviceId {
        let id = DeviceId(self.devices.len() as u32);
        self.devices.push(DeviceState {
            profile: DeviceProfile::new(name, kind, storage_quota),
            store: MemStore::new(id, storage_quota),
            present: true,
        });
        self.push_trace(TraceKind::DeviceAdded { device: id });
        id
    }

    /// A device's profile.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownDevice`].
    pub fn profile(&self, device: DeviceId) -> Result<&DeviceProfile> {
        self.state(device).map(|s| &s.profile)
    }

    /// Install a fault-injection plan on a device's store.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownDevice`].
    pub fn set_failure_plan(&mut self, device: DeviceId, plan: FailurePlan) -> Result<()> {
        self.state_mut(device)?.store.set_failure_plan(plan);
        Ok(())
    }

    /// Create a bidirectional link.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownDevice`].
    pub fn connect(&mut self, a: DeviceId, b: DeviceId, link: LinkSpec) -> Result<()> {
        self.state(a)?;
        self.state(b)?;
        self.links.insert(key(a, b), link);
        self.churn_seq += 1;
        self.push_trace(TraceKind::Linked { a, b });
        Ok(())
    }

    /// Remove the link between two devices (if any).
    pub fn disconnect(&mut self, a: DeviceId, b: DeviceId) {
        if self.links.remove(&key(a, b)).is_some() {
            self.churn_seq += 1;
            self.push_trace(TraceKind::Unlinked { a, b });
        }
    }

    /// The link between two present devices, if both are reachable.
    pub fn link(&self, a: DeviceId, b: DeviceId) -> Option<LinkSpec> {
        let present = |id: DeviceId| {
            self.devices
                .get(id.0 as usize)
                .map(|d| d.present)
                .unwrap_or(false)
        };
        if present(a) && present(b) {
            self.links.get(&key(a, b)).copied()
        } else {
            None
        }
    }

    /// Devices currently in range of `of` (linked and present), in id order.
    ///
    /// This is the middleware's *discovery* primitive: "swap-out a set of
    /// objects to nearby devices, if there are any".
    pub fn nearby(&self, of: DeviceId) -> Vec<DeviceId> {
        let mut out: Vec<DeviceId> = self
            .links
            .keys()
            .filter_map(|(a, b)| {
                if *a == of {
                    Some(*b)
                } else if *b == of {
                    Some(*a)
                } else {
                    None
                }
            })
            .filter(|id| self.link(of, *id).is_some())
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Free storage remaining on a device.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownDevice`].
    pub fn free_storage(&self, device: DeviceId) -> Result<usize> {
        let s = self.state(device)?;
        Ok(s.profile.storage_quota.saturating_sub(s.store.used_bytes()))
    }

    /// Take a device out of radio range. Its blobs stay on it (and come back
    /// if it returns) but are unreachable meanwhile.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownDevice`].
    pub fn depart(&mut self, device: DeviceId) -> Result<()> {
        let blobs = {
            let s = self.state_mut(device)?;
            s.present = false;
            s.store.blob_count()
        };
        self.churn_seq += 1;
        self.push_trace(TraceKind::DeviceDeparted {
            device,
            blobs_lost_reach: blobs,
        });
        Ok(())
    }

    /// Bring a departed device back into range.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownDevice`].
    pub fn arrive(&mut self, device: DeviceId) -> Result<()> {
        self.state_mut(device)?.present = true;
        self.churn_seq += 1;
        self.push_trace(TraceKind::DeviceArrived { device });
        Ok(())
    }

    /// Monotonic counter bumped by every topology change — departures,
    /// arrivals, links made and broken. Churn observers (the swapping
    /// manager's holder-loss detector) poll it to skip full presence scans
    /// on quiet pumps: an unchanged sequence means nobody moved.
    pub fn churn_seq(&self) -> u64 {
        self.churn_seq
    }

    /// Whether the device is currently present.
    pub fn is_present(&self, device: DeviceId) -> bool {
        self.devices
            .get(device.0 as usize)
            .map(|d| d.present)
            .unwrap_or(false)
    }

    /// Send `data` from `from` to be stored on `to` under `key`, advancing
    /// the clock by the link cost. Returns the transfer duration.
    ///
    /// # Errors
    ///
    /// [`NetError::NotConnected`] / [`NetError::Departed`] for reachability,
    /// plus anything the receiving store raises (quota, duplicates, injected
    /// failures). On error the clock still advances — airtime was spent.
    pub fn send_blob(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<SimDuration> {
        let link = self.require_link(from, to)?;
        let bytes = data.len();
        let cost = link.transfer_time(bytes);
        self.clock.advance(cost);
        self.bytes_sent = self.bytes_sent.saturating_add(bytes as u64);
        self.state_mut(to)?.store.store(key, data)?;
        self.push_trace(TraceKind::BlobStored {
            from,
            to,
            key: key.to_string(),
            bytes,
            airtime: cost,
        });
        Ok(cost)
    }

    /// Fetch the blob stored under `key` on `to`, advancing the clock by the
    /// return-transfer cost.
    ///
    /// # Errors
    ///
    /// Reachability and store errors as for [`SimNet::send_blob`].
    pub fn fetch_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<Bytes> {
        let link = self.require_link(from, to)?;
        let data = self.state_mut(to)?.store.fetch(key)?;
        let bytes = data.len();
        let cost = link.transfer_time(bytes);
        self.clock.advance(cost);
        self.bytes_fetched = self.bytes_fetched.saturating_add(bytes as u64);
        self.push_trace(TraceKind::BlobFetched {
            from,
            to,
            key: key.to_string(),
            bytes,
            airtime: cost,
        });
        Ok(data)
    }

    /// Instruct `to` to drop the blob under `key`. Costs one latency (a tiny
    /// control message), not bandwidth.
    ///
    /// # Errors
    ///
    /// Reachability and store errors as for [`SimNet::send_blob`].
    pub fn drop_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()> {
        let link = self.require_link(from, to)?;
        self.clock.advance(link.latency);
        self.state_mut(to)?.store.drop_blob(key)?;
        self.push_trace(TraceKind::BlobDropped {
            from,
            to,
            key: key.to_string(),
            airtime: link.latency,
        });
        Ok(())
    }

    /// Whether `to` currently holds a blob under `key` (control-plane query,
    /// free of charge).
    pub fn holds_blob(&self, to: DeviceId, key: &str) -> bool {
        self.devices
            .get(to.0 as usize)
            .map(|d| d.store.contains(key))
            .unwrap_or(false)
    }

    /// Ids of every device ever added to the world, departed ones included
    /// (control-plane query, free of charge; auditors enumerate stores with
    /// it).
    pub fn device_ids(&self) -> Vec<DeviceId> {
        (0..self.devices.len() as u32).map(DeviceId).collect()
    }

    /// Every *present* device currently storing a blob under `key`, in id
    /// order (control-plane query, free of charge). The repair sweep uses
    /// it to re-adopt a copy that walked back into the room instead of
    /// shipping a redundant one.
    pub fn holders_of_key(&self, key: &str) -> Vec<DeviceId> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.present && d.store.contains(key))
            .map(|(i, _)| DeviceId(i as u32))
            .collect()
    }

    /// Keys of every blob currently stored on a device (control-plane
    /// query, free of charge). Empty for unknown devices.
    pub fn blob_keys(&self, device: DeviceId) -> Vec<String> {
        self.devices
            .get(device.0 as usize)
            .map(|d| d.store.keys().map(str::to_string).collect())
            .unwrap_or_default()
    }

    /// The bytes stored under `key` on a device, if any (control-plane
    /// query, free of charge; the auditor inspects blob headers with it —
    /// no airtime, no store op counted).
    pub fn blob_data(&self, device: DeviceId, key: &str) -> Option<Bytes> {
        self.devices
            .get(device.0 as usize)
            .and_then(|d| d.store.peek(key))
    }

    /// Bytes stored on a device right now.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownDevice`].
    pub fn stored_bytes(&self, device: DeviceId) -> Result<usize> {
        Ok(self.state(device)?.store.used_bytes())
    }

    /// Total payload bytes sent / fetched since the world began.
    pub fn traffic(&self) -> (u64, u64) {
        (self.bytes_sent, self.bytes_fetched)
    }

    /// The trace so far.
    pub fn trace(&self) -> &[TraceEvent] {
        &self.trace
    }

    /// Drain the trace (examples print it incrementally).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.trace)
    }

    fn require_link(&self, from: DeviceId, to: DeviceId) -> Result<LinkSpec> {
        self.state(from)?;
        self.state(to)?;
        if !self.is_present(from) {
            return Err(NetError::Departed { device: from });
        }
        if !self.is_present(to) {
            return Err(NetError::Departed { device: to });
        }
        self.links
            .get(&key(from, to))
            .copied()
            .ok_or(NetError::NotConnected { from, to })
    }

    fn state(&self, device: DeviceId) -> Result<&DeviceState> {
        self.devices
            .get(device.0 as usize)
            .ok_or(NetError::UnknownDevice { device })
    }

    fn state_mut(&mut self, device: DeviceId) -> Result<&mut DeviceState> {
        self.devices
            .get_mut(device.0 as usize)
            .ok_or(NetError::UnknownDevice { device })
    }

    fn push_trace(&mut self, kind: TraceKind) {
        self.trace.push(TraceEvent {
            at: self.clock.now(),
            kind,
        });
    }

    pub(crate) fn push_trace_at(&mut self, at: crate::SimTime, kind: TraceKind) {
        self.trace.push(TraceEvent { at, kind });
    }
}

fn key(a: DeviceId, b: DeviceId) -> (DeviceId, DeviceId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    fn world() -> (SimNet, DeviceId, DeviceId) {
        let mut net = SimNet::new();
        let pda = net.add_device("pda", DeviceKind::Pda, 0);
        let laptop = net.add_device("laptop", DeviceKind::Laptop, 1000);
        net.connect(pda, laptop, LinkSpec::bluetooth()).unwrap();
        (net, pda, laptop)
    }

    #[test]
    fn send_fetch_drop_advances_clock() {
        let (mut net, pda, laptop) = world();
        let t0 = net.now();
        net.send_blob(pda, laptop, "k", Bytes::from("x".repeat(100)))
            .unwrap();
        let t1 = net.now();
        assert!(t1 > t0);
        assert!(net.holds_blob(laptop, "k"));
        let data = net.fetch_blob(pda, laptop, "k").unwrap();
        assert_eq!(data.len(), 100);
        assert!(net.now() > t1);
        net.drop_blob(pda, laptop, "k").unwrap();
        assert!(!net.holds_blob(laptop, "k"));
    }

    #[test]
    fn traffic_counters_accumulate() {
        let (mut net, pda, laptop) = world();
        net.send_blob(pda, laptop, "k", Bytes::from("x".repeat(100)))
            .unwrap();
        net.fetch_blob(pda, laptop, "k").unwrap();
        assert_eq!(net.traffic(), (100, 100));
    }

    #[test]
    fn unlinked_devices_cannot_exchange() {
        let mut net = SimNet::new();
        let a = net.add_device("a", DeviceKind::Pda, 0);
        let b = net.add_device("b", DeviceKind::Laptop, 100);
        let err = net.send_blob(a, b, "k", "x".into()).unwrap_err();
        assert!(matches!(err, NetError::NotConnected { .. }));
    }

    #[test]
    fn departed_device_is_unreachable_until_arrival() {
        let (mut net, pda, laptop) = world();
        net.send_blob(pda, laptop, "k", "data".into()).unwrap();
        net.depart(laptop).unwrap();
        assert!(matches!(
            net.fetch_blob(pda, laptop, "k"),
            Err(NetError::Departed { .. })
        ));
        assert!(net.nearby(pda).is_empty());
        net.arrive(laptop).unwrap();
        assert_eq!(&net.fetch_blob(pda, laptop, "k").unwrap()[..], b"data");
    }

    #[test]
    fn nearby_lists_linked_present_devices_sorted() {
        let mut net = SimNet::new();
        let pda = net.add_device("pda", DeviceKind::Pda, 0);
        let a = net.add_device("a", DeviceKind::Laptop, 10);
        let b = net.add_device("b", DeviceKind::Desktop, 10);
        let c = net.add_device("c", DeviceKind::Mote, 10);
        net.connect(pda, b, LinkSpec::wifi()).unwrap();
        net.connect(pda, a, LinkSpec::bluetooth()).unwrap();
        net.connect(a, c, LinkSpec::mote_radio()).unwrap(); // not pda's
        assert_eq!(net.nearby(pda), vec![a, b]);
    }

    #[test]
    fn quota_and_free_storage_are_visible() {
        let (mut net, pda, laptop) = world();
        assert_eq!(net.free_storage(laptop).unwrap(), 1000);
        net.send_blob(pda, laptop, "k", Bytes::from("x".repeat(400)))
            .unwrap();
        // 1 key byte + 400 payload bytes occupied.
        assert_eq!(net.free_storage(laptop).unwrap(), 599);
        assert_eq!(net.stored_bytes(laptop).unwrap(), 401);
        assert_eq!(net.blob_data(laptop, "k").map(|d| d.len()), Some(400));
    }

    #[test]
    fn failed_send_still_costs_airtime() {
        let (mut net, pda, laptop) = world();
        let t0 = net.now();
        // Blob larger than the laptop quota.
        let err = net
            .send_blob(pda, laptop, "big", Bytes::from("x".repeat(2000)))
            .unwrap_err();
        assert!(matches!(err, NetError::QuotaExceeded { .. }));
        assert!(
            net.now() > t0,
            "airtime was spent even though storing failed"
        );
    }

    #[test]
    fn trace_records_lifecycle() {
        let (mut net, pda, laptop) = world();
        net.send_blob(pda, laptop, "k", "abc".into()).unwrap();
        net.drop_blob(pda, laptop, "k").unwrap();
        let kinds: Vec<_> = net
            .trace()
            .iter()
            .map(|e| std::mem::discriminant(&e.kind))
            .collect();
        assert_eq!(kinds.len(), 5); // 2 adds, 1 link, 1 store, 1 drop
        assert!(net
            .trace()
            .iter()
            .any(|e| matches!(&e.kind, TraceKind::BlobStored { key, .. } if key == "k")));
        let drained = net.take_trace();
        assert_eq!(drained.len(), 5);
        assert!(net.trace().is_empty());
    }

    #[test]
    fn churn_seq_counts_topology_changes_only() {
        let (mut net, pda, laptop) = world();
        let s0 = net.churn_seq();
        // Transfers are not churn.
        net.send_blob(pda, laptop, "k", "abc".into()).unwrap();
        net.fetch_blob(pda, laptop, "k").unwrap();
        assert_eq!(net.churn_seq(), s0);
        net.depart(laptop).unwrap();
        assert_eq!(net.churn_seq(), s0 + 1);
        net.arrive(laptop).unwrap();
        assert_eq!(net.churn_seq(), s0 + 2);
        net.disconnect(pda, laptop);
        assert_eq!(net.churn_seq(), s0 + 3);
        net.disconnect(pda, laptop); // already gone: no change
        assert_eq!(net.churn_seq(), s0 + 3);
        net.connect(pda, laptop, LinkSpec::bluetooth()).unwrap();
        assert_eq!(net.churn_seq(), s0 + 4);
    }

    #[test]
    fn holders_of_key_lists_present_holders_in_id_order() {
        let mut net = SimNet::new();
        let pda = net.add_device("pda", DeviceKind::Pda, 0);
        let a = net.add_device("a", DeviceKind::Laptop, 100);
        let b = net.add_device("b", DeviceKind::Desktop, 100);
        net.connect(pda, a, LinkSpec::bluetooth()).unwrap();
        net.connect(pda, b, LinkSpec::wifi()).unwrap();
        net.send_blob(pda, a, "k", "x".into()).unwrap();
        net.send_blob(pda, b, "k", "x".into()).unwrap();
        net.send_blob(pda, b, "other", "y".into()).unwrap();
        assert_eq!(net.holders_of_key("k"), vec![a, b]);
        // Departed holders are not offered.
        net.depart(a).unwrap();
        assert_eq!(net.holders_of_key("k"), vec![b]);
        assert!(net.holders_of_key("nope").is_empty());
    }

    #[test]
    fn unknown_device_is_reported() {
        let net = SimNet::new();
        assert!(matches!(
            net.profile(DeviceId(9)),
            Err(NetError::UnknownDevice { .. })
        ));
    }

    #[test]
    fn link_lookup_is_symmetric() {
        let (net, pda, laptop) = world();
        assert!(net.link(pda, laptop).is_some());
        assert!(net.link(laptop, pda).is_some());
    }

    #[test]
    fn disconnect_removes_reachability() {
        let (mut net, pda, laptop) = world();
        net.disconnect(laptop, pda);
        assert!(net.link(pda, laptop).is_none());
        assert!(matches!(
            net.send_blob(pda, laptop, "k", "x".into()),
            Err(NetError::NotConnected { .. })
        ));
    }
}
