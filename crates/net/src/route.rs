//! Multi-hop routing — the paper's closing vision includes devices
//! "available to any user either to store data **or to relay
//! communications**". This module adds relay paths on top of the direct
//! links: a blob can reach a storage device several radio hops away, at
//! the cost of every hop's airtime.

use crate::{DeviceId, NetError, Result, SimDuration, SimNet, TraceKind};
use bytes::Bytes;

/// A relay path: the intermediate devices between source and destination
/// (exclusive of both), plus the total transfer cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Source device.
    pub from: DeviceId,
    /// Destination device.
    pub to: DeviceId,
    /// Intermediate relays, in order (empty for a direct link).
    pub relays: Vec<DeviceId>,
}

impl Route {
    /// Number of radio hops (1 for a direct link).
    pub fn hops(&self) -> usize {
        self.relays.len() + 1
    }
}

impl SimNet {
    /// Find the fewest-hops route from `from` to `to` over present devices
    /// (breadth-first over the link graph; ties broken by device id for
    /// determinism).
    ///
    /// Returns `None` when `to` is unreachable (or either side is absent).
    pub fn route(&self, from: DeviceId, to: DeviceId) -> Option<Route> {
        if !self.is_present(from) || !self.is_present(to) {
            return None;
        }
        if from == to {
            return Some(Route {
                from,
                to,
                relays: Vec::new(),
            });
        }
        let mut predecessor: std::collections::HashMap<DeviceId, DeviceId> =
            std::collections::HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        'search: while let Some(cur) = queue.pop_front() {
            for next in self.nearby(cur) {
                if next == from || predecessor.contains_key(&next) {
                    continue;
                }
                predecessor.insert(next, cur);
                if next == to {
                    break 'search;
                }
                queue.push_back(next);
            }
        }
        predecessor.contains_key(&to).then(|| {
            let mut relays = Vec::new();
            let mut cur = to;
            while let Some(&prev) = predecessor.get(&cur) {
                if prev == from {
                    break;
                }
                relays.push(prev);
                cur = prev;
            }
            relays.reverse();
            Route { from, to, relays }
        })
    }

    /// Devices reachable from `of` over any number of hops, with their hop
    /// counts, in (hops, id) order. The single-hop prefix equals
    /// [`SimNet::nearby`].
    pub fn reachable(&self, of: DeviceId) -> Vec<(DeviceId, usize)> {
        let mut out = Vec::new();
        let mut seen = std::collections::HashSet::from([of]);
        let mut frontier = vec![of];
        let mut hops = 0;
        while !frontier.is_empty() {
            hops += 1;
            let mut next_frontier = Vec::new();
            for dev in frontier {
                for next in self.nearby(dev) {
                    if seen.insert(next) {
                        out.push((next, hops));
                        next_frontier.push(next);
                    }
                }
            }
            frontier = next_frontier;
        }
        out
    }

    /// Send a blob along a relay route: every hop pays its link's transfer
    /// time, and only the destination stores the bytes (relays forward,
    /// they do not keep copies — they "relay communications").
    ///
    /// # Errors
    ///
    /// [`NetError::NotConnected`] if no route exists, plus the
    /// destination's store errors. Airtime for traversed hops is spent even
    /// when a later hop or the final store fails.
    pub fn send_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<(Route, SimDuration)> {
        let route = self
            .route(from, to)
            .ok_or(NetError::NotConnected { from, to })?;
        if route.relays.is_empty() {
            let cost = self.send_blob(from, to, key, data)?;
            return Ok((route, cost));
        }
        let mut total = SimDuration::ZERO;
        let mut cur = from;
        for &relay in &route.relays {
            let link = self.link(cur, relay).ok_or(NetError::NotConnected {
                from: cur,
                to: relay,
            })?;
            let cost = link.transfer_time(data.len());
            self.advance(cost);
            total += cost;
            self.push_route_trace(cur, relay, key, data.len(), cost);
            cur = relay;
        }
        let cost = self.send_blob(cur, to, key, data)?;
        total += cost;
        Ok((route, total))
    }

    /// Fetch a blob back along a relay route. Symmetric cost model.
    ///
    /// # Errors
    ///
    /// As [`SimNet::send_blob_routed`].
    pub fn fetch_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
    ) -> Result<(Route, Bytes)> {
        let route = self
            .route(from, to)
            .ok_or(NetError::NotConnected { from, to })?;
        if route.relays.is_empty() {
            let data = self.fetch_blob(from, to, key)?;
            return Ok((route, data));
        }
        // The last relay talks to the storing device (non-empty: the
        // direct case returned above).
        let last_relay = match route.relays.last() {
            Some(&relay) => relay,
            None => return Err(NetError::NotConnected { from, to }),
        };
        let data = self.fetch_blob(last_relay, to, key)?;
        // Then the bytes travel back across the relays to `from`.
        let mut cur = last_relay;
        for &relay in route.relays.iter().rev().skip(1) {
            let link = self.link(cur, relay).ok_or(NetError::NotConnected {
                from: cur,
                to: relay,
            })?;
            let cost = link.transfer_time(data.len());
            self.advance(cost);
            self.push_route_trace(cur, relay, key, data.len(), cost);
            cur = relay;
        }
        let link = self.link(cur, from).ok_or(NetError::NotConnected {
            from: cur,
            to: from,
        })?;
        let cost = link.transfer_time(data.len());
        self.advance(cost);
        self.push_route_trace(cur, from, key, data.len(), cost);
        Ok((route, data))
    }

    /// Instruct a (possibly multi-hop) storing device to drop a blob. The
    /// control message pays one link latency per hop.
    ///
    /// # Errors
    ///
    /// [`NetError::NotConnected`] if no route exists, plus store errors.
    pub fn drop_blob_routed(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()> {
        let route = self
            .route(from, to)
            .ok_or(NetError::NotConnected { from, to })?;
        if route.relays.is_empty() {
            return self.drop_blob(from, to, key);
        }
        let mut cur = from;
        for &relay in &route.relays {
            let link = self.link(cur, relay).ok_or(NetError::NotConnected {
                from: cur,
                to: relay,
            })?;
            self.advance(link.latency);
            cur = relay;
        }
        self.drop_blob(cur, to, key)
    }

    fn push_route_trace(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        bytes: usize,
        airtime: SimDuration,
    ) {
        let at = self.now();
        self.push_trace_at(
            at,
            TraceKind::BlobRelayed {
                from,
                to,
                key: key.to_string(),
                bytes,
                airtime,
            },
        );
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use crate::{DeviceKind, LinkSpec, SimNet};

    /// pda — m1 — m2 — desktop, plus a direct pda—laptop link.
    fn chain_world() -> (SimNet, Vec<crate::DeviceId>) {
        let mut net = SimNet::new();
        let pda = net.add_device("pda", DeviceKind::Pda, 0);
        let m1 = net.add_device("m1", DeviceKind::Mote, 1 << 16);
        let m2 = net.add_device("m2", DeviceKind::Mote, 1 << 16);
        let desktop = net.add_device("desktop", DeviceKind::Desktop, 1 << 20);
        let laptop = net.add_device("laptop", DeviceKind::Laptop, 1 << 20);
        net.connect(pda, m1, LinkSpec::mote_radio()).unwrap();
        net.connect(m1, m2, LinkSpec::mote_radio()).unwrap();
        net.connect(m2, desktop, LinkSpec::wifi()).unwrap();
        net.connect(pda, laptop, LinkSpec::bluetooth()).unwrap();
        (net, vec![pda, m1, m2, desktop, laptop])
    }

    #[test]
    fn bfs_route_finds_fewest_hops() {
        let (net, d) = chain_world();
        let r = net.route(d[0], d[3]).unwrap();
        assert_eq!(r.relays, vec![d[1], d[2]]);
        assert_eq!(r.hops(), 3);
        let direct = net.route(d[0], d[4]).unwrap();
        assert!(direct.relays.is_empty());
    }

    #[test]
    fn reachable_orders_by_hops() {
        let (net, d) = chain_world();
        let r = net.reachable(d[0]);
        assert_eq!(r[0].1, 1);
        assert!(r.contains(&(d[3], 3)));
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn routed_send_and_fetch_roundtrip_with_hop_costs() {
        let (mut net, d) = chain_world();
        let t0 = net.now();
        let (route, cost) = net
            .send_blob_routed(d[0], d[3], "k", bytes::Bytes::from("x".repeat(500)))
            .unwrap();
        assert_eq!(route.hops(), 3);
        // Three hops: two mote-radio transfers + one wifi transfer.
        let expected = LinkSpec::mote_radio().transfer_time(500)
            + LinkSpec::mote_radio().transfer_time(500)
            + LinkSpec::wifi().transfer_time(500);
        assert_eq!(cost, expected);
        assert_eq!(net.now() - t0, expected);
        // Relays hold nothing; the destination holds the blob.
        assert!(!net.holds_blob(d[1], "k"));
        assert!(!net.holds_blob(d[2], "k"));
        assert!(net.holds_blob(d[3], "k"));
        let (route_back, data) = net.fetch_blob_routed(d[0], d[3], "k").unwrap();
        assert_eq!(route_back.hops(), 3);
        assert_eq!(data.len(), 500);
    }

    #[test]
    fn departed_relay_breaks_the_route() {
        let (mut net, d) = chain_world();
        net.depart(d[1]).unwrap();
        assert!(net.route(d[0], d[3]).is_none());
        assert!(matches!(
            net.send_blob_routed(d[0], d[3], "k", "x".into()),
            Err(crate::NetError::NotConnected { .. })
        ));
        // The laptop is still directly reachable.
        assert!(net.route(d[0], d[4]).is_some());
    }

    #[test]
    fn routed_drop_reaches_distant_store() {
        let (mut net, d) = chain_world();
        net.send_blob_routed(d[0], d[3], "k", "data".into())
            .unwrap();
        net.drop_blob_routed(d[0], d[3], "k").unwrap();
        assert!(!net.holds_blob(d[3], "k"));
    }

    #[test]
    fn route_to_self_is_empty() {
        let (net, d) = chain_world();
        let r = net.route(d[0], d[0]).unwrap();
        assert_eq!(r.hops(), 1);
        assert!(r.relays.is_empty());
    }
}
