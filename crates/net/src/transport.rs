//! The transport seam: one call surface, two worlds.
//!
//! PRs 0–7 moved every byte through the in-process [`SimNet`]. This module
//! carves that call surface into an object-safe [`Transport`] trait and a
//! [`NetFabric`] dispatcher so the swapping core can run unchanged over
//! either the deterministic simulation (still the default, and the only
//! backend the golden traces accept) or a live backend such as the
//! `obiwan-netd` actor runtime fronting real `obiwan-blobd` processes.
//!
//! Design rules:
//!
//! - [`NetFabric`] exposes the *entire* `SimNet` public surface as inherent
//!   methods with identical signatures, so the dozens of
//!   `net.lock().unwrap().nearby(..)`-style call sites across core, tests
//!   and examples compile untouched.
//! - World *construction* (`add_device`) and trace *extraction* stay
//!   simulation-only: backends build their device tables before being
//!   wrapped, and return an empty trace (real time is not replayable).
//! - Backends map partial failure onto the existing [`crate::NetError`]
//!   vocabulary: a dead or unreachable daemon surfaces as
//!   [`crate::NetError::Departed`], which the core's k-way failover already
//!   treats as "try the next holder"; a malformed frame surfaces as the
//!   hard [`crate::NetError::Protocol`].

use crate::{
    Bytes, DeviceId, DeviceProfile, FailurePlan, LinkSpec, Result, Route, SimDuration, SimNet,
    SimTime, TraceEvent,
};

/// Which backend a world's [`NetFabric`] dispatches over.
///
/// Carried by the core's `SwapConfig` so scenario builders can select a
/// backend declaratively; [`TransportKind::Sim`] is the default and the
/// only kind whose traces are byte-replayable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// The deterministic in-process simulation.
    #[default]
    Sim,
    /// A live backend: the actor runtime shipping framed blobs to
    /// `obiwan-blobd` daemons over TCP.
    Tcp,
}

/// The `SimNet` call surface the swapping core depends on, as an
/// object-safe trait.
///
/// Everything the manager, detach/reload paths, repair sweep and auditor
/// call through the shared net handle is here — blob verbs, routing,
/// churn and presence queries, storage accounting and the clock. A
/// backend implements this over whatever medium it likes; [`SimNet`]
/// implements it by delegation to its inherent methods.
pub trait Transport {
    /// The current instant on this transport's clock.
    fn now(&self) -> SimTime;

    /// Advance the clock by `d`, returning the new instant. Backends whose
    /// clock is real time may treat this as a no-op read.
    fn advance(&mut self, d: SimDuration) -> SimTime;

    /// A device's profile.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::UnknownDevice`] if `device` is not in this world.
    fn profile(&self, device: DeviceId) -> Result<&DeviceProfile>;

    /// Install a failure-injection plan on a device's store.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::UnknownDevice`] if `device` is not in this world.
    fn set_failure_plan(&mut self, device: DeviceId, plan: FailurePlan) -> Result<()>;

    /// Connect two devices with a link.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::UnknownDevice`] if either endpoint is unknown.
    fn connect(&mut self, a: DeviceId, b: DeviceId, link: LinkSpec) -> Result<()>;

    /// Tear down the link between two devices (idempotent).
    fn disconnect(&mut self, a: DeviceId, b: DeviceId);

    /// The link between two devices, if both are present and connected.
    fn link(&self, a: DeviceId, b: DeviceId) -> Option<LinkSpec>;

    /// Present devices one hop from `of`, ascending id order.
    fn nearby(&self, of: DeviceId) -> Vec<DeviceId>;

    /// Present devices reachable from `of` with their hop counts,
    /// ascending (hops, id) order.
    fn reachable(&self, of: DeviceId) -> Vec<(DeviceId, usize)>;

    /// Shortest route from `from` to `to`, if one exists.
    fn route(&self, from: DeviceId, to: DeviceId) -> Option<Route>;

    /// Remaining storage quota on a device.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::UnknownDevice`] / [`crate::NetError::Departed`].
    fn free_storage(&self, device: DeviceId) -> Result<usize>;

    /// Mark a device as departed (its blobs survive for its return).
    ///
    /// # Errors
    ///
    /// [`crate::NetError::UnknownDevice`] if `device` is not in this world.
    fn depart(&mut self, device: DeviceId) -> Result<()>;

    /// Mark a departed device as present again.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::UnknownDevice`] if `device` is not in this world.
    fn arrive(&mut self, device: DeviceId) -> Result<()>;

    /// Monotone counter bumped on every depart/arrive.
    fn churn_seq(&self) -> u64;

    /// Whether a device is currently present.
    fn is_present(&self, device: DeviceId) -> bool;

    /// Ship a blob from `from` to `to`, returning the transfer cost.
    ///
    /// # Errors
    ///
    /// Reachability, quota and injected-failure errors; live backends add
    /// [`crate::NetError::Departed`] for dead peers and
    /// [`crate::NetError::Protocol`] for framing faults.
    fn send_blob(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<SimDuration>;

    /// Fetch the blob stored under `key` on `to`.
    ///
    /// # Errors
    ///
    /// As [`Transport::send_blob`], plus [`crate::NetError::UnknownBlob`].
    fn fetch_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<Bytes>;

    /// Drop the blob stored under `key` on `to`.
    ///
    /// # Errors
    ///
    /// As [`Transport::fetch_blob`].
    fn drop_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()>;

    /// Ship a blob along a relay route.
    ///
    /// # Errors
    ///
    /// As [`Transport::send_blob`], plus
    /// [`crate::NetError::NotConnected`] when no route exists.
    fn send_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<(Route, SimDuration)>;

    /// Fetch a blob back along a relay route.
    ///
    /// # Errors
    ///
    /// As [`Transport::send_blob_routed`].
    fn fetch_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
    ) -> Result<(Route, Bytes)>;

    /// Drop a blob across a relay route.
    ///
    /// # Errors
    ///
    /// As [`Transport::send_blob_routed`].
    fn drop_blob_routed(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()>;

    /// Whether `to` currently holds a blob under `key`.
    fn holds_blob(&self, to: DeviceId, key: &str) -> bool;

    /// Every device (present or not) holding a blob under `key`,
    /// ascending id order.
    fn holders_of_key(&self, key: &str) -> Vec<DeviceId>;

    /// Keys of every blob a device holds, sorted.
    fn blob_keys(&self, device: DeviceId) -> Vec<String>;

    /// Raw bytes of the blob under `key` on `device`, if any.
    fn blob_data(&self, device: DeviceId, key: &str) -> Option<Bytes>;

    /// Bytes of quota a device's store currently charges.
    ///
    /// # Errors
    ///
    /// [`crate::NetError::UnknownDevice`] if `device` is not in this world.
    fn stored_bytes(&self, device: DeviceId) -> Result<usize>;

    /// Every device id in this world, ascending.
    fn device_ids(&self) -> Vec<DeviceId>;

    /// Cumulative (bytes_sent, bytes_fetched).
    fn traffic(&self) -> (u64, u64);
}

impl Transport for SimNet {
    fn now(&self) -> SimTime {
        SimNet::now(self)
    }
    fn advance(&mut self, d: SimDuration) -> SimTime {
        SimNet::advance(self, d)
    }
    fn profile(&self, device: DeviceId) -> Result<&DeviceProfile> {
        SimNet::profile(self, device)
    }
    fn set_failure_plan(&mut self, device: DeviceId, plan: FailurePlan) -> Result<()> {
        SimNet::set_failure_plan(self, device, plan)
    }
    fn connect(&mut self, a: DeviceId, b: DeviceId, link: LinkSpec) -> Result<()> {
        SimNet::connect(self, a, b, link)
    }
    fn disconnect(&mut self, a: DeviceId, b: DeviceId) {
        SimNet::disconnect(self, a, b);
    }
    fn link(&self, a: DeviceId, b: DeviceId) -> Option<LinkSpec> {
        SimNet::link(self, a, b)
    }
    fn nearby(&self, of: DeviceId) -> Vec<DeviceId> {
        SimNet::nearby(self, of)
    }
    fn reachable(&self, of: DeviceId) -> Vec<(DeviceId, usize)> {
        SimNet::reachable(self, of)
    }
    fn route(&self, from: DeviceId, to: DeviceId) -> Option<Route> {
        SimNet::route(self, from, to)
    }
    fn free_storage(&self, device: DeviceId) -> Result<usize> {
        SimNet::free_storage(self, device)
    }
    fn depart(&mut self, device: DeviceId) -> Result<()> {
        SimNet::depart(self, device)
    }
    fn arrive(&mut self, device: DeviceId) -> Result<()> {
        SimNet::arrive(self, device)
    }
    fn churn_seq(&self) -> u64 {
        SimNet::churn_seq(self)
    }
    fn is_present(&self, device: DeviceId) -> bool {
        SimNet::is_present(self, device)
    }
    fn send_blob(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<SimDuration> {
        SimNet::send_blob(self, from, to, key, data)
    }
    fn fetch_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<Bytes> {
        SimNet::fetch_blob(self, from, to, key)
    }
    fn drop_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()> {
        SimNet::drop_blob(self, from, to, key)
    }
    fn send_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<(Route, SimDuration)> {
        SimNet::send_blob_routed(self, from, to, key, data)
    }
    fn fetch_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
    ) -> Result<(Route, Bytes)> {
        SimNet::fetch_blob_routed(self, from, to, key)
    }
    fn drop_blob_routed(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()> {
        SimNet::drop_blob_routed(self, from, to, key)
    }
    fn holds_blob(&self, to: DeviceId, key: &str) -> bool {
        SimNet::holds_blob(self, to, key)
    }
    fn holders_of_key(&self, key: &str) -> Vec<DeviceId> {
        SimNet::holders_of_key(self, key)
    }
    fn blob_keys(&self, device: DeviceId) -> Vec<String> {
        SimNet::blob_keys(self, device)
    }
    fn blob_data(&self, device: DeviceId, key: &str) -> Option<Bytes> {
        SimNet::blob_data(self, device, key)
    }
    fn stored_bytes(&self, device: DeviceId) -> Result<usize> {
        SimNet::stored_bytes(self, device)
    }
    fn device_ids(&self) -> Vec<DeviceId> {
        SimNet::device_ids(self)
    }
    fn traffic(&self) -> (u64, u64) {
        SimNet::traffic(self)
    }
}

/// The world handle the core locks: either the deterministic simulation or
/// a boxed live backend.
///
/// Every `SimNet` public method is mirrored here with an identical
/// signature, so `Arc<Mutex<NetFabric>>` is a drop-in replacement for the
/// old `Arc<Mutex<SimNet>>` shared handle.
pub enum NetFabric {
    /// The in-process simulation (default; replayable traces).
    Sim(SimNet),
    /// A live backend dispatched through the [`Transport`] trait.
    Backend(Box<dyn Transport + Send>),
}

impl NetFabric {
    /// Wrap a fully built simulation world.
    pub fn sim(net: SimNet) -> Self {
        NetFabric::Sim(net)
    }

    /// Wrap a live backend.
    pub fn backend(t: Box<dyn Transport + Send>) -> Self {
        NetFabric::Backend(t)
    }

    /// Which backend this fabric dispatches over.
    pub fn kind(&self) -> TransportKind {
        match self {
            NetFabric::Sim(_) => TransportKind::Sim,
            NetFabric::Backend(_) => TransportKind::Tcp,
        }
    }

    /// The inner simulation, if this fabric is simulated.
    pub fn as_sim(&self) -> Option<&SimNet> {
        match self {
            NetFabric::Sim(net) => Some(net),
            NetFabric::Backend(_) => None,
        }
    }

    /// The inner simulation, mutably, if this fabric is simulated.
    pub fn as_sim_mut(&mut self) -> Option<&mut SimNet> {
        match self {
            NetFabric::Sim(net) => Some(net),
            NetFabric::Backend(_) => None,
        }
    }

    /// Add a device to the simulated world.
    ///
    /// World construction is simulation-only: live backends build their
    /// device tables before being wrapped in a fabric.
    ///
    /// # Panics
    ///
    /// Panics if this fabric wraps a live backend.
    pub fn add_device(
        &mut self,
        name: impl Into<String>,
        kind: crate::DeviceKind,
        storage_quota: usize,
    ) -> DeviceId {
        match self {
            NetFabric::Sim(net) => net.add_device(name, kind, storage_quota),
            NetFabric::Backend(_) => {
                panic!("add_device is simulation-only: build the backend world before wrapping")
            }
        }
    }

    /// The network-level event trace. Live backends are not replayable and
    /// return an empty slice.
    pub fn trace(&self) -> &[TraceEvent] {
        match self {
            NetFabric::Sim(net) => net.trace(),
            NetFabric::Backend(_) => &[],
        }
    }

    /// Drain the network-level event trace (empty for live backends).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self {
            NetFabric::Sim(net) => net.take_trace(),
            NetFabric::Backend(_) => Vec::new(),
        }
    }

    /// The current instant. See [`Transport::now`].
    pub fn now(&self) -> SimTime {
        match self {
            NetFabric::Sim(net) => net.now(),
            NetFabric::Backend(t) => t.now(),
        }
    }

    /// Advance the clock. See [`Transport::advance`].
    pub fn advance(&mut self, d: SimDuration) -> SimTime {
        match self {
            NetFabric::Sim(net) => net.advance(d),
            NetFabric::Backend(t) => t.advance(d),
        }
    }

    /// A device's profile. See [`Transport::profile`].
    ///
    /// # Errors
    ///
    /// As [`Transport::profile`].
    pub fn profile(&self, device: DeviceId) -> Result<&DeviceProfile> {
        match self {
            NetFabric::Sim(net) => net.profile(device),
            NetFabric::Backend(t) => t.profile(device),
        }
    }

    /// Install a failure plan. See [`Transport::set_failure_plan`].
    ///
    /// # Errors
    ///
    /// As [`Transport::set_failure_plan`].
    pub fn set_failure_plan(&mut self, device: DeviceId, plan: FailurePlan) -> Result<()> {
        match self {
            NetFabric::Sim(net) => net.set_failure_plan(device, plan),
            NetFabric::Backend(t) => t.set_failure_plan(device, plan),
        }
    }

    /// Connect two devices. See [`Transport::connect`].
    ///
    /// # Errors
    ///
    /// As [`Transport::connect`].
    pub fn connect(&mut self, a: DeviceId, b: DeviceId, link: LinkSpec) -> Result<()> {
        match self {
            NetFabric::Sim(net) => net.connect(a, b, link),
            NetFabric::Backend(t) => t.connect(a, b, link),
        }
    }

    /// Tear down a link. See [`Transport::disconnect`].
    pub fn disconnect(&mut self, a: DeviceId, b: DeviceId) {
        match self {
            NetFabric::Sim(net) => net.disconnect(a, b),
            NetFabric::Backend(t) => t.disconnect(a, b),
        }
    }

    /// The link between two devices. See [`Transport::link`].
    pub fn link(&self, a: DeviceId, b: DeviceId) -> Option<LinkSpec> {
        match self {
            NetFabric::Sim(net) => net.link(a, b),
            NetFabric::Backend(t) => t.link(a, b),
        }
    }

    /// One-hop neighbours. See [`Transport::nearby`].
    pub fn nearby(&self, of: DeviceId) -> Vec<DeviceId> {
        match self {
            NetFabric::Sim(net) => net.nearby(of),
            NetFabric::Backend(t) => t.nearby(of),
        }
    }

    /// Reachable devices with hop counts. See [`Transport::reachable`].
    pub fn reachable(&self, of: DeviceId) -> Vec<(DeviceId, usize)> {
        match self {
            NetFabric::Sim(net) => net.reachable(of),
            NetFabric::Backend(t) => t.reachable(of),
        }
    }

    /// Shortest route. See [`Transport::route`].
    pub fn route(&self, from: DeviceId, to: DeviceId) -> Option<Route> {
        match self {
            NetFabric::Sim(net) => net.route(from, to),
            NetFabric::Backend(t) => t.route(from, to),
        }
    }

    /// Remaining quota. See [`Transport::free_storage`].
    ///
    /// # Errors
    ///
    /// As [`Transport::free_storage`].
    pub fn free_storage(&self, device: DeviceId) -> Result<usize> {
        match self {
            NetFabric::Sim(net) => net.free_storage(device),
            NetFabric::Backend(t) => t.free_storage(device),
        }
    }

    /// Mark a device departed. See [`Transport::depart`].
    ///
    /// # Errors
    ///
    /// As [`Transport::depart`].
    pub fn depart(&mut self, device: DeviceId) -> Result<()> {
        match self {
            NetFabric::Sim(net) => net.depart(device),
            NetFabric::Backend(t) => t.depart(device),
        }
    }

    /// Mark a device present. See [`Transport::arrive`].
    ///
    /// # Errors
    ///
    /// As [`Transport::arrive`].
    pub fn arrive(&mut self, device: DeviceId) -> Result<()> {
        match self {
            NetFabric::Sim(net) => net.arrive(device),
            NetFabric::Backend(t) => t.arrive(device),
        }
    }

    /// Churn counter. See [`Transport::churn_seq`].
    pub fn churn_seq(&self) -> u64 {
        match self {
            NetFabric::Sim(net) => net.churn_seq(),
            NetFabric::Backend(t) => t.churn_seq(),
        }
    }

    /// Presence query. See [`Transport::is_present`].
    pub fn is_present(&self, device: DeviceId) -> bool {
        match self {
            NetFabric::Sim(net) => net.is_present(device),
            NetFabric::Backend(t) => t.is_present(device),
        }
    }

    /// Ship a blob. See [`Transport::send_blob`].
    ///
    /// # Errors
    ///
    /// As [`Transport::send_blob`].
    pub fn send_blob(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<SimDuration> {
        match self {
            NetFabric::Sim(net) => net.send_blob(from, to, key, data),
            NetFabric::Backend(t) => t.send_blob(from, to, key, data),
        }
    }

    /// Fetch a blob. See [`Transport::fetch_blob`].
    ///
    /// # Errors
    ///
    /// As [`Transport::fetch_blob`].
    pub fn fetch_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<Bytes> {
        match self {
            NetFabric::Sim(net) => net.fetch_blob(from, to, key),
            NetFabric::Backend(t) => t.fetch_blob(from, to, key),
        }
    }

    /// Drop a blob. See [`Transport::drop_blob`].
    ///
    /// # Errors
    ///
    /// As [`Transport::drop_blob`].
    pub fn drop_blob(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()> {
        match self {
            NetFabric::Sim(net) => net.drop_blob(from, to, key),
            NetFabric::Backend(t) => t.drop_blob(from, to, key),
        }
    }

    /// Ship a blob along a route. See [`Transport::send_blob_routed`].
    ///
    /// # Errors
    ///
    /// As [`Transport::send_blob_routed`].
    pub fn send_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
        data: Bytes,
    ) -> Result<(Route, SimDuration)> {
        match self {
            NetFabric::Sim(net) => net.send_blob_routed(from, to, key, data),
            NetFabric::Backend(t) => t.send_blob_routed(from, to, key, data),
        }
    }

    /// Fetch a blob along a route. See [`Transport::fetch_blob_routed`].
    ///
    /// # Errors
    ///
    /// As [`Transport::fetch_blob_routed`].
    pub fn fetch_blob_routed(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        key: &str,
    ) -> Result<(Route, Bytes)> {
        match self {
            NetFabric::Sim(net) => net.fetch_blob_routed(from, to, key),
            NetFabric::Backend(t) => t.fetch_blob_routed(from, to, key),
        }
    }

    /// Drop a blob across a route. See [`Transport::drop_blob_routed`].
    ///
    /// # Errors
    ///
    /// As [`Transport::drop_blob_routed`].
    pub fn drop_blob_routed(&mut self, from: DeviceId, to: DeviceId, key: &str) -> Result<()> {
        match self {
            NetFabric::Sim(net) => net.drop_blob_routed(from, to, key),
            NetFabric::Backend(t) => t.drop_blob_routed(from, to, key),
        }
    }

    /// Blob presence. See [`Transport::holds_blob`].
    pub fn holds_blob(&self, to: DeviceId, key: &str) -> bool {
        match self {
            NetFabric::Sim(net) => net.holds_blob(to, key),
            NetFabric::Backend(t) => t.holds_blob(to, key),
        }
    }

    /// Holders of a key. See [`Transport::holders_of_key`].
    pub fn holders_of_key(&self, key: &str) -> Vec<DeviceId> {
        match self {
            NetFabric::Sim(net) => net.holders_of_key(key),
            NetFabric::Backend(t) => t.holders_of_key(key),
        }
    }

    /// A device's blob keys. See [`Transport::blob_keys`].
    pub fn blob_keys(&self, device: DeviceId) -> Vec<String> {
        match self {
            NetFabric::Sim(net) => net.blob_keys(device),
            NetFabric::Backend(t) => t.blob_keys(device),
        }
    }

    /// A blob's raw bytes. See [`Transport::blob_data`].
    pub fn blob_data(&self, device: DeviceId, key: &str) -> Option<Bytes> {
        match self {
            NetFabric::Sim(net) => net.blob_data(device, key),
            NetFabric::Backend(t) => t.blob_data(device, key),
        }
    }

    /// Charged store bytes. See [`Transport::stored_bytes`].
    ///
    /// # Errors
    ///
    /// As [`Transport::stored_bytes`].
    pub fn stored_bytes(&self, device: DeviceId) -> Result<usize> {
        match self {
            NetFabric::Sim(net) => net.stored_bytes(device),
            NetFabric::Backend(t) => t.stored_bytes(device),
        }
    }

    /// Every device id. See [`Transport::device_ids`].
    pub fn device_ids(&self) -> Vec<DeviceId> {
        match self {
            NetFabric::Sim(net) => net.device_ids(),
            NetFabric::Backend(t) => t.device_ids(),
        }
    }

    /// Traffic counters. See [`Transport::traffic`].
    pub fn traffic(&self) -> (u64, u64) {
        match self {
            NetFabric::Sim(net) => net.traffic(),
            NetFabric::Backend(t) => t.traffic(),
        }
    }
}

impl Default for NetFabric {
    /// An empty simulated world.
    fn default() -> Self {
        NetFabric::Sim(SimNet::new())
    }
}

impl std::fmt::Debug for NetFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetFabric::Sim(net) => f.debug_tuple("NetFabric::Sim").field(net).finish(),
            NetFabric::Backend(_) => f.write_str("NetFabric::Backend(..)"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use crate::DeviceKind;

    fn tiny_world() -> (NetFabric, DeviceId, DeviceId) {
        let mut net = SimNet::new();
        let pda = net.add_device("pda", DeviceKind::Pda, 0);
        let laptop = net.add_device("laptop", DeviceKind::Laptop, 1 << 20);
        net.connect(pda, laptop, LinkSpec::bluetooth()).unwrap();
        (NetFabric::sim(net), pda, laptop)
    }

    #[test]
    fn fabric_delegates_blob_verbs_to_sim() {
        let (mut fab, pda, laptop) = tiny_world();
        assert_eq!(fab.kind(), TransportKind::Sim);
        let data = Bytes::from_static(b"<swap/>");
        fab.send_blob(pda, laptop, "k1", data.clone()).unwrap();
        assert!(fab.holds_blob(laptop, "k1"));
        assert_eq!(fab.fetch_blob(pda, laptop, "k1").unwrap(), data);
        fab.drop_blob(pda, laptop, "k1").unwrap();
        assert!(!fab.holds_blob(laptop, "k1"));
        // The sim recorded a trace; a backend would return empty.
        assert!(!fab.trace().is_empty());
    }

    #[test]
    fn sim_accessors_expose_the_inner_world() {
        let (mut fab, pda, _) = tiny_world();
        assert!(fab.as_sim().is_some());
        assert!(fab.as_sim_mut().is_some());
        assert_eq!(fab.nearby(pda).len(), 1);
    }

    #[test]
    fn simnet_satisfies_the_transport_trait_object() {
        let mut net = SimNet::new();
        let pda = net.add_device("pda", DeviceKind::Pda, 0);
        let boxed: Box<dyn Transport + Send> = Box::new(net);
        let mut fab = NetFabric::backend(boxed);
        assert_eq!(fab.kind(), TransportKind::Tcp);
        assert!(fab.is_present(pda));
        assert!(fab.as_sim().is_none());
        // Backends report no replayable trace.
        assert!(fab.trace().is_empty());
        assert!(fab.take_trace().is_empty());
    }
}
