//! The dumb blob store: store / fetch / drop keyed bytes.
//!
//! This is deliberately the *entire* interface the paper requires of a
//! device that receives swapped objects: "They need only be able to store
//! and return a textual representation of the serialized objects". No VM,
//! no middleware, no object model — just keyed bytes with a quota. The
//! store is format-agnostic: the default wire format is still the paper's
//! self-describing XML text, but a dumb device never inspects what it
//! holds, so compact binary or compressed blobs ride the same three verbs.

use crate::{DeviceId, NetError, Result};
use bytes::Bytes;
use std::collections::HashMap;

/// The three-verb protocol spoken by storage devices.
///
/// Implementations must be deterministic; fault injection is expressed
/// through [`FailurePlan`] rather than randomness at the trait level.
pub trait BlobStore {
    /// Store `data` under `key`.
    ///
    /// # Errors
    ///
    /// [`NetError::QuotaExceeded`] when full, [`NetError::DuplicateBlob`] if
    /// the key is already present, or [`NetError::InjectedFailure`].
    fn store(&mut self, key: &str, data: Bytes) -> Result<()>;

    /// Return the bytes stored under `key` (a cheap refcounted handle, not
    /// a deep copy).
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownBlob`] or [`NetError::InjectedFailure`].
    fn fetch(&mut self, key: &str) -> Result<Bytes>;

    /// Drop the blob stored under `key`. Dropping an absent key is an error
    /// so that the middleware's bookkeeping bugs surface loudly.
    ///
    /// # Errors
    ///
    /// [`NetError::UnknownBlob`] or [`NetError::InjectedFailure`].
    fn drop_blob(&mut self, key: &str) -> Result<()>;

    /// Whether a blob with this key is stored.
    fn contains(&self, key: &str) -> bool;

    /// Bytes currently stored (keys + payloads).
    fn used_bytes(&self) -> usize;

    /// Number of blobs currently stored.
    fn blob_count(&self) -> usize;
}

/// Deterministic fault-injection plan for a [`MemStore`].
///
/// Operations are counted across all three verbs; when the counter reaches
/// an entry in `fail_at`, that operation fails with
/// [`NetError::InjectedFailure`] (and still consumes the count).
///
/// A plan may additionally carry a *seeded probabilistic* mode
/// ([`FailurePlan::fail_with_rate`]): each operation index is hashed with
/// the seed and fails when the hash lands under the rate threshold. The
/// outcome is a pure function of `(seed, op index)` — replaying the same
/// operation sequence reproduces the same failures, so churn/repair tests
/// and benches stay deterministic without hand-placed indices.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailurePlan {
    /// 0-based operation indices that must fail.
    pub fail_at: Vec<u64>,
    /// Probabilistic mode: `(seed, threshold)` — operation `n` fails when
    /// `mix(seed, n) < threshold`. `None` disables the mode.
    rate: Option<(u64, u64)>,
}

impl FailurePlan {
    /// A plan that never fails.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail the n-th operation (0-based), once.
    pub fn fail_once_at(n: u64) -> Self {
        FailurePlan {
            fail_at: vec![n],
            rate: None,
        }
    }

    /// Fail each operation independently with probability `rate` (clamped
    /// to `0.0..=1.0`), derived deterministically from `seed` and the
    /// operation index — same seed, same sequence, same failures.
    pub fn fail_with_rate(seed: u64, rate: f64) -> Self {
        let threshold = (rate.clamp(0.0, 1.0) * u64::MAX as f64) as u64;
        FailurePlan {
            fail_at: Vec::new(),
            rate: Some((seed, threshold)),
        }
    }

    /// Whether the `op_counter`-th operation must fail under this plan.
    ///
    /// Public so transport backends outside this crate (the actor
    /// runtime) can evaluate the same deterministic plan at their own
    /// dispatch layer instead of inside a store they may not own.
    pub fn should_fail(&self, op_counter: u64) -> bool {
        if self.fail_at.contains(&op_counter) {
            return true;
        }
        match self.rate {
            Some((seed, threshold)) => {
                mix(seed ^ op_counter.wrapping_mul(0x9e37_79b9_7f4a_7c15)) < threshold
            }
            None => false,
        }
    }
}

/// Splitmix64 finalizer — the deterministic hash behind
/// [`FailurePlan::fail_with_rate`].
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// In-memory quota-enforcing blob store — what a laptop, desktop, PDA or
/// mote in the room runs on behalf of its neighbours.
///
/// Quota accounting charges key bytes as well as payload bytes: a real
/// device has to remember the key too, so many tiny blobs cannot sneak
/// past the quota for free. `drop_blob` frees the same amount it charged.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    device: DeviceId,
    blobs: HashMap<String, Bytes>,
    quota: usize,
    used: usize,
    ops: u64,
    failures: FailurePlan,
}

impl DeviceId {
    pub(crate) const UNSET: DeviceId = DeviceId(u32::MAX);
}

impl Default for DeviceId {
    fn default() -> Self {
        DeviceId::UNSET
    }
}

impl MemStore {
    /// Create a store with a quota, attributed to `device` in errors.
    pub fn new(device: DeviceId, quota: usize) -> Self {
        MemStore {
            device,
            blobs: HashMap::new(),
            quota,
            used: 0,
            ops: 0,
            failures: FailurePlan::none(),
        }
    }

    /// Install a fault-injection plan.
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failures = plan;
    }

    /// The quota in bytes.
    pub fn quota(&self) -> usize {
        self.quota
    }

    /// Keys currently stored (unordered).
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.blobs.keys().map(String::as_str)
    }

    /// Peek at the stored bytes without counting an operation (control
    /// plane — the auditor uses this; it is not part of the wire protocol).
    pub fn peek(&self, key: &str) -> Option<Bytes> {
        self.blobs.get(key).cloned()
    }

    fn bump_op(&mut self, op: &'static str) -> Result<()> {
        let n = self.ops;
        self.ops += 1;
        if self.failures.should_fail(n) {
            return Err(NetError::InjectedFailure {
                device: self.device,
                op,
            });
        }
        Ok(())
    }
}

impl BlobStore for MemStore {
    fn store(&mut self, key: &str, data: Bytes) -> Result<()> {
        self.bump_op("store")?;
        if self.blobs.contains_key(key) {
            return Err(NetError::DuplicateBlob {
                device: self.device,
                key: key.to_string(),
            });
        }
        let size = key.len() + data.len();
        if self.used.saturating_add(size) > self.quota {
            return Err(NetError::QuotaExceeded {
                device: self.device,
                requested: size,
                used: self.used,
                quota: self.quota,
            });
        }
        self.used = self.used.saturating_add(size);
        self.blobs.insert(key.to_string(), data);
        Ok(())
    }

    fn fetch(&mut self, key: &str) -> Result<Bytes> {
        self.bump_op("fetch")?;
        self.blobs
            .get(key)
            .cloned()
            .ok_or_else(|| NetError::UnknownBlob {
                device: self.device,
                key: key.to_string(),
            })
    }

    fn drop_blob(&mut self, key: &str) -> Result<()> {
        self.bump_op("drop")?;
        match self.blobs.remove_entry(key) {
            Some((key, data)) => {
                self.used = self.used.saturating_sub(key.len() + data.len());
                Ok(())
            }
            None => Err(NetError::UnknownBlob {
                device: self.device,
                key: key.to_string(),
            }),
        }
    }

    fn contains(&self, key: &str) -> bool {
        self.blobs.contains_key(key)
    }

    fn used_bytes(&self) -> usize {
        self.used
    }

    fn blob_count(&self) -> usize {
        self.blobs.len()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    fn store() -> MemStore {
        MemStore::new(DeviceId(1), 100)
    }

    #[test]
    fn store_fetch_drop_roundtrip() {
        let mut s = store();
        s.store("k", "hello".into()).unwrap();
        assert!(s.contains("k"));
        // 1 key byte + 5 payload bytes.
        assert_eq!(s.used_bytes(), 6);
        assert_eq!(&s.fetch("k").unwrap()[..], b"hello");
        s.drop_blob("k").unwrap();
        assert!(!s.contains("k"));
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn quota_is_enforced_and_freed_on_drop() {
        let mut s = store();
        s.store("a", Bytes::from("x".repeat(60))).unwrap();
        let err = s.store("b", Bytes::from("y".repeat(60))).unwrap_err();
        assert!(matches!(err, NetError::QuotaExceeded { .. }));
        s.drop_blob("a").unwrap();
        s.store("b", Bytes::from("y".repeat(60))).unwrap();
    }

    #[test]
    fn keys_are_charged_against_the_quota() {
        let mut s = MemStore::new(DeviceId(1), 10);
        // Payload alone (4 B) fits; key (7 B) + payload does not.
        let err = s.store("big-key", "1234".into()).unwrap_err();
        assert!(matches!(err, NetError::QuotaExceeded { requested: 11, .. }));
        s.store("k", "1234".into()).unwrap();
        assert_eq!(s.used_bytes(), 5);
        s.drop_blob("k").unwrap();
        assert_eq!(s.used_bytes(), 0);
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut s = store();
        s.store("k", "1".into()).unwrap();
        assert!(matches!(
            s.store("k", "2".into()),
            Err(NetError::DuplicateBlob { .. })
        ));
        // Original value untouched.
        assert_eq!(&s.fetch("k").unwrap()[..], b"1");
    }

    #[test]
    fn missing_key_fetch_and_drop_error() {
        let mut s = store();
        assert!(matches!(s.fetch("nope"), Err(NetError::UnknownBlob { .. })));
        assert!(matches!(
            s.drop_blob("nope"),
            Err(NetError::UnknownBlob { .. })
        ));
    }

    #[test]
    fn injected_failure_fires_on_exact_operation() {
        let mut s = store();
        s.set_failure_plan(FailurePlan::fail_once_at(1));
        s.store("a", "1".into()).unwrap(); // op 0
        let err = s.fetch("a").unwrap_err(); // op 1 fails
        assert!(matches!(err, NetError::InjectedFailure { op: "fetch", .. }));
        assert_eq!(&s.fetch("a").unwrap()[..], b"1"); // op 2 succeeds
    }

    #[test]
    fn rate_plan_is_deterministic_for_a_seed() {
        // The same (seed, rate) fails the same operation indices on every
        // run; a different seed picks a different set.
        let failures = |seed: u64, rate: f64| -> Vec<u64> {
            let plan = FailurePlan::fail_with_rate(seed, rate);
            (0..200).filter(|&n| plan.should_fail(n)).collect()
        };
        let a = failures(7, 0.25);
        assert_eq!(a, failures(7, 0.25), "same seed must replay identically");
        assert_ne!(a, failures(8, 0.25), "different seed, different plan");
        // Roughly a quarter of 200 ops fail — wide deterministic bounds.
        assert!((20..=80).contains(&a.len()), "got {} failures", a.len());
    }

    #[test]
    fn rate_plan_extremes_never_and_always_fail() {
        let never = FailurePlan::fail_with_rate(3, 0.0);
        let always = FailurePlan::fail_with_rate(3, 1.0);
        assert!((0..100).all(|n| !never.should_fail(n)));
        // A threshold of u64::MAX leaves at most a rounding sliver; every
        // index we probe must fail.
        assert!((0..100).all(|n| always.should_fail(n)));
    }

    #[test]
    fn rate_plan_injects_through_the_store() {
        let mut s = store();
        s.set_failure_plan(FailurePlan::fail_with_rate(11, 1.0));
        assert!(matches!(
            s.store("k", "1".into()),
            Err(NetError::InjectedFailure { op: "store", .. })
        ));
    }

    #[test]
    fn blob_count_tracks_contents() {
        let mut s = store();
        assert_eq!(s.blob_count(), 0);
        s.store("a", "1".into()).unwrap();
        s.store("b", "2".into()).unwrap();
        assert_eq!(s.blob_count(), 2);
        assert_eq!(s.keys().count(), 2);
    }
}
