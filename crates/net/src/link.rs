//! Link models: bandwidth + latency → transfer cost.

use crate::SimDuration;

/// Characteristics of a wireless link between two devices.
///
/// A transfer of `n` bytes is costed as `latency + n * 8 / bandwidth`,
/// in whole microseconds (rounded up). Per the paper's setup, the default
/// preset is [`LinkSpec::bluetooth`]: 700 Kbps, the iPAQ 3360's radio.
///
/// # Examples
///
/// ```
/// use obiwan_net::LinkSpec;
///
/// let bt = LinkSpec::bluetooth();
/// // 700 Kbps ⇒ 8750 bytes take ~100 ms of airtime (plus latency).
/// let t = bt.transfer_time(8750);
/// assert!(t.as_millis() >= 100);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSpec {
    /// Usable bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way setup latency charged per transfer.
    pub latency: SimDuration,
}

impl LinkSpec {
    /// Arbitrary link.
    ///
    /// # Panics
    ///
    /// Panics if `bandwidth_bps` is zero.
    pub fn new(bandwidth_bps: u64, latency: SimDuration) -> Self {
        assert!(bandwidth_bps > 0, "a link must have nonzero bandwidth");
        LinkSpec {
            bandwidth_bps,
            latency,
        }
    }

    /// The paper's link: Bluetooth at 700 Kbps, 30 ms setup latency.
    pub fn bluetooth() -> Self {
        LinkSpec::new(700_000, SimDuration::from_millis(30))
    }

    /// 802.11b-era Wi-Fi: 5 Mbps usable, 5 ms latency.
    pub fn wifi() -> Self {
        LinkSpec::new(5_000_000, SimDuration::from_millis(5))
    }

    /// A slow personal-area link for motes: 100 Kbps, 50 ms latency.
    pub fn mote_radio() -> Self {
        LinkSpec::new(100_000, SimDuration::from_millis(50))
    }

    /// Time to move `bytes` across this link, including setup latency.
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        let bits = bytes as u64 * 8;
        // Round the airtime up to a whole microsecond.
        let airtime_us = (bits * 1_000_000).div_ceil(self.bandwidth_bps);
        self.latency + SimDuration::from_micros(airtime_us)
    }
}

impl Default for LinkSpec {
    /// The paper's Bluetooth link.
    fn default() -> Self {
        LinkSpec::bluetooth()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly_with_size() {
        let l = LinkSpec::new(1_000_000, SimDuration::ZERO);
        let t1 = l.transfer_time(1_000);
        let t2 = l.transfer_time(2_000);
        assert_eq!(t1.as_micros(), 8_000);
        assert_eq!(t2.as_micros(), 16_000);
    }

    #[test]
    fn latency_is_charged_once() {
        let l = LinkSpec::new(1_000_000, SimDuration::from_millis(10));
        assert_eq!(l.transfer_time(0).as_micros(), 10_000);
    }

    #[test]
    fn airtime_rounds_up() {
        let l = LinkSpec::new(3, SimDuration::ZERO); // 3 bits per second
                                                     // 1 byte = 8 bits → 2.66…s → 2666667 µs.
        assert_eq!(l.transfer_time(1).as_micros(), 2_666_667);
    }

    #[test]
    fn bluetooth_preset_matches_paper_rate() {
        assert_eq!(LinkSpec::bluetooth().bandwidth_bps, 700_000);
        assert_eq!(LinkSpec::default(), LinkSpec::bluetooth());
    }

    #[test]
    #[should_panic(expected = "nonzero bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = LinkSpec::new(0, SimDuration::ZERO);
    }
}
