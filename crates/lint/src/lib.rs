//! `obiwan-lint` — source-level architecture analyzer for the OBIWAN
//! workspace.
//!
//! PR 1's auditor checks the *runtime* object graph; this crate checks the
//! *source* tree for the architectural properties the paper's
//! referential-integrity guarantees rest on, the way production stacks
//! gate merges on custom lints. Zero dependencies: a hand-rolled lexer
//! ([`lexer`]), a light structural model ([`model`]), and a rule catalog
//! ([`rules`]):
//!
//! | rule | name | historical bug it would have caught |
//! |------|------|-------------------------------------|
//! | S1 | `lock-order` | the `make_cursor` manager-lock re-entrance deadlock (fixed in PR 1) |
//! | S2 | `recorder-bypass` | stats/event drift that forced the Recorder choke point (PR 4) |
//! | S3 | `layering` | dependency-direction erosion (core reaching into net internals) |
//! | S4 | `panic-paths` | panics stranding half-patched proxies (PR 1's `SwapError` work) |
//! | S5 | `blob-access` | blob stores/drops bypassing the k-way placement fan-out (PR 3) |
//! | S6 | `event-coverage` | a stats counter that no longer folds out of the trace (PR 4) |
//! | S7 | `wall-clock` | wall time leaking into traces, breaking run-over-run identity |
//! | S8 | `nondeterministic-iteration` | the `PlacementTable` HashMap iteration fixed in PR 4 |
//! | S9 | `guard-across-ship` | manager guard held across blob transmission (this PR's detach fix) |
//! | S10 | `guard-escape` | a guard outliving its function via return/field/`move` closure |
//! | S11 | `cross-shard-order` | keyed sibling locks taken without a canonical order (sharding prep) |
//! | S12 | `discarded-result` | a swap/placement `Result` silently dropped on some path |
//! | S13 | `blocking-under-lock` | netd pacing sleeps / blobd socket I/O charged under a guard |
//! | S14 | `actor-reentrancy` | an actor thread re-entering its own mailbox via a Transport verb |
//! | S15 | `unchecked-quota-arithmetic` | raw `+`/`-` on quota/used/airtime counters |
//!
//! S1 and S9–S12 are *flow-sensitive*: they run on a per-function control
//! flow graph ([`cfg`]) with a worklist dataflow framework ([`dataflow`])
//! and a held-lock-set analysis ([`locks`]) on top, so "held across" and
//! "on some path" mean actual paths, not lexical containment.
//!
//! S1, S9, S13, and S14 are additionally *interprocedural*: a
//! workspace-wide call graph ([`callgraph`]) feeds bottom-up per-function
//! summaries ([`summaries`]) computed SCC by SCC with a fuel-bounded
//! fixpoint, so a lock acquired in one function and a sleep buried three
//! calls deep meet anyway — and the violation carries the call chain.
//!
//! Violations can be suppressed per line with `// lint:allow(S7, reason)`
//! on or directly above the offending line, per file with
//! `// lint:allow-file(S4)`, or per run with `--allow <rule>`.

pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod rules;
pub mod summaries;

use model::FileModel;
use std::fmt;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// S1: lock-acquisition-order cycles across the static call
    /// approximation.
    LockOrder,
    /// S2: `SwapStats` mutation or `EventKind` emission outside the
    /// Recorder choke point.
    RecorderBypass,
    /// S3: dependency-direction wall (leaf crates, net internals,
    /// placement internals).
    Layering,
    /// S4: `unwrap`-family and indexing/slicing in library code of crates
    /// outside the original clippy wall.
    PanicPaths,
    /// S5: raw blob store/drop traffic outside the placement fan-out.
    BlobAccess,
    /// S6: Recorder methods whose counters and events can drift apart.
    EventCoverage,
    /// S7: wall-clock reads outside the virtual-clock module.
    WallClock,
    /// S8: `HashMap`/`HashSet` iteration on paths feeding the Recorder.
    NondeterministicIteration,
    /// S9: a lock guard live across a blocking `obiwan-net` blob
    /// send/fetch call on some path.
    GuardAcrossShip,
    /// S10: a guard escaping its function — returned, stored in a field,
    /// or captured by a `move` closure.
    GuardEscape,
    /// S11: two keyed sibling locks (same family, different shard keys)
    /// held together without canonical ordering evidence.
    CrossShardOrder,
    /// S12: a `Result` from a swap/placement operation dropped on some
    /// path.
    DiscardedResult,
    /// S13: a blocking operation (sleep, socket I/O, channel wait)
    /// reachable while a lock guard is held, across function boundaries.
    BlockingUnderLock,
    /// S14: a device-actor thread context transitively calling back into
    /// a verb that enqueues to its own mailbox and deadlocks.
    ActorReentrancy,
    /// S15: raw `+`/`-` arithmetic on quota/used-bytes/airtime counters
    /// outside checked/saturating helpers.
    UncheckedQuotaArithmetic,
}

/// All rules, in catalog order.
pub const ALL_RULES: [Rule; 15] = [
    Rule::LockOrder,
    Rule::RecorderBypass,
    Rule::Layering,
    Rule::PanicPaths,
    Rule::BlobAccess,
    Rule::EventCoverage,
    Rule::WallClock,
    Rule::NondeterministicIteration,
    Rule::GuardAcrossShip,
    Rule::GuardEscape,
    Rule::CrossShardOrder,
    Rule::DiscardedResult,
    Rule::BlockingUnderLock,
    Rule::ActorReentrancy,
    Rule::UncheckedQuotaArithmetic,
];

impl Rule {
    /// Catalog id (`S1`–`S12`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::LockOrder => "S1",
            Rule::RecorderBypass => "S2",
            Rule::Layering => "S3",
            Rule::PanicPaths => "S4",
            Rule::BlobAccess => "S5",
            Rule::EventCoverage => "S6",
            Rule::WallClock => "S7",
            Rule::NondeterministicIteration => "S8",
            Rule::GuardAcrossShip => "S9",
            Rule::GuardEscape => "S10",
            Rule::CrossShardOrder => "S11",
            Rule::DiscardedResult => "S12",
            Rule::BlockingUnderLock => "S13",
            Rule::ActorReentrancy => "S14",
            Rule::UncheckedQuotaArithmetic => "S15",
        }
    }

    /// Human name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::RecorderBypass => "recorder-bypass",
            Rule::Layering => "layering",
            Rule::PanicPaths => "panic-paths",
            Rule::BlobAccess => "blob-access",
            Rule::EventCoverage => "event-coverage",
            Rule::WallClock => "wall-clock",
            Rule::NondeterministicIteration => "nondeterministic-iteration",
            Rule::GuardAcrossShip => "guard-across-ship",
            Rule::GuardEscape => "guard-escape",
            Rule::CrossShardOrder => "cross-shard-order",
            Rule::DiscardedResult => "discarded-result",
            Rule::BlockingUnderLock => "blocking-under-lock",
            Rule::ActorReentrancy => "actor-reentrancy",
            Rule::UncheckedQuotaArithmetic => "unchecked-quota-arithmetic",
        }
    }

    /// Parse an id (`S3`) or name (`layering`), case-insensitively.
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        ALL_RULES
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.name())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line.
    pub excerpt: String,
    /// What to do about it.
    pub advice: String,
    /// Interprocedural call chain from the flagged site to the effect —
    /// function display names, outermost first; empty for direct
    /// (intraprocedural) findings. Names, not spans, so baselines stay
    /// stable across line renumbering.
    pub chain: Vec<String>,
}

impl LintViolation {
    /// Render as a single JSON object (own, dependency-free encoder —
    /// same discipline as `obiwan_trace::json`).
    pub fn to_json(&self) -> String {
        let chain = self
            .chain
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"excerpt\":\"{}\",\"advice\":\"{}\",\"chain\":[{}]}}",
            self.rule.id(),
            self.rule.name(),
            json_escape(&self.file),
            self.line,
            json_escape(&self.excerpt),
            json_escape(&self.advice),
            chain,
        )
    }
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}:{}", self.rule, self.file, self.line)?;
        writeln!(f, "    {}", self.excerpt)?;
        if !self.chain.is_empty() {
            writeln!(f, "    via: {}", self.chain.join(" -> "))?;
        }
        write!(f, "    advice: {}", self.advice)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories never descended into: build outputs, vendored stand-ins,
/// non-library targets (tests/benches/examples/bins opt out of the wall
/// the same way they opt out of the clippy `disallowed-methods` wall), and
/// the seeded-violation fixture tree.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    "lint-fixtures",
    "tests",
    "benches",
    "examples",
    "bin",
    "node_modules",
];

/// Walk `root` and collect the library sources the rules govern.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Crate short name for a workspace-relative path: `crates/<x>/src/…` →
/// `x`, the facade's `src/…` → `obiwan`, anything else → `None`
/// (not scanned).
fn classify(rel: &str) -> Option<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    for w in parts.windows(3) {
        if let [a, b, c] = w {
            if *a == "crates" && *c == "src" {
                return Some((*b).to_owned());
            }
        }
    }
    // The facade crate's own sources live at `<root>/src/`.
    if let Some(pos) = parts.iter().position(|p| *p == "src") {
        if pos + 1 < parts.len() {
            return Some("obiwan".to_owned());
        }
    }
    None
}

/// Wall-clock timing of one full run, for the CI self-timing budget.
#[derive(Debug, Clone)]
pub struct LintStats {
    /// Files scanned.
    pub files: usize,
    /// Functions analyzed.
    pub functions: usize,
    /// Read + lex + structural model time.
    pub parse: Duration,
    /// Workspace build (per-function CFG + lock flow).
    pub analyze: Duration,
    /// Call graph + summaries build.
    pub interproc: Duration,
    /// Per-rule run time, in catalog order (skipped rules omitted).
    pub rules: Vec<(Rule, Duration)>,
    /// End-to-end time of the whole run.
    pub total: Duration,
}

impl fmt::Display for LintStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "scanned {} file(s), {} function(s)",
            self.files, self.functions
        )?;
        writeln!(f, "  parse     {:>8.1?}", self.parse)?;
        writeln!(f, "  analyze   {:>8.1?}", self.analyze)?;
        writeln!(f, "  interproc {:>8.1?}", self.interproc)?;
        for (rule, d) in &self.rules {
            writeln!(f, "  {:<9} {:>8.1?}", rule.id(), d)?;
        }
        write!(f, "  total     {:>8.1?}", self.total)
    }
}

/// Run every rule (minus `allowed`) over the tree under `root`.
///
/// # Errors
///
/// I/O errors reading the tree; individual files that are not valid UTF-8
/// are skipped.
pub fn lint_root(root: &Path, allowed: &[Rule]) -> std::io::Result<Vec<LintViolation>> {
    lint_root_timed(root, allowed).map(|(v, _)| v)
}

/// [`lint_root`] plus per-phase wall-clock timing. The timing is
/// diagnostic output, never recorded into traces, so the wall-clock reads
/// are exempt from S7 here.
///
/// # Errors
///
/// Same as [`lint_root`].
pub fn lint_root_timed(
    root: &Path,
    allowed: &[Rule],
) -> std::io::Result<(Vec<LintViolation>, LintStats)> {
    let t0 = std::time::Instant::now(); // lint:allow(S7, lint self-timing diagnostics)
    let mut files = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(crate_name) = classify(&rel) else {
            continue;
        };
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue; // non-UTF-8: nothing for a Rust lexer to do
        };
        files.push(FileModel::parse(rel, crate_name, src));
    }
    let n_files = files.len();
    let parse = t0.elapsed();
    let t1 = std::time::Instant::now(); // lint:allow(S7, lint self-timing diagnostics)
    let ws = rules::Workspace::build(files);
    let analyze = t1.elapsed();
    let t2 = std::time::Instant::now(); // lint:allow(S7, lint self-timing diagnostics)
    let ip = rules::Interproc::build(&ws);
    let interproc = t2.elapsed();
    let mut out = Vec::new();
    let mut rule_times = Vec::new();
    for rule in ALL_RULES {
        if allowed.contains(&rule) {
            continue;
        }
        let tr = std::time::Instant::now(); // lint:allow(S7, lint self-timing diagnostics)
        out.extend(rules::run(rule, &ws, &ip));
        rule_times.push((rule, tr.elapsed()));
    }
    // Per-line / per-file suppression directives.
    out.retain(|v| {
        ws.file_by_path(&v.file)
            .is_none_or(|f| !f.allowed(v.rule.id(), v.line))
    });
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    // A span flagged by both the intraprocedural and the interprocedural
    // side of a rule reports once, keeping the call chain if either
    // finding carries one.
    out.dedup_by(|later, kept| {
        if later.rule == kept.rule && later.file == kept.file && later.line == kept.line {
            if kept.chain.is_empty() && !later.chain.is_empty() {
                kept.chain = std::mem::take(&mut later.chain);
            }
            true
        } else {
            false
        }
    });
    let stats = LintStats {
        files: n_files,
        functions: ws.fns.len(),
        parse,
        analyze,
        interproc,
        rules: rule_times,
        total: t0.elapsed(),
    };
    Ok((out, stats))
}
