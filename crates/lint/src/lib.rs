//! `obiwan-lint` — source-level architecture analyzer for the OBIWAN
//! workspace.
//!
//! PR 1's auditor checks the *runtime* object graph; this crate checks the
//! *source* tree for the architectural properties the paper's
//! referential-integrity guarantees rest on, the way production stacks
//! gate merges on custom lints. Zero dependencies: a hand-rolled lexer
//! ([`lexer`]), a light structural model ([`model`]), and a rule catalog
//! ([`rules`]):
//!
//! | rule | name | historical bug it would have caught |
//! |------|------|-------------------------------------|
//! | S1 | `lock-order` | the `make_cursor` manager-lock re-entrance deadlock (fixed in PR 1) |
//! | S2 | `recorder-bypass` | stats/event drift that forced the Recorder choke point (PR 4) |
//! | S3 | `layering` | dependency-direction erosion (core reaching into net internals) |
//! | S4 | `panic-paths` | panics stranding half-patched proxies (PR 1's `SwapError` work) |
//! | S5 | `blob-access` | blob stores/drops bypassing the k-way placement fan-out (PR 3) |
//! | S6 | `event-coverage` | a stats counter that no longer folds out of the trace (PR 4) |
//! | S7 | `wall-clock` | wall time leaking into traces, breaking run-over-run identity |
//! | S8 | `nondeterministic-iteration` | the `PlacementTable` HashMap iteration fixed in PR 4 |
//! | S9 | `guard-across-ship` | manager guard held across blob transmission (this PR's detach fix) |
//! | S10 | `guard-escape` | a guard outliving its function via return/field/`move` closure |
//! | S11 | `cross-shard-order` | keyed sibling locks taken without a canonical order (sharding prep) |
//! | S12 | `discarded-result` | a swap/placement `Result` silently dropped on some path |
//!
//! S1 and S9–S12 are *flow-sensitive*: they run on a per-function control
//! flow graph ([`cfg`]) with a worklist dataflow framework ([`dataflow`])
//! and a held-lock-set analysis ([`locks`]) on top, so "held across" and
//! "on some path" mean actual paths, not lexical containment.
//!
//! Violations can be suppressed per line with `// lint:allow(S7, reason)`
//! on or directly above the offending line, per file with
//! `// lint:allow-file(S4)`, or per run with `--allow <rule>`.

pub mod cfg;
pub mod dataflow;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod rules;

use model::FileModel;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// S1: lock-acquisition-order cycles across the static call
    /// approximation.
    LockOrder,
    /// S2: `SwapStats` mutation or `EventKind` emission outside the
    /// Recorder choke point.
    RecorderBypass,
    /// S3: dependency-direction wall (leaf crates, net internals,
    /// placement internals).
    Layering,
    /// S4: `unwrap`-family and indexing/slicing in library code of crates
    /// outside the original clippy wall.
    PanicPaths,
    /// S5: raw blob store/drop traffic outside the placement fan-out.
    BlobAccess,
    /// S6: Recorder methods whose counters and events can drift apart.
    EventCoverage,
    /// S7: wall-clock reads outside the virtual-clock module.
    WallClock,
    /// S8: `HashMap`/`HashSet` iteration on paths feeding the Recorder.
    NondeterministicIteration,
    /// S9: a lock guard live across a blocking `obiwan-net` blob
    /// send/fetch call on some path.
    GuardAcrossShip,
    /// S10: a guard escaping its function — returned, stored in a field,
    /// or captured by a `move` closure.
    GuardEscape,
    /// S11: two keyed sibling locks (same family, different shard keys)
    /// held together without canonical ordering evidence.
    CrossShardOrder,
    /// S12: a `Result` from a swap/placement operation dropped on some
    /// path.
    DiscardedResult,
}

/// All rules, in catalog order.
pub const ALL_RULES: [Rule; 12] = [
    Rule::LockOrder,
    Rule::RecorderBypass,
    Rule::Layering,
    Rule::PanicPaths,
    Rule::BlobAccess,
    Rule::EventCoverage,
    Rule::WallClock,
    Rule::NondeterministicIteration,
    Rule::GuardAcrossShip,
    Rule::GuardEscape,
    Rule::CrossShardOrder,
    Rule::DiscardedResult,
];

impl Rule {
    /// Catalog id (`S1`–`S12`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::LockOrder => "S1",
            Rule::RecorderBypass => "S2",
            Rule::Layering => "S3",
            Rule::PanicPaths => "S4",
            Rule::BlobAccess => "S5",
            Rule::EventCoverage => "S6",
            Rule::WallClock => "S7",
            Rule::NondeterministicIteration => "S8",
            Rule::GuardAcrossShip => "S9",
            Rule::GuardEscape => "S10",
            Rule::CrossShardOrder => "S11",
            Rule::DiscardedResult => "S12",
        }
    }

    /// Human name.
    pub fn name(self) -> &'static str {
        match self {
            Rule::LockOrder => "lock-order",
            Rule::RecorderBypass => "recorder-bypass",
            Rule::Layering => "layering",
            Rule::PanicPaths => "panic-paths",
            Rule::BlobAccess => "blob-access",
            Rule::EventCoverage => "event-coverage",
            Rule::WallClock => "wall-clock",
            Rule::NondeterministicIteration => "nondeterministic-iteration",
            Rule::GuardAcrossShip => "guard-across-ship",
            Rule::GuardEscape => "guard-escape",
            Rule::CrossShardOrder => "cross-shard-order",
            Rule::DiscardedResult => "discarded-result",
        }
    }

    /// Parse an id (`S3`) or name (`layering`), case-insensitively.
    pub fn parse(s: &str) -> Option<Rule> {
        let s = s.trim();
        ALL_RULES
            .into_iter()
            .find(|r| r.id().eq_ignore_ascii_case(s) || r.name().eq_ignore_ascii_case(s))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.id(), self.name())
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Trimmed source line.
    pub excerpt: String,
    /// What to do about it.
    pub advice: String,
}

impl LintViolation {
    /// Render as a single JSON object (own, dependency-free encoder —
    /// same discipline as `obiwan_trace::json`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"name\":\"{}\",\"file\":\"{}\",\"line\":{},\"excerpt\":\"{}\",\"advice\":\"{}\"}}",
            self.rule.id(),
            self.rule.name(),
            json_escape(&self.file),
            self.line,
            json_escape(&self.excerpt),
            json_escape(&self.advice),
        )
    }
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}:{}", self.rule, self.file, self.line)?;
        writeln!(f, "    {}", self.excerpt)?;
        write!(f, "    advice: {}", self.advice)
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Directories never descended into: build outputs, vendored stand-ins,
/// non-library targets (tests/benches/examples/bins opt out of the wall
/// the same way they opt out of the clippy `disallowed-methods` wall), and
/// the seeded-violation fixture tree.
const SKIP_DIRS: &[&str] = &[
    "target",
    "vendor",
    ".git",
    "lint-fixtures",
    "tests",
    "benches",
    "examples",
    "bin",
    "node_modules",
];

/// Walk `root` and collect the library sources the rules govern.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        entries.sort();
        for path in entries {
            if path.is_dir() {
                let name = path
                    .file_name()
                    .and_then(|n| n.to_str())
                    .unwrap_or_default();
                if !SKIP_DIRS.contains(&name) {
                    stack.push(path);
                }
            } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Crate short name for a workspace-relative path: `crates/<x>/src/…` →
/// `x`, the facade's `src/…` → `obiwan`, anything else → `None`
/// (not scanned).
fn classify(rel: &str) -> Option<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    for w in parts.windows(3) {
        if let [a, b, c] = w {
            if *a == "crates" && *c == "src" {
                return Some((*b).to_owned());
            }
        }
    }
    // The facade crate's own sources live at `<root>/src/`.
    if let Some(pos) = parts.iter().position(|p| *p == "src") {
        if pos + 1 < parts.len() {
            return Some("obiwan".to_owned());
        }
    }
    None
}

/// Run every rule (minus `allowed`) over the tree under `root`.
///
/// # Errors
///
/// I/O errors reading the tree; individual files that are not valid UTF-8
/// are skipped.
pub fn lint_root(root: &Path, allowed: &[Rule]) -> std::io::Result<Vec<LintViolation>> {
    let mut files = Vec::new();
    for path in collect_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(crate_name) = classify(&rel) else {
            continue;
        };
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue; // non-UTF-8: nothing for a Rust lexer to do
        };
        files.push(FileModel::parse(rel, crate_name, src));
    }
    let ws = rules::Workspace::build(files);
    let mut out = Vec::new();
    for rule in ALL_RULES {
        if allowed.contains(&rule) {
            continue;
        }
        out.extend(rules::run(rule, &ws));
    }
    // Per-line / per-file suppression directives.
    out.retain(|v| {
        ws.file_by_path(&v.file)
            .is_none_or(|f| !f.allowed(v.rule.id(), v.line))
    });
    out.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    out.dedup();
    Ok(out)
}
