//! Per-function control-flow graphs over the significant token stream.
//!
//! [`Cfg::build`] turns a token range (a function body) into basic blocks
//! connected by tagged edges. The builder recognizes the control shapes
//! the flow rules care about — `if`/`else` chains, `match` arms, the three
//! loop forms, `return`/`break`/`continue`, and the `?` operator (which
//! splits its block with an extra edge to the exit) — and treats
//! everything else as straight-line code. Construction is total: on
//! malformed or adversarial token soup it degrades to bigger straight-line
//! blocks instead of panicking, the same fallback discipline as
//! [`crate::model::FileModel::match_brace`].

use crate::model::STok;
use std::collections::BTreeMap;
use std::ops::Range;

/// Why a CFG edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Straight-line continuation (or a branch join).
    Seq,
    /// One side of an `if`/`match`/`while` decision.
    Branch,
    /// A loop back edge.
    Back,
    /// The early-exit half of a `?` operator.
    Question,
    /// A `return` (explicit exit).
    Return,
}

/// One basic block: the token spans it covers, in execution order.
///
/// Spans index into the owning file's significant-token slice. A block's
/// spans are disjoint and monotonically increasing — control constructs
/// carve holes out of the middle (their bodies live in other blocks).
#[derive(Debug, Default, Clone)]
pub struct Block {
    /// Token index ranges, in the order the block executes them.
    pub spans: Vec<Range<usize>>,
}

/// A control-flow graph for one token range.
#[derive(Debug)]
pub struct Cfg {
    /// Basic blocks; `blocks[entry]` is where execution starts.
    pub blocks: Vec<Block>,
    /// Successor lists, parallel to `blocks`.
    pub succs: Vec<Vec<(usize, EdgeKind)>>,
    /// Entry block id.
    pub entry: usize,
    /// Exit block id (no tokens; every function-leaving edge targets it).
    pub exit: usize,
    owner: BTreeMap<usize, usize>,
}

/// Nesting depth past which constructs degrade to straight-line tokens
/// (keeps recursion bounded on adversarial input).
const MAX_NEST: u32 = 64;
/// Block-count ceiling with the same purpose.
const MAX_BLOCKS: usize = 1 << 14;

impl Cfg {
    /// Build the CFG for `sig[range]`. Total on arbitrary token streams.
    pub fn build(sig: &[STok], range: Range<usize>) -> Cfg {
        let from = range.start.min(sig.len());
        let to = range.end.min(sig.len()).max(from);
        let mut b = Builder {
            sig,
            blocks: vec![Block::default(), Block::default()],
            succs: vec![Vec::new(), Vec::new()],
            loops: Vec::new(),
            nest: 0,
        };
        let last = b.walk(from, to, 1);
        b.edge(last, 0, EdgeKind::Seq);
        let mut owner = BTreeMap::new();
        for (id, blk) in b.blocks.iter().enumerate() {
            for span in &blk.spans {
                for tok in span.clone() {
                    owner.insert(tok, id);
                }
            }
        }
        Cfg {
            blocks: b.blocks,
            succs: b.succs,
            entry: 1,
            exit: 0,
            owner,
        }
    }

    /// A synthetic CFG from an explicit edge list (for dataflow tests);
    /// edge endpoints are clamped into range.
    pub fn synthetic(nblocks: usize, edges: &[(usize, usize)]) -> Cfg {
        let n = nblocks.max(2);
        let mut succs = vec![Vec::new(); n];
        for &(a, bb) in edges {
            let (a, bb) = (a % n, bb % n);
            let list: &mut Vec<(usize, EdgeKind)> = &mut succs[a];
            if !list.iter().any(|&(s, _)| s == bb) {
                list.push((bb, EdgeKind::Seq));
            }
        }
        Cfg {
            blocks: vec![Block::default(); n],
            succs,
            entry: 1 % n,
            exit: 0,
            owner: BTreeMap::new(),
        }
    }

    /// The block owning token index `tok`, if any.
    pub fn block_of(&self, tok: usize) -> Option<usize> {
        self.owner.get(&tok).copied()
    }

    /// Token indices of block `b`, in execution order.
    pub fn tokens_of(&self, b: usize) -> impl Iterator<Item = usize> + '_ {
        self.blocks[b].spans.iter().flat_map(|s| s.clone())
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph has no blocks (never true for built graphs).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

struct Builder<'a> {
    sig: &'a [STok],
    blocks: Vec<Block>,
    succs: Vec<Vec<(usize, EdgeKind)>>,
    /// Innermost-last stack of `(continue target, break join)`.
    loops: Vec<(usize, usize)>,
    nest: u32,
}

impl Builder<'_> {
    fn new_block(&mut self) -> usize {
        self.blocks.push(Block::default());
        self.succs.push(Vec::new());
        self.blocks.len() - 1
    }

    fn edge(&mut self, a: usize, b: usize, kind: EdgeKind) {
        if !self.succs[a].iter().any(|&(s, k)| s == b && k == kind) {
            self.succs[a].push((b, kind));
        }
    }

    fn push(&mut self, b: usize, tok: usize) {
        let spans = &mut self.blocks[b].spans;
        match spans.last_mut() {
            Some(last) if last.end == tok => last.end = tok + 1,
            _ => spans.push(tok..tok + 1),
        }
    }

    /// Whether structured handling is still allowed (nesting/size fuses).
    fn structured(&self) -> bool {
        self.nest < MAX_NEST && self.blocks.len() < MAX_BLOCKS
    }

    /// Walk `[from, to)` starting in block `cur`; returns the block that
    /// falls off the end.
    fn walk(&mut self, from: usize, to: usize, mut cur: usize) -> usize {
        self.nest += 1;
        let mut i = from;
        while i < to {
            let t = &self.sig[i];
            if self.structured() {
                match t.text.as_str() {
                    "if" => {
                        let (c, ni) = self.branch_if(i, to, cur);
                        cur = c;
                        i = ni;
                        continue;
                    }
                    "match" => {
                        let (c, ni) = self.match_arms(i, to, cur);
                        cur = c;
                        i = ni;
                        continue;
                    }
                    "loop" => {
                        let (c, ni) = self.loop_body(i, to, cur, false);
                        cur = c;
                        i = ni;
                        continue;
                    }
                    "while" | "for" => {
                        let (c, ni) = self.loop_body(i, to, cur, true);
                        cur = c;
                        i = ni;
                        continue;
                    }
                    "return" => {
                        i = self.consume_jump_expr(i, to, cur);
                        self.edge(cur, 0, EdgeKind::Return);
                        cur = self.new_block();
                        continue;
                    }
                    "break" | "continue" => {
                        let is_break = t.text == "break";
                        i = self.consume_jump_expr(i, to, cur);
                        let (cont, brk) = self.loops.last().copied().unwrap_or((0, 0));
                        if is_break {
                            self.edge(cur, brk, EdgeKind::Branch);
                        } else {
                            self.edge(cur, cont, EdgeKind::Back);
                        }
                        cur = self.new_block();
                        continue;
                    }
                    "?" => {
                        self.push(cur, i);
                        self.edge(cur, 0, EdgeKind::Question);
                        let next = self.new_block();
                        self.edge(cur, next, EdgeKind::Seq);
                        cur = next;
                        i += 1;
                        continue;
                    }
                    _ => {}
                }
            }
            self.push(cur, i);
            i += 1;
        }
        self.nest -= 1;
        cur
    }

    /// Push `return`/`break`/`continue` plus its trailing expression (up
    /// to `;`/`,` at depth 0, or an enclosing closer) into `cur`; returns
    /// the index after the consumed run. Always advances past `i`.
    fn consume_jump_expr(&mut self, i: usize, to: usize, cur: usize) -> usize {
        self.push(cur, i);
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < to {
            let t = &self.sig[j];
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                ";" | "," if depth == 0 => {
                    self.push(cur, j);
                    return j + 1;
                }
                _ => {}
            }
            self.push(cur, j);
            j += 1;
        }
        j
    }

    /// Find the body-opening `{` for a construct head starting after
    /// token `i`, pushing the head tokens into `cur`. Returns `None` (and
    /// the scan position) when no brace exists — the caller degrades.
    fn head_to_brace(&mut self, i: usize, to: usize, cur: usize) -> (Option<usize>, usize) {
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < to {
            let t = &self.sig[j];
            match t.text.as_str() {
                "{" if depth == 0 => return (Some(j), j),
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth < 0 {
                        return (None, j);
                    }
                }
                ";" if depth == 0 => return (None, j),
                _ => {}
            }
            self.push(cur, j);
            j += 1;
        }
        (None, j)
    }

    /// Matching `}` for the `{` at `open` (or `to - 1` as fallback).
    fn close_of(&self, open: usize, to: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < to {
            if self.sig[i].text == "{" {
                depth += 1;
            } else if self.sig[i].text == "}" {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        to.saturating_sub(1).max(open)
    }

    /// `if COND { … } [else if …]* [else { … }]` — returns (join, next).
    fn branch_if(&mut self, i: usize, to: usize, cur: usize) -> (usize, usize) {
        self.push(cur, i);
        let (brace, scanned) = self.head_to_brace(i, to, cur);
        let Some(brace) = brace else {
            return (cur, scanned.max(i + 1));
        };
        let close = self.close_of(brace, to);
        let then_entry = self.new_block();
        self.edge(cur, then_entry, EdgeKind::Branch);
        self.push(then_entry, brace);
        let then_end = self.walk(brace + 1, close, then_entry);
        // `close == brace` means the brace never closed (end-of-range
        // fallback); pushing it again would give the token two owners.
        if close > brace && close < to {
            self.push(then_end, close);
        }
        let mut after = close + 1;

        if after < to && self.sig[after].text == "else" && self.structured() {
            let else_entry = self.new_block();
            self.edge(cur, else_entry, EdgeKind::Branch);
            self.push(else_entry, after);
            let (else_end, na) = if after + 1 < to && self.sig[after + 1].text == "if" {
                self.branch_if(after + 1, to, else_entry)
            } else if after + 1 < to && self.sig[after + 1].text == "{" {
                let c2 = self.close_of(after + 1, to);
                self.push(else_entry, after + 1);
                let e = self.walk(after + 2, c2, else_entry);
                if c2 > after + 1 && c2 < to {
                    self.push(e, c2);
                }
                (e, c2 + 1)
            } else {
                (else_entry, after + 1)
            };
            after = na;
            let join = self.new_block();
            self.edge(then_end, join, EdgeKind::Seq);
            self.edge(else_end, join, EdgeKind::Seq);
            (join, after)
        } else {
            let join = self.new_block();
            self.edge(then_end, join, EdgeKind::Seq);
            self.edge(cur, join, EdgeKind::Branch);
            (join, after)
        }
    }

    /// `match HEAD { PAT => BODY, … }` — one block per arm, all joining.
    fn match_arms(&mut self, i: usize, to: usize, cur: usize) -> (usize, usize) {
        self.push(cur, i);
        let (brace, scanned) = self.head_to_brace(i, to, cur);
        let Some(brace) = brace else {
            return (cur, scanned.max(i + 1));
        };
        let close = self.close_of(brace, to);
        self.push(cur, brace);
        let join = self.new_block();
        let mut k = brace + 1;
        let mut any_arm = false;
        while k < close && self.structured() {
            // Pattern runs to `=>` at depth 0.
            let mut depth = 0i32;
            let mut arrow = None;
            let mut j = k;
            while j < close {
                match self.sig[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => {
                        arrow = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            let arm = self.new_block();
            self.edge(cur, arm, EdgeKind::Branch);
            any_arm = true;
            let Some(arrow) = arrow else {
                // No `=>` before the close: dump the tail as one arm.
                for tok in k..close {
                    self.push(arm, tok);
                }
                self.edge(arm, join, EdgeKind::Seq);
                break;
            };
            for tok in k..=arrow {
                self.push(arm, tok);
            }
            let bs = arrow + 1;
            let arm_end = if bs < close && self.sig[bs].text == "{" {
                let bclose = self.close_of(bs, close + 1).min(close);
                self.push(arm, bs);
                let e = self.walk(bs + 1, bclose, arm);
                if bclose < close {
                    self.push(e, bclose);
                }
                k = bclose + 1;
                e
            } else {
                // Expression body to `,` at depth 0 (or the match close).
                let mut depth = 0i32;
                let mut e = bs;
                while e < close {
                    match self.sig[e].text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                let end = self.walk(bs, e, arm);
                k = e;
                end
            };
            if k < close && self.sig[k].text == "," {
                self.push(arm_end, k);
                k += 1;
            }
            self.edge(arm_end, join, EdgeKind::Seq);
        }
        if !any_arm {
            self.edge(cur, join, EdgeKind::Branch);
        }
        if close > brace && close < to {
            self.push(join, close);
        }
        (join, close + 1)
    }

    /// `loop`/`while`/`for` — `conditional` adds the head-exit edge.
    fn loop_body(&mut self, i: usize, to: usize, cur: usize, conditional: bool) -> (usize, usize) {
        let head = if conditional {
            let h = self.new_block();
            self.edge(cur, h, EdgeKind::Seq);
            h
        } else {
            cur
        };
        self.push(head, i);
        let (brace, scanned) = self.head_to_brace(i, to, head);
        let Some(brace) = brace else {
            return (head, scanned.max(i + 1));
        };
        let close = self.close_of(brace, to);
        let body = self.new_block();
        let join = self.new_block();
        self.edge(
            head,
            body,
            if conditional {
                EdgeKind::Branch
            } else {
                EdgeKind::Seq
            },
        );
        if conditional {
            self.edge(head, join, EdgeKind::Branch);
        }
        self.push(body, brace);
        let cont = if conditional { head } else { body };
        self.loops.push((cont, join));
        let body_end = self.walk(brace + 1, close, body);
        self.loops.pop();
        if close > brace && close < to {
            self.push(body_end, close);
        }
        self.edge(body_end, cont, EdgeKind::Back);
        (join, close + 1)
    }
}
