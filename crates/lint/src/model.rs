//! A light structural model of a Rust source file.
//!
//! Built on the lossless token stream from [`crate::lexer`], this module
//! recovers exactly the structure the S1–S12 rules key on — no full
//! parse (the flow rules layer [`crate::cfg`] on top of it):
//!
//! * items: `impl`/`trait` blocks (self-type head), functions with their
//!   parameter names and type heads, struct field types;
//! * `#[cfg(test)]` modules and functions, which are excluded entirely
//!   (the rules govern library code; tests opt out the same way they opt
//!   out of the clippy wall);
//! * per-function call sites with a best-effort receiver type (`self`,
//!   typed parameters, `Type::method` paths, lock-guard chains);
//! * lock acquisition sites with guard scopes (`let`-bound guards live to
//!   end of block or `drop(guard)`; un-bound guards to end of statement).
//!
//! Everything here is an approximation, deliberately biased so the rules
//! err on the side of *fewer* false positives: an unresolvable call is
//! dropped rather than unioned across every same-named function.

use crate::lexer::{lex, Token, TokenKind};

/// A significant token: comments and whitespace stripped, text owned.
#[derive(Debug, Clone)]
pub struct STok {
    /// Token class (never `Whitespace`/comments).
    pub kind: TokenKind,
    /// The token text.
    pub text: String,
    /// 1-based source line.
    pub line: u32,
}

impl STok {
    fn is(&self, s: &str) -> bool {
        self.text == s
    }

    /// Whether this is an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }
}

/// How a call site names its receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receiver {
    /// A free function call `f(...)` (or a `path::f(...)` with an
    /// unrecognized qualifier).
    Free,
    /// A method or associated call whose self type head is known:
    /// `self.m(...)`, `typed_param.m(...)`, `Type::m(...)`, or a call
    /// chained onto a lock-helper guard.
    Typed(String),
    /// A method call on an unknown receiver.
    Unknown,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Called function or method name.
    pub name: String,
    /// Receiver classification.
    pub recv: Receiver,
    /// Index into the body's significant-token slice (the name token).
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
}

/// A lock held at some program point, with the acquisition evidence the
/// keyed-ordering rules need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// Lock identity (family), e.g. `manager`.
    pub lock: String,
    /// Normalized helper-call argument text (the shard key for keyed
    /// families); `None` for raw `.lock()` acquisitions.
    pub key: Option<String>,
    /// Guard self-type head when known (`SwappingManager`).
    pub guard_type: Option<String>,
}

/// One lock acquisition inside a function body.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Lock identity (for helpers `lock_manager` → `manager`; for
    /// `x.lock()` the receiver's final identifier, e.g. `server`).
    pub lock: String,
    /// Guard type head when the acquisition goes through a helper whose
    /// signature names a `MutexGuard<'_, T>`.
    pub guard_type: Option<String>,
    /// Normalized helper-call argument text (the shard key for keyed
    /// families); `None` for raw `.lock()` acquisitions.
    pub key: Option<String>,
    /// For a `lock_<family>_pair` acquisition: the *other* guard's key.
    /// The ordering evidence for such a site lives in the helper body,
    /// not the caller's (S11 checks the helper's last two parameters).
    pub pair_with: Option<String>,
    /// Index of the acquiring token in the body slice.
    pub tok: usize,
    /// 1-based source line.
    pub line: u32,
    /// Locks already held at this point.
    pub held: Vec<HeldLock>,
}

/// A call site annotated with the locks held when it runs.
#[derive(Debug, Clone)]
pub struct HeldCall {
    /// The call.
    pub call: CallSite,
    /// Locks held across the call.
    pub held: Vec<HeldLock>,
}

/// A function (or method) in library code.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Self type head of the enclosing `impl`/`trait` block, if any.
    pub impl_type: Option<String>,
    /// Parameter name → type head (`self` maps to the impl type).
    pub params: Vec<(String, String)>,
    /// Body as a significant-token index range into [`FileModel::sig`]
    /// (excluding the outer braces); empty for body-less declarations.
    pub body: std::ops::Range<usize>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the return type mentions `Result` (S12 candidates).
    pub ret_result: bool,
    /// Whether the return type mentions `MutexGuard` — intentional guard
    /// constructors, which S10 exempts from the guard-return escape.
    pub returns_guard: bool,
}

/// A struct definition's named fields (name → type head).
#[derive(Debug, Clone)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Field name → type head.
    pub fields: Vec<(String, String)>,
}

/// A free function recognized as a lock helper: it returns
/// `Result<MutexGuard<'_, T>>` and its name starts with `lock_`.
///
/// A `lock_<family>_pair` helper acquires **two** guards of `<family>`
/// in one call (the canonical ordered cross-shard acquisition); its call
/// sites are modeled as two same-family acquisitions with the split
/// argument keys.
#[derive(Debug, Clone)]
pub struct LockHelper {
    /// Helper function name (`lock_manager`, `lock_shard_pair`).
    pub name: String,
    /// Lock identity (`manager`; `shard` for `lock_shard_pair`).
    pub lock: String,
    /// Guard self-type head (`SwappingManager`).
    pub guard_type: Option<String>,
    /// Whether this is a two-guard `lock_<family>_pair` helper.
    pub pair: bool,
}

/// The per-file model.
#[derive(Debug)]
pub struct FileModel {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Owning crate short name (`core`, `bench`, …; `obiwan` for the
    /// facade crate's `src/`).
    pub crate_name: String,
    /// Source text (for excerpts).
    pub src: String,
    /// Significant tokens (whitespace, comments and attributes stripped;
    /// `#[cfg(test)]` items removed).
    pub sig: Vec<STok>,
    /// Functions found.
    pub functions: Vec<Function>,
    /// Struct definitions found.
    pub structs: Vec<StructDef>,
    /// Lock helpers defined in this file.
    pub lock_helpers: Vec<LockHelper>,
    /// Names of traits declared in this file (`trait Transport { … }`).
    /// Their methods are the functions whose `impl_type` is the trait name.
    pub traits: Vec<String>,
    /// `impl Trait for Type` pairs: (trait head, self-type head). The
    /// interprocedural call graph uses these for class-hierarchy fallback
    /// resolution of dynamic-dispatch calls.
    pub trait_impls: Vec<(String, String)>,
    /// Single-field tuple enum variants: (variant name, payload type
    /// head). A match-arm binding `Variant(x) =>` types `x` with the
    /// payload, which is how the `NetFabric` dispatch arms get receivers.
    pub enum_variants: Vec<(String, String)>,
    /// Lines carrying a `lint:allow(...)` directive → rule ids allowed.
    pub allow_lines: Vec<(u32, Vec<String>)>,
    /// Rule ids allowed for the whole file via `lint:allow-file(...)`.
    pub allow_file: Vec<String>,
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "let", "fn",
    "mut", "ref", "move", "in", "as", "where", "impl", "trait", "struct", "enum", "union", "mod",
    "use", "pub", "const", "static", "type", "dyn", "unsafe", "async", "await", "box", "self",
    "Self", "super", "crate", "true", "false",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Methods that adapt a lock-guard result without consuming the guard —
/// a chained call *after* these still runs against the guarded value.
const GUARD_ADAPTERS: &[&str] = &[
    "map_err",
    "expect",
    "unwrap",
    "unwrap_or_else",
    "ok",
    "and_then",
    "map",
];

impl FileModel {
    /// Build the model for one source file.
    pub fn parse(rel_path: String, crate_name: String, src: String) -> FileModel {
        let tokens = lex(&src);
        let (sig, allow_lines, allow_file) = strip_insignificant(&src, &tokens);
        let mut m = FileModel {
            rel_path,
            crate_name,
            src,
            sig,
            functions: Vec::new(),
            structs: Vec::new(),
            lock_helpers: Vec::new(),
            traits: Vec::new(),
            trait_impls: Vec::new(),
            enum_variants: Vec::new(),
            allow_lines,
            allow_file,
        };
        let end = m.sig.len();
        m.scan_items(0, end, None);
        m
    }

    /// The source line (1-based) as trimmed text, for excerpts.
    pub fn line_text(&self, line: u32) -> String {
        self.src
            .lines()
            .nth(line.saturating_sub(1) as usize)
            .unwrap_or("")
            .trim()
            .to_owned()
    }

    /// Whether `rule_id` is suppressed at `line` (same line or the line
    /// directly below a directive comment, mirroring `#[allow]` placement).
    pub fn allowed(&self, rule_id: &str, line: u32) -> bool {
        if self.allow_file.iter().any(|r| r == rule_id || r == "*") {
            return true;
        }
        self.allow_lines.iter().any(|(l, rules)| {
            (*l == line || l + 1 == line) && rules.iter().any(|r| r == rule_id || r == "*")
        })
    }

    // --- item scanning ----------------------------------------------------

    /// Scan `[from, to)` for items, recording functions/structs/helpers.
    /// `impl_type` is the enclosing impl/trait self-type head, if any.
    fn scan_items(&mut self, from: usize, to: usize, impl_type: Option<String>) {
        let mut i = from;
        while i < to {
            let t = &self.sig[i];
            match t.text.as_str() {
                "impl" | "trait" => {
                    let is_trait = t.is("trait");
                    let (head, trait_head, body) = self.parse_impl_head(i, to);
                    if is_trait {
                        if let Some(h) = &head {
                            self.traits.push(h.clone());
                        }
                    } else if let (Some(tr), Some(ty)) = (&trait_head, &head) {
                        self.trait_impls.push((tr.clone(), ty.clone()));
                    }
                    if let Some((b0, b1)) = body {
                        self.scan_items(b0, b1, head);
                        i = b1 + 1;
                    } else {
                        i += 1;
                    }
                }
                "mod" => {
                    // `mod name { … }` — recurse; `mod name;` — skip.
                    let mut j = i + 1;
                    while j < to && !self.sig[j].is("{") && !self.sig[j].is(";") {
                        j += 1;
                    }
                    if j < to && self.sig[j].is("{") {
                        let end = self.match_brace(j, to);
                        self.scan_items(j + 1, end, None);
                        i = end + 1;
                    } else {
                        i = j + 1;
                    }
                }
                "fn" => {
                    i = self.parse_fn(i, to, impl_type.clone());
                }
                "struct" => {
                    i = self.parse_struct(i, to);
                }
                "enum" => {
                    i = self.parse_enum(i, to);
                }
                "union" => {
                    // Skip the body; union fields are not modeled.
                    let mut j = i + 1;
                    while j < to && !self.sig[j].is("{") && !self.sig[j].is(";") {
                        j += 1;
                    }
                    i = if j < to && self.sig[j].is("{") {
                        self.match_brace(j, to) + 1
                    } else {
                        j + 1
                    };
                }
                "macro_rules" => {
                    // macro_rules! name { … }
                    let mut j = i + 1;
                    while j < to && !self.sig[j].is("{") {
                        j += 1;
                    }
                    i = if j < to {
                        self.match_brace(j, to) + 1
                    } else {
                        to
                    };
                }
                _ => i += 1,
            }
        }
    }

    /// At an `enum` token: record the single-field tuple variants
    /// (variant name → payload type head) and return the index after the
    /// item. Struct-style and multi-field variants bind no single
    /// receiver, so they are skipped.
    fn parse_enum(&mut self, i: usize, to: usize) -> usize {
        let mut j = i + 1;
        while j < to && !self.sig[j].is("{") && !self.sig[j].is(";") {
            j += 1;
        }
        if j >= to || !self.sig[j].is("{") {
            return j + 1;
        }
        let end = self.match_brace(j, to);
        let mut k = j + 1;
        while k < end {
            let t = &self.sig[k];
            if t.kind == TokenKind::Ident && k + 1 < end && self.sig[k + 1].is("(") {
                let close = self.match_paren(k + 1, end);
                let ty = {
                    let run = &self.sig[k + 2..close.min(end)];
                    if run.iter().any(|t| t.is(",")) {
                        None
                    } else {
                        type_head(run)
                    }
                };
                if let Some(ty) = ty {
                    let name = self.sig[k].text.clone();
                    self.enum_variants.push((name, ty));
                }
                k = close + 1;
            } else if t.is("{") {
                k = self.match_brace(k, end) + 1;
            } else {
                k += 1;
            }
        }
        end + 1
    }

    /// At `impl`/`trait` token `i`: return (self-type head, trait head for
    /// `impl Trait for Type` blocks, body range).
    #[allow(clippy::type_complexity)]
    fn parse_impl_head(
        &self,
        i: usize,
        to: usize,
    ) -> (Option<String>, Option<String>, Option<(usize, usize)>) {
        let mut j = i + 1;
        // Skip generic parameters directly after the keyword.
        if j < to && self.sig[j].is("<") {
            j = self.skip_angles(j, to);
        }
        // Collect until `{`; if a `for` appears, what was collected so far
        // is the trait head and collection restarts on the self type.
        let mut head: Option<String> = None;
        let mut trait_head: Option<String> = None;
        let mut k = j;
        while k < to && !self.sig[k].is("{") && !self.sig[k].is(";") {
            let t = &self.sig[k];
            if t.is("for") {
                trait_head = head.take();
            } else if t.is("where") {
                break;
            } else if t.is("<") {
                k = self.skip_angles(k, to);
                continue;
            } else if t.kind == TokenKind::Ident && !is_keyword(&t.text) {
                // Follow path segments: the head is the last segment.
                head = Some(t.text.clone());
            }
            k += 1;
        }
        while k < to && !self.sig[k].is("{") && !self.sig[k].is(";") {
            k += 1;
        }
        if k < to && self.sig[k].is("{") {
            let end = self.match_brace(k, to);
            (head, trait_head, Some((k + 1, end)))
        } else {
            (head, trait_head, None)
        }
    }

    /// At `fn` token `i`: record the function, return the index after it.
    fn parse_fn(&mut self, i: usize, to: usize, impl_type: Option<String>) -> usize {
        let line = self.sig[i].line;
        let Some(name_tok) = self.sig.get(i + 1) else {
            return i + 1;
        };
        if name_tok.kind != TokenKind::Ident {
            return i + 1;
        }
        let name = name_tok.text.clone();
        let mut j = i + 2;
        if j < to && self.sig[j].is("<") {
            j = self.skip_angles(j, to);
        }
        if j >= to || !self.sig[j].is("(") {
            return i + 1;
        }
        let params_end = self.match_paren(j, to);
        let params = self.parse_params(j + 1, params_end, impl_type.as_deref());
        // Return type (for lock-helper detection).
        let mut k = params_end + 1;
        let ret_start = k;
        while k < to && !self.sig[k].is("{") && !self.sig[k].is(";") {
            if self.sig[k].is("where") {
                break;
            }
            k += 1;
        }
        let ret_end = k;
        while k < to && !self.sig[k].is("{") && !self.sig[k].is(";") {
            k += 1;
        }
        let body = if k < to && self.sig[k].is("{") {
            let end = self.match_brace(k, to);
            (k + 1)..end
        } else {
            k..k
        };
        let after = if body.is_empty() { k + 1 } else { body.end + 1 };
        let ret_toks = &self.sig[ret_start..ret_end.min(self.sig.len())];
        let ret_result = ret_toks.iter().any(|t| t.is_ident("Result"));
        let returns_guard = ret_toks.iter().any(|t| t.is_ident("MutexGuard"));

        if impl_type.is_none() && name.starts_with("lock_") {
            // `fn lock_x(…) -> Result<MutexGuard<'_, T>>` → helper.
            let mut guard_type = None;
            let mut r = ret_start;
            while r + 1 < ret_end {
                if self.sig[r].is("MutexGuard") && self.sig[r + 1].is("<") {
                    let close = self.skip_angles(r + 1, ret_end);
                    let inner: Vec<&STok> = self.sig[r + 2..close.saturating_sub(1).max(r + 2)]
                        .iter()
                        .filter(|t| t.kind == TokenKind::Ident)
                        .collect();
                    guard_type = inner.last().map(|t| t.text.clone());
                    break;
                }
                r += 1;
            }
            if guard_type.is_some() || name.len() > 5 {
                let base = name.trim_start_matches("lock_");
                let pair = base.len() > "_pair".len() && base.ends_with("_pair");
                let lock = if pair {
                    base.trim_end_matches("_pair")
                } else {
                    base
                };
                self.lock_helpers.push(LockHelper {
                    name: name.clone(),
                    lock: lock.to_owned(),
                    guard_type,
                    pair,
                });
            }
        }

        self.functions.push(Function {
            name,
            impl_type,
            params,
            body,
            line,
            ret_result,
            returns_guard,
        });
        after
    }

    /// Parse a parameter list in `[from, to)` into (name, type head) pairs.
    fn parse_params(
        &self,
        from: usize,
        to: usize,
        impl_type: Option<&str>,
    ) -> Vec<(String, String)> {
        let mut out = Vec::new();
        let mut depth = 0i32;
        let mut start = from;
        let mut i = from;
        while i <= to {
            let at_end = i == to;
            let t = if at_end { None } else { Some(&self.sig[i]) };
            let is_sep = at_end || (depth == 0 && t.is_some_and(|t| t.is(",")));
            if let Some(t) = t {
                match t.text.as_str() {
                    "(" | "[" | "{" | "<" => depth += 1,
                    ")" | "]" | "}" | ">" => depth -= 1,
                    _ => {}
                }
            }
            if is_sep {
                if start < i {
                    if let Some(p) = self.parse_one_param(start, i, impl_type) {
                        out.push(p);
                    }
                }
                start = i + 1;
            }
            i += 1;
        }
        out
    }

    fn parse_one_param(
        &self,
        from: usize,
        to: usize,
        impl_type: Option<&str>,
    ) -> Option<(String, String)> {
        let toks = &self.sig[from..to];
        // Receiver forms: `self`, `&self`, `&mut self`, `self: …`.
        if toks.iter().take(3).any(|t| t.is("self")) {
            return impl_type.map(|t| ("self".to_owned(), t.to_owned()));
        }
        // `pattern: TYPE` — name is the last ident of the pattern.
        let colon = toks.iter().position(|t| t.is(":"))?;
        let name = toks[..colon]
            .iter()
            .rev()
            .find(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text))?
            .text
            .clone();
        let ty = type_head(&toks[colon + 1..])?;
        Some((name, ty))
    }

    /// At `struct` token `i`: record named fields, return index after.
    fn parse_struct(&mut self, i: usize, to: usize) -> usize {
        let Some(name_tok) = self.sig.get(i + 1) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        let mut j = i + 2;
        while j < to && !self.sig[j].is("{") && !self.sig[j].is(";") && !self.sig[j].is("(") {
            j += 1;
        }
        if j >= to || !self.sig[j].is("{") {
            // Tuple or unit struct: skip to `;` (or the paren group).
            if j < to && self.sig[j].is("(") {
                return self.match_paren(j, to) + 1;
            }
            return j + 1;
        }
        let end = self.match_brace(j, to);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < end {
            // field: `name : TYPE ,` at depth 0 inside the braces.
            if self.sig[k].kind == TokenKind::Ident
                && k + 1 < end
                && self.sig[k + 1].is(":")
                && !is_keyword(&self.sig[k].text)
            {
                let fname = self.sig[k].text.clone();
                // Type runs to the matching `,` at depth 0.
                let mut depth = 0i32;
                let mut e = k + 2;
                while e < end {
                    match self.sig[e].text.as_str() {
                        "(" | "[" | "{" | "<" => depth += 1,
                        ")" | "]" | "}" | ">" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    e += 1;
                }
                if let Some(ty) = type_head(&self.sig[k + 2..e]) {
                    fields.push((fname, ty));
                }
                k = e + 1;
            } else {
                k += 1;
            }
        }
        self.structs.push(StructDef { name, fields });
        end + 1
    }

    // --- token-walk utilities --------------------------------------------

    /// Index of the `}` matching the `{` at `open` (or `to - 1`).
    pub fn match_brace(&self, open: usize, to: usize) -> usize {
        self.match_pair(open, to, "{", "}")
    }

    /// Index of the `)` matching the `(` at `open` (or `to - 1`).
    pub fn match_paren(&self, open: usize, to: usize) -> usize {
        self.match_pair(open, to, "(", ")")
    }

    fn match_pair(&self, open: usize, to: usize, o: &str, c: &str) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < to {
            if self.sig[i].is(o) {
                depth += 1;
            } else if self.sig[i].is(c) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        to.saturating_sub(1)
    }

    /// Skip a `<…>` group starting at `open`; returns index after `>`.
    /// Bails at `;`/`{` so expression `<` comparisons cannot swallow the
    /// file.
    fn skip_angles(&self, open: usize, to: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < to {
            let t = &self.sig[i];
            if t.is("<") {
                depth += 1;
            } else if t.is(">") {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            } else if t.is(">>") {
                depth -= 2;
                if depth <= 0 {
                    return i + 1;
                }
            } else if t.is(";") || t.is("{") {
                return i;
            }
            i += 1;
        }
        to
    }
}

/// Head identifier of a type token run: strips `&`, `mut`, `dyn`, `impl`,
/// lifetimes and leading path qualifiers; `Vec<Foo>` → `Vec`,
/// `&mut std::collections::HashMap<K, V>` → `HashMap`.
fn type_head(toks: &[STok]) -> Option<String> {
    let mut head: Option<&str> = None;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.text.as_str() {
            "&" | "mut" | "dyn" | "impl" | "Box" => {}
            "<" => {
                if head.is_some_and(|h| h != "Box") {
                    break;
                }
            }
            "::" => {}
            _ if t.kind == TokenKind::Lifetime => {}
            _ if t.kind == TokenKind::Ident && !is_keyword(&t.text) => {
                head = Some(&t.text);
            }
            _ => {
                if head.is_some() {
                    break;
                }
            }
        }
        i += 1;
    }
    head.map(str::to_owned)
}

/// Strip whitespace/comments/attributes and `#[cfg(test)]` items from the
/// raw token stream; collect `lint:allow` directives from comments.
#[allow(clippy::type_complexity)]
fn strip_insignificant(
    src: &str,
    tokens: &[Token],
) -> (Vec<STok>, Vec<(u32, Vec<String>)>, Vec<String>) {
    let mut sig: Vec<STok> = Vec::new();
    let mut allow_lines = Vec::new();
    let mut allow_file = Vec::new();
    let mut i = 0usize;
    // Pending `#[cfg(test)]` flag: set by an attribute, consumed by the
    // next non-attribute significant token run (item head).
    let mut pending_test = false;
    // When inside a cfg(test)-gated item, skip to this brace depth.
    let mut skip_depth: Option<i32> = None;
    let mut depth = 0i32;

    while i < tokens.len() {
        let t = &tokens[i];
        match t.kind {
            TokenKind::Whitespace => {}
            TokenKind::LineComment | TokenKind::BlockComment => {
                let text = t.text(src);
                for (marker, file_wide) in [("lint:allow-file(", true), ("lint:allow(", false)] {
                    if let Some(p) = text.find(marker) {
                        let rest = &text[p + marker.len()..];
                        let inner = rest.split(')').next().unwrap_or("");
                        let rules: Vec<String> = inner
                            .split(',')
                            .map(|s| s.trim().to_owned())
                            .filter(|s| !s.is_empty())
                            .collect();
                        if file_wide {
                            allow_file.extend(rules);
                        } else if !rules.is_empty() {
                            allow_lines.push((t.line, rules));
                        }
                        break;
                    }
                }
            }
            _ => {
                let text = t.text(src);
                if let Some(target) = skip_depth {
                    // Inside a cfg(test) item: track braces until closed.
                    if text == "{" {
                        depth += 1;
                    } else if text == "}" {
                        depth -= 1;
                        if depth <= target {
                            skip_depth = None;
                        }
                    } else if depth == target && text == ";" {
                        // `#[cfg(test)] use …;` style item without a body.
                        skip_depth = None;
                    }
                    i += 1;
                    continue;
                }
                if text == "#" {
                    // Attribute: `#[…]` or `#![…]` — strip, noting cfg(test).
                    let mut j = i + 1;
                    while j < tokens.len()
                        && matches!(
                            tokens[j].kind,
                            TokenKind::Whitespace
                                | TokenKind::LineComment
                                | TokenKind::BlockComment
                        )
                    {
                        j += 1;
                    }
                    let bang = j < tokens.len() && tokens[j].text(src) == "!";
                    if bang {
                        j += 1;
                    }
                    if j < tokens.len() && tokens[j].text(src) == "[" {
                        let mut bdepth = 0i32;
                        let mut attr_text = String::new();
                        while j < tokens.len() {
                            let tt = tokens[j].text(src);
                            if tokens[j].kind != TokenKind::Whitespace {
                                attr_text.push_str(tt);
                            }
                            if tt == "[" {
                                bdepth += 1;
                            } else if tt == "]" {
                                bdepth -= 1;
                                if bdepth == 0 {
                                    break;
                                }
                            }
                            j += 1;
                        }
                        if !bang && attr_text.contains("cfg") && attr_text.contains("test") {
                            pending_test = true;
                        }
                        i = j + 1;
                        continue;
                    }
                    // A stray `#` (not an attribute): keep it.
                }
                if text == "{" {
                    depth += 1;
                } else if text == "}" {
                    depth -= 1;
                }
                if pending_test {
                    match text {
                        // Visibility and qualifiers between the attribute
                        // and the item keyword.
                        "pub" | "(" | ")" | "crate" | "super" | "in" | "async" | "unsafe"
                        | "const" | "extern" => {}
                        "{" => {
                            // Item with a body (mod/fn/impl): skip to close.
                            skip_depth = Some(depth - 1);
                            pending_test = false;
                            i += 1;
                            continue;
                        }
                        _ => {}
                    }
                    if text == ";" {
                        pending_test = false;
                        i += 1;
                        continue;
                    }
                    i += 1;
                    continue;
                }
                sig.push(STok {
                    kind: t.kind,
                    text: text.to_owned(),
                    line: t.line,
                });
            }
        }
        i += 1;
    }
    (sig, allow_lines, allow_file)
}

// --- body analyses --------------------------------------------------------

/// Extract call sites and lock sites (with held-lock context) from a
/// function body, resolving receivers where possible.
///
/// Single forward pass: guard chains are classified at acquisition time
/// (the chained tokens come later in the stream), so when the walk reaches
/// a chained call its receiver type is already known.
pub fn analyze_body(
    file: &FileModel,
    f: &Function,
    helpers: &[LockHelper],
) -> (Vec<CallSite>, Vec<LockSite>, Vec<HeldCall>) {
    #[derive(Debug)]
    struct Guard {
        lock: String,
        bind: Option<String>,
        depth: i32,
        temp: bool,
    }

    let sig = &file.sig;
    let body = f.body.clone();
    let mut calls: Vec<CallSite> = Vec::new();
    let mut locks: Vec<LockSite> = Vec::new();
    let mut held_calls: Vec<HeldCall> = Vec::new();
    let mut guards: Vec<Guard> = Vec::new();
    // Call-name token positions chained onto a guard → receiver type.
    let mut chained: Vec<(usize, Option<String>)> = Vec::new();
    let mut lets: Vec<(String, String)> = Vec::new(); // typed let bindings

    let mut depth = 0i32;
    let mut pdepth = 0i32;
    let mut stmt_start = body.start;
    let helper_of = |name: &str| helpers.iter().find(|h| h.name == name);

    let mut i = body.start;
    while i < body.end {
        let t = &sig[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                stmt_start = i + 1;
            }
            "}" => {
                guards.retain(|g| g.depth < depth && !g.temp);
                depth -= 1;
                stmt_start = i + 1;
            }
            ";" if pdepth == 0 => {
                guards.retain(|g| !g.temp);
                stmt_start = i + 1;
            }
            "," if pdepth == 0 => {
                // A match-arm or struct-literal boundary at this depth:
                // statement temporaries die here too.
                guards.retain(|g| !(g.temp && g.depth == depth));
            }
            "(" | "[" => pdepth += 1,
            ")" | "]" => pdepth -= 1,
            _ => {}
        }

        // `drop(name)` releases a named guard.
        if t.is("drop") && i + 3 < body.end && sig[i + 1].is("(") && sig[i + 3].is(")") {
            let victim = sig[i + 2].text.clone();
            guards.retain(|g| g.bind.as_deref() != Some(victim.as_str()));
        }

        // `let x: HashMap<…>` / `let x = HashMap::new()` typing.
        if t.is("let") {
            if let Some((n, ty)) = let_typed(sig, i, body.end) {
                lets.push((n, ty));
            }
        }

        // Acquisition: helper call `lock_x(` or method call `x.lock()`.
        let acq = if t.kind == TokenKind::Ident
            && i + 1 < body.end
            && sig[i + 1].is("(")
            && (i == body.start || !sig[i - 1].is("."))
        {
            helper_of(&t.text).map(|h| (h.lock.clone(), h.guard_type.clone(), h.pair))
        } else if t.is("lock")
            && i >= 1
            && sig[i - 1].is(".")
            && i + 2 < body.end
            && sig[i + 1].is("(")
            && sig[i + 2].is(")")
        {
            // `x.lock()` / `self.x.lock()` — lock id = nearest ident.
            let id = (1..=3)
                .filter_map(|back| i.checked_sub(1 + back))
                .map(|j| &sig[j])
                .find(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "anonymous".to_owned());
            Some((id, None, false))
        } else {
            None
        };

        let was_acq = acq.is_some();
        if let Some((lock, guard_type, pair)) = acq {
            let held: Vec<HeldLock> = guards
                .iter()
                .map(|g| HeldLock {
                    lock: g.lock.clone(),
                    key: None,
                    guard_type: None,
                })
                .collect();
            // Helper acquisitions carry their normalized argument text as
            // the shard key (S11); raw `.lock()` calls have none. A pair
            // helper takes both keys as its trailing arguments and yields
            // two same-family guards.
            let keys = if helper_of(&t.text).is_some() {
                pair_keys(file, i + 1, body.end, pair)
            } else {
                vec![(None, None)]
            };
            for (n, (key, partner)) in keys.iter().enumerate() {
                locks.push(LockSite {
                    lock: lock.clone(),
                    guard_type: guard_type.clone(),
                    key: key.clone(),
                    pair_with: partner.clone(),
                    // The second pair guard sits on the `(` token so the
                    // flow analysis sees the first one held at its site.
                    tok: i + n,
                    line: t.line,
                    held: held.clone(),
                });
            }
            // The guard is `let`-bound only when the whole statement is
            // `let [mut] NAME = <acq>(…)?*;` — anything chained after the
            // call means the statement binds the chain's result and the
            // guard itself is a statement temporary. A pair helper binds
            // through a tuple pattern: its last two idents, in order.
            let mut binds: Vec<Option<String>> = vec![None; keys.len()];
            let st = &sig[stmt_start..i.min(body.end)];
            if st.first().is_some_and(|t| t.is("let")) {
                // Binding names live in the pattern, strictly before `=`
                // (the receiver chain of an `x.lock()` acquisition comes
                // after it and must not shadow them).
                let eq = st.iter().position(|t| t.is("=")).unwrap_or(st.len());
                let mut names = st[..eq]
                    .iter()
                    .rev()
                    .filter(|t| t.kind == TokenKind::Ident && !is_keyword(&t.text));
                // Skip `?`s and result adapters (`.map_err(…)`): they
                // pass the guard through, so the `let` still binds it. A
                // `let g = match <acq>(…) { … };` likewise binds — the
                // match arms adapt the acquisition result in place.
                let in_match = st.iter().any(|t| t.is("match"));
                let close = file.match_paren(i + 1, body.end);
                let mut k = close + 1;
                loop {
                    while k < body.end && sig[k].is("?") {
                        k += 1;
                    }
                    if k + 2 < body.end
                        && sig[k].is(".")
                        && GUARD_ADAPTERS.contains(&sig[k + 1].text.as_str())
                        && sig[k + 2].is("(")
                    {
                        k = file.match_paren(k + 2, body.end) + 1;
                        continue;
                    }
                    if in_match && k < body.end && sig[k].is("{") {
                        k = file.match_brace(k, body.end) + 1;
                        continue;
                    }
                    break;
                }
                if k < body.end && sig[k].is(";") {
                    for b in binds.iter_mut().rev() {
                        *b = names.next().map(|t| t.text.clone());
                    }
                }
            }
            for bind in binds {
                let temp = bind.is_none();
                // A named guard binding types later method calls on it
                // with the helper's guard self-type: `let net =
                // lock_net(…)?;` makes `net.send_blob(…)` dispatch on
                // `NetFabric`.
                if let (Some(name), Some(gt)) = (&bind, &guard_type) {
                    lets.push((name.clone(), gt.clone()));
                }
                guards.push(Guard {
                    lock: lock.clone(),
                    bind,
                    depth,
                    temp,
                });
            }
            // Classify calls chained directly onto the guard: skip result
            // adapters (`.map_err(…)?`), type the first real method call.
            let close = file.match_paren(i + 1, body.end);
            let mut k = close + 1;
            let mut gty = guard_type;
            loop {
                while k < body.end && sig[k].is("?") {
                    k += 1;
                }
                if k + 2 < body.end
                    && sig[k].is(".")
                    && sig[k + 1].kind == TokenKind::Ident
                    && sig[k + 2].is("(")
                {
                    let name = sig[k + 1].text.clone();
                    if GUARD_ADAPTERS.contains(&name.as_str()) {
                        chained.push((k + 1, None));
                        k = file.match_paren(k + 2, body.end) + 1;
                        continue;
                    }
                    chained.push((k + 1, gty.take()));
                }
                break;
            }
        }

        // Call site? (An acquisition token is not *also* a call site:
        // `lock_manager(…)` / `x.lock()` would otherwise record an edge
        // onto their own lock.)
        let is_call = t.kind == TokenKind::Ident
            && !is_keyword(&t.text)
            && i + 1 < body.end
            && sig[i + 1].is("(")
            && !was_acq;
        if is_call {
            let prev = i.checked_sub(1).map(|j| &sig[j]);
            let prev_is_dot = prev.is_some_and(|p| p.is("."));
            let prev_is_path = prev.is_some_and(|p| p.is("::"));
            let prev_is_fn = prev.is_some_and(|p| p.is("fn"));
            let prev_is_bang = prev.is_some_and(|p| p.is("!"));
            if !prev_is_fn && !prev_is_bang {
                let recv = if let Some((_, gty)) = chained.iter().find(|(pos, _)| *pos == i) {
                    match gty {
                        Some(t) => Receiver::Typed(t.clone()),
                        None => Receiver::Unknown,
                    }
                } else if prev_is_dot {
                    receiver_of(file, f, sig, i, &lets)
                } else if prev_is_path {
                    // `Type::m(` — qualified call.
                    match i.checked_sub(2).map(|j| &sig[j]) {
                        Some(q)
                            if q.kind == TokenKind::Ident
                                && q.text.chars().next().is_some_and(char::is_uppercase) =>
                        {
                            Receiver::Typed(q.text.clone())
                        }
                        _ => Receiver::Free,
                    }
                } else {
                    Receiver::Free
                };
                let held: Vec<HeldLock> = guards
                    .iter()
                    .map(|g| HeldLock {
                        lock: g.lock.clone(),
                        key: None,
                        guard_type: None,
                    })
                    .collect();
                let call = CallSite {
                    name: t.text.clone(),
                    recv,
                    tok: i,
                    line: t.line,
                };
                if !held.is_empty() {
                    held_calls.push(HeldCall {
                        call: call.clone(),
                        held,
                    });
                }
                calls.push(call);
            }
        }
        i += 1;
    }

    (calls, locks, held_calls)
}

/// Normalized argument text of the paren group opening at `open`:
/// token texts joined without spaces (`&self.shards[a]` style), so two
/// acquisition sites compare keys by exact spelling.
pub(crate) fn normalized_args(file: &FileModel, open: usize, end: usize) -> String {
    if open >= end || !file.sig[open].is("(") {
        return String::new();
    }
    let close = file.match_paren(open, end);
    file.sig[open + 1..close.max(open + 1)]
        .iter()
        .map(|t| t.text.as_str())
        .collect()
}

/// The acquisition keys of a helper call at the paren group opening at
/// `open`: one `(key, partner)` entry per guard the call produces. A
/// plain helper yields its whole normalized argument text; a
/// `lock_<family>_pair` helper yields its last two top-level arguments as
/// two keys, each carrying the other as its partner. Falls back to the
/// single whole-text key when the two pair arguments cannot be split
/// apart or are textually identical (the helper then degenerates to one
/// guard anyway).
pub(crate) fn pair_keys(
    file: &FileModel,
    open: usize,
    end: usize,
    pair: bool,
) -> Vec<(Option<String>, Option<String>)> {
    let args = normalized_args(file, open, end);
    if pair {
        let parts = split_args(&args);
        if parts.len() >= 2 {
            let b = parts[parts.len() - 1].clone();
            let a = parts[parts.len() - 2].clone();
            if a != b {
                return vec![(Some(a.clone()), Some(b.clone())), (Some(b), Some(a))];
            }
        }
    }
    vec![(Some(args), None)]
}

/// Split a normalized argument string at top-level commas (`(`/`[`/`{`
/// nesting respected; `<` is ambiguous in expression position and left
/// alone).
fn split_args(args: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in args.chars() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Typed `let` binding at token `i` (`let`): `let [mut] x: Ty …` or
/// `let [mut] x = Ty::new(…)`.
fn let_typed(sig: &[STok], i: usize, end: usize) -> Option<(String, String)> {
    let mut j = i + 1;
    if j < end && sig[j].is("mut") {
        j += 1;
    }
    if j >= end || sig[j].kind != TokenKind::Ident {
        return None;
    }
    let name = sig[j].text.clone();
    match sig.get(j + 1).map(|t| t.text.as_str()) {
        Some(":") => {
            // Type annotation: take the head.
            let mut k = j + 2;
            let mut run = Vec::new();
            while k < end && !sig[k].is("=") && !sig[k].is(";") {
                run.push(sig[k].clone());
                k += 1;
            }
            type_head(&run).map(|ty| (name, ty))
        }
        Some("=") => {
            // `= Ty::new(` / `= Ty::with_capacity(` / `= Ty::from(`.
            let k = j + 2;
            if k + 1 < end
                && sig[k].kind == TokenKind::Ident
                && sig[k + 1].is("::")
                && sig[k].text.chars().next().is_some_and(char::is_uppercase)
            {
                Some((name, sig[k].text.clone()))
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Receiver type of the method call whose name token is at `i`
/// (`… . name (`): `self.m` → impl type; `x.m` with `x` a typed param or
/// `let`; `self.field.m` via the impl struct's field types.
fn receiver_of(
    file: &FileModel,
    f: &Function,
    sig: &[STok],
    i: usize,
    lets: &[(String, String)],
) -> Receiver {
    // Token layout: … recv . name ( — the `.` is at i-1.
    let Some(r) = i.checked_sub(2).map(|j| &sig[j]) else {
        return Receiver::Unknown;
    };
    if r.kind != TokenKind::Ident {
        return Receiver::Unknown;
    }
    let lookup = |name: &str| -> Option<String> {
        if name == "self" {
            return f.impl_type.clone();
        }
        // Later `let`s shadow earlier ones and parameters, as in Rust —
        // `fn f(net: &SharedNet)` rebinding `let net = lock_net(net)?;`
        // must type `net.…` with the guard type, not the param's.
        lets.iter()
            .rev()
            .chain(f.params.iter())
            .find(|(n, _)| n == name)
            .map(|(_, t)| t.clone())
    };
    // `self.field.m(` — resolve through the impl struct's fields.
    if i >= 4 && sig[i - 3].is(".") && sig[i - 4].is("self") {
        if let Some(impl_ty) = &f.impl_type {
            if let Some(st) = file.structs.iter().find(|s| &s.name == impl_ty) {
                if let Some((_, fty)) = st.fields.iter().find(|(n, _)| n == &r.text) {
                    return Receiver::Typed(fty.clone());
                }
            }
        }
        return Receiver::Unknown;
    }
    // Plain `x.m(` — but only if `x` starts the chain (not `a.x.m(`).
    if i >= 3 && sig[i - 3].is(".") {
        return Receiver::Unknown;
    }
    // `Variant(x) =>` match arm (or `if let Variant(x) = …`): a
    // single-field tuple variant's payload type types the binding. Search
    // lexically backwards so the nearest enclosing arm wins.
    let arm_bound = |name: &str| -> Option<String> {
        (f.body.start..i).rev().find_map(|j| {
            if sig[j].text != name || j < f.body.start + 2 {
                return None;
            }
            let closes = sig.get(j + 1).is_some_and(|t| t.is(")"));
            let arm = sig.get(j + 2).is_some_and(|t| t.is("=>") || t.is("="));
            if !closes || !arm || !sig[j - 1].is("(") || sig[j - 2].kind != TokenKind::Ident {
                return None;
            }
            let variant = &sig[j - 2].text;
            file.enum_variants
                .iter()
                .find(|(v, _)| v == variant)
                .map(|(_, ty)| ty.clone())
        })
    };
    match lookup(&r.text).or_else(|| arm_bound(&r.text)) {
        Some(t) => Receiver::Typed(t),
        None => Receiver::Unknown,
    }
}
