//! Workspace-wide call graph: resolved call edges plus Tarjan SCCs in
//! bottom-up (callees-first) order.
//!
//! Edge resolution reuses the structural model's unambiguous discipline
//! (typed receiver, free-function key, unique-by-name) and layers one
//! fallback on top that the intraprocedural rules never needed: a method
//! call whose receiver is typed as a *trait* head — a `Box<dyn
//! Transport>` parameter, or an enum match-arm binding whose variant
//! payload is a trait object — resolves through the class hierarchy to
//! every `impl Trait for Type` that defines the method. That keeps the
//! graph an under-approximation for static calls while still seeing
//! through the dynamic dispatch the netd/blobd layers lean on.

use crate::model::{CallSite, Receiver};
use crate::rules::Workspace;
use std::collections::{BTreeMap, BTreeSet};

/// One resolved out-edge of a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallEdge {
    /// Index of the call site in the caller's `FnInfo::calls`.
    pub call: usize,
    /// Callee function id.
    pub callee: usize,
}

/// The resolved graph. Function ids are [`Workspace::fns`] indexes.
pub struct CallGraph {
    /// Per-function resolved out-edges, in call-site order.
    pub edges: Vec<Vec<CallEdge>>,
    /// Strongly connected components, callees-first: an SCC appears after
    /// every SCC it has an edge into, so a single forward pass over this
    /// list visits callees before their callers.
    pub sccs: Vec<Vec<usize>>,
    /// Function id → index into [`CallGraph::sccs`].
    pub scc_of: Vec<usize>,
    /// Trait name → method names it declares.
    trait_methods: BTreeMap<String, BTreeSet<String>>,
    /// Trait name → implementing self-type heads.
    trait_impls: BTreeMap<String, Vec<String>>,
}

impl CallGraph {
    /// Resolve every call site and compute the SCC order.
    pub fn build(ws: &Workspace) -> CallGraph {
        let mut trait_methods: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
        let mut trait_impls: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for file in &ws.files {
            for t in &file.traits {
                trait_methods.entry(t.clone()).or_default();
            }
            for (tr, ty) in &file.trait_impls {
                let v = trait_impls.entry(tr.clone()).or_default();
                if !v.contains(ty) {
                    v.push(ty.clone());
                }
            }
        }
        // A function declared inside a `trait` block carries the trait
        // name as its impl type; those are the trait's method names.
        for id in 0..ws.fns.len() {
            let f = ws.func(id);
            if let Some(t) = &f.impl_type {
                if let Some(methods) = trait_methods.get_mut(t) {
                    methods.insert(f.name.clone());
                }
            }
        }
        let mut g = CallGraph {
            edges: Vec::with_capacity(ws.fns.len()),
            sccs: Vec::new(),
            scc_of: vec![0; ws.fns.len()],
            trait_methods,
            trait_impls,
        };
        let mut adj: Vec<Vec<usize>> = Vec::with_capacity(ws.fns.len());
        for id in 0..ws.fns.len() {
            let mut out = Vec::new();
            for (ci, call) in ws.fns[id].calls.iter().enumerate() {
                for callee in g.resolve(ws, id, call) {
                    out.push(CallEdge { call: ci, callee });
                }
            }
            adj.push(out.iter().map(|e| e.callee).collect());
            g.edges.push(out);
        }
        g.sccs = tarjan(&adj);
        for (n, scc) in g.sccs.iter().enumerate() {
            for &id in scc {
                g.scc_of[id] = n;
            }
        }
        g
    }

    /// Resolve a call site: the workspace's unambiguous discipline first,
    /// plus the class-hierarchy fallback when the receiver is *typed as a
    /// trait* — that typed key would only find the trait block's own
    /// (bodiless) stubs, so the call goes to every implementor instead.
    /// Untyped receivers deliberately get no hierarchy walk: a generic
    /// method name like `contains` on an unknown receiver would smear
    /// every implementor's effects onto unrelated std-container calls.
    /// Candidates are sorted, deduped, and never include the caller.
    pub fn resolve(&self, ws: &Workspace, caller: usize, call: &CallSite) -> Vec<usize> {
        let trait_recv = match &call.recv {
            Receiver::Typed(t) => self.trait_methods.contains_key(t),
            Receiver::Unknown | Receiver::Free => false,
        };
        if !trait_recv {
            return ws.resolve(caller, call);
        }
        let Receiver::Typed(tr) = &call.recv else {
            return Vec::new();
        };
        let mut out: Vec<usize> = Vec::new();
        if self
            .trait_methods
            .get(tr)
            .is_some_and(|m| m.contains(&call.name))
        {
            if let Some(types) = self.trait_impls.get(tr) {
                for ty in types {
                    out.extend_from_slice(ws.lookup(ty, &call.name));
                }
            }
        }
        out.retain(|&id| id != caller);
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Function ids reachable from `roots` over resolved edges, with the
    /// first-discovered predecessor of each (for chain reconstruction).
    pub fn reachable_from(&self, roots: &[usize]) -> BTreeMap<usize, Option<usize>> {
        use std::collections::btree_map::Entry;
        let mut seen: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: Vec<usize> = Vec::new();
        for &r in roots {
            if let Entry::Vacant(slot) = seen.entry(r) {
                slot.insert(None);
                queue.push(r);
            }
        }
        while let Some(id) = queue.pop() {
            for e in &self.edges[id] {
                if let Entry::Vacant(slot) = seen.entry(e.callee) {
                    slot.insert(Some(id));
                    queue.push(e.callee);
                }
            }
        }
        seen
    }
}

const UNSEEN: usize = usize::MAX;

/// Iterative Tarjan (explicit DFS frames — fixture soup can nest deeply
/// enough to make recursion a liability). SCCs come out in reverse
/// topological order of the condensation, i.e. callees-first.
fn tarjan(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut sccs: Vec<Vec<usize>> = Vec::new();
    let mut next = 0usize;
    let mut frames: Vec<(usize, usize)> = Vec::new();
    for root in 0..n {
        if index[root] != UNSEEN {
            continue;
        }
        index[root] = next;
        low[root] = next;
        next += 1;
        stack.push(root);
        on_stack[root] = true;
        frames.push((root, 0));
        while let Some(frame) = frames.last_mut() {
            let v = frame.0;
            if frame.1 < adj[v].len() {
                let w = adj[v][frame.1];
                frame.1 += 1;
                if index[w] == UNSEEN {
                    index[w] = next;
                    low[w] = next;
                    next += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(parent) = frames.last() {
                    low[parent.0] = low[parent.0].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut scc = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    sccs.push(scc);
                }
            }
        }
    }
    sccs
}
