//! S11 `cross-shard-order`: two locks of the same keyed family held
//! together without canonical ordering evidence.
//!
//! The sharded manager (ROADMAP item 1) splits one mutex into many,
//! keyed by shard. Code that takes two shard guards at once — a
//! cross-shard detach, a rebalance — must acquire them in one global
//! order or two such operations deadlock against each other. The rule
//! fires on a flow-held pair from the same helper family with *different*
//! known keys, unless the body shows ordering evidence: a comparison
//! between the keys' distinguishing tokens, or both keys run through
//! `min`/`max`/`cmp`/`sort*`. S1 deliberately leaves this shape alone
//! (different keys are not re-entrance); the two rules partition the
//! same-family plane between them.
//!
//! A `lock_<family>_pair` helper acquires both guards in one call; there
//! the canonical order lives in the **helper body**, not the caller's, so
//! for the second guard of a pair acquisition checked against the first
//! the rule looks for ordering evidence between the helper's last two
//! parameters (`a.min(b)` / `a.max(b)` in the shipped `lock_shard_pair`).
//! A pair helper that merely locks its arguments in the order given is
//! not evidence, and every call through it is flagged.

use super::{violation, Workspace};
use crate::lexer::{lex, TokenKind};
use crate::model::FileModel;
use crate::{LintViolation, Rule};
use std::collections::BTreeSet;

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for info in &ws.fns {
        let file = &ws.files[info.file];
        let f = &file.functions[info.func];
        for ls in &info.locks {
            let Some(k2) = ls.key.as_deref() else {
                continue;
            };
            for h in &ls.held {
                if h.lock != ls.lock {
                    continue;
                }
                let Some(k1) = h.key.as_deref() else {
                    continue;
                };
                if k1 == k2 {
                    continue; // re-entrance: S1's domain
                }
                // The second guard of a `lock_<family>_pair(…)` call,
                // checked against its partner: the ordering discipline
                // lives in the helper, so that is where the evidence is.
                if ls.pair_with.as_deref() == Some(k1) && pair_helper_orders(ws, &ls.lock) {
                    continue;
                }
                if ordering_evidence(file, f.body.clone(), k1, k2) {
                    continue;
                }
                out.push(violation(
                    file,
                    Rule::CrossShardOrder,
                    ls.line,
                    format!(
                        "two `{}` locks are held together (`{}` then `{}`) with no canonical \
                         acquisition order — compare the shard keys (or min/max them) and \
                         always lock the smaller first",
                        ls.lock, k1, k2
                    ),
                ));
            }
        }
    }
    out
}

/// Whether the `lock_<family>_pair` helper establishes the canonical
/// order itself: its body shows ordering evidence between its last two
/// parameters (the two shard keys). When it does, every call through it
/// is ordered by construction, whatever the caller passes.
fn pair_helper_orders(ws: &Workspace, family: &str) -> bool {
    let name = format!("lock_{family}_pair");
    for file in &ws.files {
        for f in &file.functions {
            if f.impl_type.is_none() && f.name == name && f.params.len() >= 2 {
                let a = &f.params[f.params.len() - 2].0;
                let b = &f.params[f.params.len() - 1].0;
                return ordering_evidence(file, f.body.clone(), a, b);
            }
        }
    }
    false
}

/// Tokens that tell two keys apart: idents and numbers appearing in one
/// key but not the other (`self`, punctuation and shared path prefixes
/// drop out).
fn distinguishers(a: &str, b: &str) -> BTreeSet<String> {
    let toks = |s: &str| -> BTreeSet<String> {
        lex(s)
            .iter()
            .filter(|t| matches!(t.kind, TokenKind::Ident | TokenKind::Number))
            .map(|t| t.text(s).to_owned())
            .filter(|t| t != "self")
            .collect()
    };
    toks(a).difference(&toks(b)).cloned().collect()
}

/// Ordering evidence between `k1` and `k2` inside the body: a direct
/// comparison of their distinguishing tokens, or both fed to an ordering
/// combinator.
fn ordering_evidence(file: &FileModel, body: std::ops::Range<usize>, k1: &str, k2: &str) -> bool {
    let d1 = distinguishers(k1, k2);
    let d2 = distinguishers(k2, k1);
    if d1.is_empty() || d2.is_empty() {
        return false;
    }
    let sig = &file.sig;
    let hit = |s: &BTreeSet<String>, t: &crate::model::STok| s.contains(&t.text);
    for i in body.clone() {
        let t = &sig[i];
        if matches!(t.text.as_str(), "<" | ">" | "<=" | ">=") && i > body.start && i + 1 < body.end
        {
            let (p, n) = (&sig[i - 1], &sig[i + 1]);
            if (hit(&d1, p) && hit(&d2, n)) || (hit(&d2, p) && hit(&d1, n)) {
                return true;
            }
        }
        if t.kind == TokenKind::Ident
            && matches!(
                t.text.as_str(),
                "min" | "max" | "cmp" | "sort" | "sort_by" | "sort_unstable"
            )
            && i + 1 < body.end
            && sig[i + 1].text == "("
        {
            let close = file.match_paren(i + 1, body.end);
            let group = &sig[i + 2..close.max(i + 2)];
            let has = |s: &BTreeSet<String>| group.iter().any(|t| hit(s, t));
            // `a.min(b)` puts one key before the call; look both inside
            // the group and at the receiver tokens just before it.
            let recv_has = |s: &BTreeSet<String>| {
                (i.saturating_sub(4)..i).any(|j| j >= body.start && hit(s, &sig[j]))
            };
            if (has(&d1) || recv_has(&d1)) && (has(&d2) || recv_has(&d2)) {
                return true;
            }
        }
    }
    false
}
