//! S2 `recorder-bypass` and S6 `event-coverage`: both sides of the PR 4
//! Recorder choke point.
//!
//! S2 keeps stats mutation and event emission *inside*
//! `crates/core/src/recorder.rs`; S6 keeps each Recorder method's counter
//! bumps and its event emission *paired* (exactly one `EventKind` per
//! recording method), so `verify-trace`'s fold-identity check cannot
//! silently rot.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::{LintViolation, Rule};

/// Compound assignment and plain-assignment operators (the lexer emits
/// `==` as its own token, so matching `=` here is unambiguous).
const MUT_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
];

fn is_recorder_file(f: &FileModel) -> bool {
    f.rel_path.ends_with("src/recorder.rs")
}

/// `… . stats . field <mut-op>` or `… . stats <mut-op>` starting at the
/// `stats` token — the leading `.` requirement keeps local snapshot
/// variables (`let stats = …; stats.total` reads) out of scope.
fn stats_mutation_at(file: &FileModel, i: usize) -> bool {
    let sig = &file.sig;
    if !sig[i].is_ident("stats") || i == 0 || !sig[i - 1].text.eq(".") {
        return false;
    }
    match sig.get(i + 1).map(|t| t.text.as_str()) {
        Some(".") => {
            sig.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
                && sig
                    .get(i + 3)
                    .is_some_and(|t| MUT_OPS.contains(&t.text.as_str()))
        }
        Some(op) => MUT_OPS.contains(&op),
        None => false,
    }
}

/// S2: `EventKind` mention or stats-field mutation outside the choke
/// point, anywhere in `core`.
pub(super) fn run_bypass(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.crate_name != "core" || is_recorder_file(file) {
            continue;
        }
        // `use`/`pub use` statements re-export names without touching
        // them; only expression/type positions count.
        let mut in_use = false;
        for (i, t) in file.sig.iter().enumerate() {
            if t.text == "use" {
                in_use = true;
            } else if t.text == ";" {
                in_use = false;
            }
            if !in_use && t.kind == TokenKind::Ident && t.text == "EventKind" {
                out.push(violation(
                    file,
                    Rule::RecorderBypass,
                    t.line,
                    "events are emitted only by Recorder methods in \
                     crates/core/src/recorder.rs; add a method there so the stats bump \
                     and the event stay paired"
                        .to_owned(),
                ));
            } else if stats_mutation_at(file, i) {
                out.push(violation(
                    file,
                    Rule::RecorderBypass,
                    t.line,
                    "SwapStats counters are mutated only inside the Recorder choke point \
                     (crates/core/src/recorder.rs); route this bump through a Recorder \
                     method"
                        .to_owned(),
                ));
            }
        }
    }
    out
}

/// S6: inside the choke point, each Recorder method that touches counters
/// must emit exactly one event.
pub(super) fn run_coverage(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.crate_name != "core" || !is_recorder_file(file) {
            continue;
        }
        for f in &file.functions {
            if f.impl_type.as_deref() != Some("Recorder") {
                continue;
            }
            let sig = &file.sig;
            let mut muts = 0usize;
            let mut emits = 0usize;
            for i in f.body.clone() {
                if stats_mutation_at(file, i) {
                    muts += 1;
                }
                // `self.emit(…)` or `self.sink.push(…)`.
                let is_call = sig[i].kind == TokenKind::Ident
                    && i > 0
                    && sig[i - 1].text == "."
                    && sig.get(i + 1).is_some_and(|t| t.text == "(");
                let is_emit = is_call && sig[i].text == "emit";
                let is_sink_push = is_call
                    && sig[i].text == "push"
                    && i >= 3
                    && sig[i - 2].is_ident("sink")
                    && sig[i - 3].text == ".";
                if is_emit || is_sink_push {
                    emits += 1;
                }
            }
            if emits > 1 {
                out.push(violation(
                    file,
                    Rule::EventCoverage,
                    f.line,
                    format!(
                        "Recorder::{} emits {} events; one method records one event so \
                         counters and the trace fold stay in lockstep — split the method",
                        f.name, emits
                    ),
                ));
            } else if muts > 0 && emits == 0 {
                out.push(violation(
                    file,
                    Rule::EventCoverage,
                    f.line,
                    format!(
                        "Recorder::{} mutates SwapStats but emits no event, so \
                         verify-trace's fold can no longer reproduce the counters; emit a \
                         matching EventKind (or document the exception with lint:allow)",
                        f.name
                    ),
                ));
            }
        }
    }
    out
}
