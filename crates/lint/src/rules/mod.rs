//! The S1–S12 rule catalog, plus the cross-file [`Workspace`] index the
//! rules run against.
//!
//! Resolution discipline (shared by S1 and S8): a call site resolves to a
//! project function only when the evidence is unambiguous — a typed
//! receiver matching an `impl` block, a `Type::method` path, or a name
//! defined exactly once in the workspace. Anything else is dropped, so the
//! call approximation under-approximates and the rules stay quiet rather
//! than noisy.

mod blobs;
mod blocking;
mod discard;
mod guard_escape;
mod guard_ship;
mod hash_iter;
mod layering;
mod lock_order;
mod panics;
mod quota;
mod recorder;
mod reentry;
mod shard_order;
mod wallclock;

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::locks::LockFlow;
use crate::model::{CallSite, FileModel, HeldCall, LockHelper, LockSite, Receiver};
use crate::summaries::Summary;
use crate::{LintViolation, Rule};
use std::collections::BTreeMap;

/// Analysis results for one function.
pub struct FnInfo {
    /// Index of the owning file in [`Workspace::files`].
    pub file: usize,
    /// Index of the function in that file's `functions`.
    pub func: usize,
    /// Call sites in the body.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions in the body, with flow-sensitive held sets.
    pub locks: Vec<LockSite>,
    /// Call sites that run with at least one lock held on some path.
    pub held_calls: Vec<HeldCall>,
    /// The function body's control-flow graph.
    pub cfg: Cfg,
    /// Flow-sensitive held-lock analysis over `cfg`.
    pub flow: LockFlow,
}

/// The whole scanned tree: file models plus global indexes.
pub struct Workspace {
    /// Every scanned file.
    pub files: Vec<FileModel>,
    /// Every function, across all files.
    pub fns: Vec<FnInfo>,
    /// Lock helpers seen anywhere (deduped by name).
    pub helpers: Vec<LockHelper>,
    by_key: BTreeMap<(String, String), Vec<usize>>,
    by_name: BTreeMap<String, Vec<usize>>,
}

impl Workspace {
    /// Analyze every function and build the global call indexes.
    pub fn build(files: Vec<FileModel>) -> Workspace {
        let mut helpers: Vec<LockHelper> = Vec::new();
        for f in &files {
            for h in &f.lock_helpers {
                if !helpers.iter().any(|e| e.name == h.name) {
                    helpers.push(h.clone());
                }
            }
        }
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                // A lock helper's own body *defines* its lock; analyzing it
                // would read the interior `.lock()` as an acquisition site.
                let is_helper = f.impl_type.is_none() && helpers.iter().any(|h| h.name == f.name);
                let cfg = Cfg::build(&file.sig, f.body.clone());
                let (calls, mut locks, flow) = if is_helper {
                    (Vec::new(), Vec::new(), LockFlow::empty(&cfg))
                } else {
                    let (calls, locks, _) = crate::model::analyze_body(file, f, &helpers);
                    let flow = LockFlow::build(file, f, &helpers, &cfg);
                    (calls, locks, flow)
                };
                // Replace the linear pass's lexical held sets with the
                // flow-sensitive ones (held on *some* path to the site).
                for ls in &mut locks {
                    ls.held = flow.held_at(&cfg, ls.tok);
                }
                let held_calls: Vec<HeldCall> = calls
                    .iter()
                    .filter_map(|c| {
                        let held = flow.held_at(&cfg, c.tok);
                        (!held.is_empty()).then(|| HeldCall {
                            call: c.clone(),
                            held,
                        })
                    })
                    .collect();
                fns.push(FnInfo {
                    file: fi,
                    func: gi,
                    calls,
                    locks,
                    held_calls,
                    cfg,
                    flow,
                });
            }
        }
        let mut by_key: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        for (id, info) in fns.iter().enumerate() {
            let f = &files[info.file].functions[info.func];
            let key = (f.impl_type.clone().unwrap_or_default(), f.name.clone());
            by_key.entry(key).or_default().push(id);
            by_name.entry(f.name.clone()).or_default().push(id);
        }
        Workspace {
            files,
            fns,
            helpers,
            by_key,
            by_name,
        }
    }

    /// The file model for a workspace-relative path.
    pub fn file_by_path(&self, rel: &str) -> Option<&FileModel> {
        self.files.iter().find(|f| f.rel_path == rel)
    }

    /// The `Function` record behind a [`FnInfo`].
    pub fn func(&self, id: usize) -> &crate::model::Function {
        &self.files[self.fns[id].file].functions[self.fns[id].func]
    }

    /// Whether function `id`'s body mentions `needle` as an identifier.
    pub fn body_mentions(&self, id: usize, needle: &str) -> bool {
        let info = &self.fns[id];
        let file = &self.files[info.file];
        let f = &file.functions[info.func];
        file.sig[f.body.clone()]
            .iter()
            .any(|t| t.kind == crate::lexer::TokenKind::Ident && t.text == needle)
    }

    /// Resolve a call site to project function ids (possibly empty; the
    /// caller itself is never a candidate).
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let unique_by_name = |ws: &Workspace| -> Vec<usize> {
            let cands: Vec<usize> = ws
                .by_name
                .get(&call.name)
                .map(|v| v.iter().copied().filter(|&id| id != caller).collect())
                .unwrap_or_default();
            if cands.len() == 1 {
                cands
            } else {
                Vec::new()
            }
        };
        let mut out = match &call.recv {
            Receiver::Typed(t) => self
                .by_key
                .get(&(t.clone(), call.name.clone()))
                .cloned()
                .unwrap_or_default(),
            Receiver::Free => {
                let free = self
                    .by_key
                    .get(&(String::new(), call.name.clone()))
                    .cloned()
                    .unwrap_or_default();
                if free.is_empty() {
                    unique_by_name(self)
                } else {
                    free
                }
            }
            Receiver::Unknown => unique_by_name(self),
        };
        out.retain(|&id| id != caller);
        out
    }

    /// Function ids implementing `name` on self-type `impl_type` (the
    /// typed-key index; empty string keys free functions). The call
    /// graph's class-hierarchy fallback resolves through this.
    pub fn lookup(&self, impl_type: &str, name: &str) -> &[usize] {
        self.by_key
            .get(&(impl_type.to_owned(), name.to_owned()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Which functions sit on a path feeding the Recorder: any function
    /// whose body mentions `recorder`/`Recorder`, plus (transitively)
    /// everything such a function calls — a callee's behavior decides what
    /// the caller records.
    pub fn feeding_recorder(&self) -> Vec<bool> {
        let mut feeds: Vec<bool> = (0..self.fns.len())
            .map(|id| self.body_mentions(id, "recorder") || self.body_mentions(id, "Recorder"))
            .collect();
        loop {
            let mut changed = false;
            for id in 0..self.fns.len() {
                if !feeds[id] {
                    continue;
                }
                for call in &self.fns[id].calls {
                    for callee in self.resolve(id, call) {
                        if !feeds[callee] {
                            feeds[callee] = true;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                return feeds;
            }
        }
    }
}

/// The interprocedural layer, built once per run and shared by every
/// rule that looks across function boundaries.
pub struct Interproc {
    /// The resolved workspace call graph.
    pub cg: CallGraph,
    /// Per-function effect summaries, indexed like [`Workspace::fns`].
    pub sums: Vec<Summary>,
}

impl Interproc {
    /// Build the call graph and compute all summaries bottom-up.
    pub fn build(ws: &Workspace) -> Interproc {
        let cg = CallGraph::build(ws);
        let sums = crate::summaries::compute(ws, &cg);
        Interproc { cg, sums }
    }
}

/// Guards owned by the transport itself. S9 and S13's I/O classes exempt
/// them: `SimNet`/`NetFabric` *are* the transport, so their own lock
/// necessarily brackets every transfer.
pub(super) fn transport_guard(lock: &str, guard_type: Option<&str>) -> bool {
    lock == "net" || guard_type == Some("SimNet") || guard_type == Some("NetFabric")
}

/// Build a violation with the excerpt filled from the source line.
pub(crate) fn violation(file: &FileModel, rule: Rule, line: u32, advice: String) -> LintViolation {
    LintViolation {
        rule,
        file: file.rel_path.clone(),
        line,
        excerpt: file.line_text(line),
        advice,
        chain: Vec::new(),
    }
}

/// Run one rule over the workspace.
pub fn run(rule: Rule, ws: &Workspace, ip: &Interproc) -> Vec<LintViolation> {
    match rule {
        Rule::LockOrder => lock_order::run(ws, ip),
        Rule::RecorderBypass => recorder::run_bypass(ws),
        Rule::Layering => layering::run(ws),
        Rule::PanicPaths => panics::run(ws),
        Rule::BlobAccess => blobs::run(ws),
        Rule::EventCoverage => recorder::run_coverage(ws),
        Rule::WallClock => wallclock::run(ws),
        Rule::NondeterministicIteration => hash_iter::run(ws),
        Rule::GuardAcrossShip => guard_ship::run(ws, ip),
        Rule::GuardEscape => guard_escape::run(ws),
        Rule::CrossShardOrder => shard_order::run(ws),
        Rule::DiscardedResult => discard::run(ws),
        Rule::BlockingUnderLock => blocking::run(ws, ip),
        Rule::ActorReentrancy => reentry::run(ws, ip),
        Rule::UncheckedQuotaArithmetic => quota::run(ws),
    }
}
