//! S12 `discarded-result`: a `Result` from a swap/placement operation
//! dropped on some path.
//!
//! Every swap-domain operation reports failure through `SwapError` (the
//! PR 1 discipline S4 enforces); that only helps if callers look at the
//! value. Three discard shapes fire:
//!
//! 1. statement position — `self.net.drop_blob(…);` with nothing
//!    consuming the value;
//! 2. explicit discard — `let _ = swap_out(…);`;
//! 3. path discard — `let r = place_blob(…);` where `r` is never
//!    mentioned again on **some** path to the exit (a dataflow over the
//!    CFG; `?` early-exit edges are excluded so idiomatic propagation
//!    elsewhere in the function is not miscounted as a drop).
//!
//! A chain ending in `?` or any non-pass-through combinator counts as
//! consumption — the rule under-approximates, like the call resolver.

use super::{violation, Workspace};
use crate::cfg::EdgeKind;
use crate::dataflow::{forward_filtered, SetUnion};
use crate::lexer::TokenKind;
use crate::model::{FileModel, STok};
use crate::{LintViolation, Rule};
use std::collections::BTreeMap;

/// Name shapes of swap/placement operations the rule watches.
const OP_PREFIXES: &[&str] = &["swap_", "place_", "ship_", "detach_", "reload_", "repair_"];
/// Blocking `SimNet` blob verbs: always `Result`, even unresolved.
const NET_VERBS: &[&str] = &[
    "send_blob",
    "send_blob_routed",
    "fetch_blob",
    "fetch_blob_routed",
    "drop_blob",
    "store_blob",
];

fn is_op(name: &str) -> bool {
    NET_VERBS.contains(&name) || OP_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Combinators that pass the Result through unconsumed.
const PASS_THROUGH: &[&str] = &["map_err", "map", "inspect_err"];

/// Where a call's chain ends, and how.
enum ChainEnd {
    /// Consumed by `?` or a handling combinator.
    Consumed,
    /// Chain stops at this token index, value still live.
    Open(usize),
}

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for (id, info) in ws.fns.iter().enumerate() {
        let file = &ws.files[info.file];
        let f = &file.functions[info.func];
        let sig = &file.sig;
        let body = f.body.clone();
        if body.is_empty() {
            continue;
        }
        let stmt_of = stmt_starts(sig, body.clone());
        // Tracked simple bindings: (binding id, name, semi tok, let stmt
        // start, report line, callee name).
        let mut bindings: Vec<(String, usize, usize, u32, String)> = Vec::new();

        for c in &info.calls {
            if !is_op(&c.name) {
                continue;
            }
            // A resolved callee's declared signature wins; the NET_VERBS
            // fallback only covers calls the resolver cannot see (the
            // `SimNet` behind an opaque guard).
            let resolved = ws.resolve(id, c);
            let returns_result = if resolved.is_empty() {
                NET_VERBS.contains(&c.name.as_str())
            } else {
                resolved.into_iter().any(|cid| ws.func(cid).ret_result)
            };
            if !returns_result {
                continue;
            }
            let ChainEnd::Open(end) = chain_end(file, c.tok, body.end) else {
                continue;
            };
            if end >= body.end || sig[end].text != ";" {
                continue; // expression position: some consumer wraps it
            }
            let st = stmt_of[c.tok - body.start];
            if sig[st].text == "let" {
                let mut p = st + 1;
                if p < body.end && sig[p].text == "mut" {
                    p += 1;
                }
                if p + 1 < body.end && sig[p].text == "_" && sig[p + 1].text == "=" {
                    out.push(violation(
                        file,
                        Rule::DiscardedResult,
                        c.line,
                        format!(
                            "the Result of `{}` is explicitly discarded with `let _ =` — \
                             propagate it, match on it, or record the failure",
                            c.name
                        ),
                    ));
                } else if p + 1 < body.end
                    && sig[p].kind == TokenKind::Ident
                    && sig[p + 1].text == "="
                {
                    bindings.push((sig[p].text.clone(), end, st, sig[p].line, c.name.clone()));
                }
            } else if statement_position(sig, st, c.tok) {
                out.push(violation(
                    file,
                    Rule::DiscardedResult,
                    c.line,
                    format!(
                        "the Result of `{}` is dropped at statement position — `?` it, \
                         match on it, or record the failure",
                        c.name
                    ),
                ));
            }
        }

        // Path analysis for the tracked bindings: born at the `;` of the
        // `let`, consumed at any later mention; pending at exit on some
        // non-`?` path means a silent drop.
        if bindings.is_empty() {
            continue;
        }
        let mut events: BTreeMap<usize, Vec<(bool, usize)>> = BTreeMap::new();
        for (bid, (name, semi, st, _, _)) in bindings.iter().enumerate() {
            events.entry(*semi).or_default().push((true, bid));
            for i in body.clone() {
                if (*st..=*semi).contains(&i) {
                    continue; // the binding statement itself
                }
                if sig[i].is_ident(name) {
                    events.entry(i).or_default().push((false, bid));
                }
            }
        }
        let facts = forward_filtered(
            &info.cfg,
            SetUnion::default(),
            SetUnion::default(),
            |b, inf: &SetUnion<usize>| {
                let mut outf = inf.clone();
                for tok in info.cfg.tokens_of(b) {
                    if let Some(evs) = events.get(&tok) {
                        for &(born, bid) in evs {
                            if born {
                                outf.0.insert(bid);
                            } else {
                                outf.0.remove(&bid);
                            }
                        }
                    }
                }
                outf
            },
            |kind| kind != EdgeKind::Question,
        );
        for &bid in &facts[info.cfg.exit].0 {
            let (name, _, _, line, callee) = &bindings[bid];
            out.push(violation(
                file,
                Rule::DiscardedResult,
                *line,
                format!(
                    "`{name}` holds the Result of `{callee}` but is dropped on some path \
                     to the exit — every path must propagate, match, or record it",
                ),
            ));
        }
    }
    out
}

/// Statement-start index (absolute) for every body token, following the
/// same boundaries as the guard extraction (`{`/`}`/`;` at paren depth 0).
fn stmt_starts(sig: &[STok], body: std::ops::Range<usize>) -> Vec<usize> {
    let mut out = Vec::with_capacity(body.len());
    let mut pdepth = 0i32;
    let mut start = body.start;
    for i in body.clone() {
        out.push(start);
        match sig[i].text.as_str() {
            "{" | "}" => start = i + 1,
            ";" if pdepth == 0 => start = i + 1,
            "(" | "[" => pdepth += 1,
            ")" | "]" => pdepth -= 1,
            _ => {}
        }
    }
    out
}

/// Whether everything from the statement start to the call token is a
/// plain receiver path (idents, `.`/`::`, `&`) — i.e. the call *is* the
/// statement, not part of a larger expression.
fn statement_position(sig: &[STok], st: usize, call_tok: usize) -> bool {
    sig[st..call_tok].iter().all(|t| {
        matches!(t.text.as_str(), "." | "::" | "&")
            || (t.kind == TokenKind::Ident
                && !matches!(t.text.as_str(), "return" | "break" | "let" | "if" | "match"))
    })
}

/// Walk the combinator chain after the call at `tok`.
fn chain_end(file: &FileModel, tok: usize, end: usize) -> ChainEnd {
    let sig = &file.sig;
    if tok + 1 >= end || sig[tok + 1].text != "(" {
        return ChainEnd::Consumed; // not a call form we can reason about
    }
    let close = file.match_paren(tok + 1, end);
    let mut k = close + 1;
    loop {
        if k < end && sig[k].text == "?" {
            return ChainEnd::Consumed;
        }
        if k + 2 < end
            && sig[k].text == "."
            && sig[k + 1].kind == TokenKind::Ident
            && sig[k + 2].text == "("
        {
            if PASS_THROUGH.contains(&sig[k + 1].text.as_str()) {
                k = file.match_paren(k + 2, end) + 1;
                continue;
            }
            return ChainEnd::Consumed; // some other combinator handles it
        }
        if k + 1 < end && sig[k].text == "." {
            // field/method access without parens (`.is_ok`… unlikely):
            // treat as consumption.
            return ChainEnd::Consumed;
        }
        return ChainEnd::Open(k);
    }
}
