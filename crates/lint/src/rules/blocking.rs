//! S13 `blocking-under-lock`: a blocking operation reachable while a
//! lock guard is held on some path — across function boundaries.
//!
//! The live-system layers introduced real blocking: netd's pacing sleeps
//! charge simulated airtime with `thread::sleep`, blobd's client does
//! TCP connect/read/write with OS timeouts, and the device actors block
//! on `recv_timeout` for replies. None of that may happen under a
//! coordinator/shard/manager guard — one paced store would stall every
//! other swap behind a radio. The classes differ in strictness:
//!
//! * **sleep** is wrong under *any* guard, the transport's own included —
//!   a lock is never the place to wait out airtime;
//! * **socket I/O** and **channel waits** are the transport's own
//!   business under its own guard (`net`, `SimNet`/`NetFabric`), so they
//!   fire only when some *other* guard is held.
//!
//! Each site reports once, for the most severe reachable class, with the
//! summary's example call chain attached when the blocking is buried in
//! a callee.

use super::{transport_guard, violation, Interproc, Workspace};
use crate::summaries::{blocking_kind, display, BlockKind};
use crate::{LintViolation, Rule};

pub(super) fn run(ws: &Workspace, ip: &Interproc) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for (id, info) in ws.fns.iter().enumerate() {
        let file = &ws.files[info.file];
        for hc in &info.held_calls {
            // Every blocking class reachable from this call site, with an
            // example chain per class (empty chain = the site itself).
            let mut reachable: Vec<(BlockKind, Vec<String>)> = Vec::new();
            let resolved = ip.cg.edges[id]
                .iter()
                .any(|e| info.calls[e.call].tok == hc.call.tok);
            if !resolved {
                if let Some(kind) = blocking_kind(&hc.call) {
                    reachable.push((kind, Vec::new()));
                }
            }
            for edge in &ip.cg.edges[id] {
                if info.calls[edge.call].tok != hc.call.tok {
                    continue;
                }
                for (kind, tail) in &ip.sums[edge.callee].blocking {
                    if reachable.iter().any(|(k, _)| k == kind) {
                        continue;
                    }
                    let mut chain = vec![display(ws, edge.callee)];
                    chain.extend(tail.iter().cloned());
                    reachable.push((*kind, chain));
                }
            }
            reachable.sort_by_key(|(k, _)| *k);
            for (kind, chain) in reachable {
                let culpable = hc.held.iter().find(|h| {
                    kind == BlockKind::Sleep || !transport_guard(&h.lock, h.guard_type.as_deref())
                });
                let Some(held) = culpable else {
                    continue;
                };
                let how = if chain.is_empty() {
                    format!("`{}` {}", hc.call.name, kind.describe())
                } else {
                    format!(
                        "the call to `{}` (transitively) {}",
                        hc.call.name,
                        kind.describe()
                    )
                };
                let mut v = violation(
                    file,
                    Rule::BlockingUnderLock,
                    hc.call.line,
                    format!(
                        "{} while the `{}` guard is held on some path — do the blocking \
                         work before taking the guard or after dropping it",
                        how, held.lock
                    ),
                );
                v.chain = chain;
                out.push(v);
                break;
            }
        }
    }
    out
}
