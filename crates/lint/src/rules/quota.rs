//! S15 `unchecked-quota-arithmetic`: raw `+`/`-` on quota, used-bytes,
//! and airtime counters.
//!
//! The storage-accounting counters are the levers every placement and
//! refusal decision pivots on: `used + incoming > quota` deciding a
//! store, `used -= size` on a drop, airtime/bytes counters feeding the
//! pacing model. Raw arithmetic on them wraps on overflow in release
//! builds (and underflows silently on a double-drop bug), turning a full
//! device into an infinitely roomy one. In the accounting crates (`net`,
//! `netd`, `blobd`, `placement`) these counters move only through
//! `checked_*`/`saturating_*` helpers; this rule flags the raw operator
//! sites.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::{LintViolation, Rule};

/// Crates whose counters the rule governs.
const SCOPED_CRATES: &[&str] = &["net", "netd", "blobd", "placement"];

/// Whether an identifier names an accounting counter: any `_`-separated
/// segment is `quota`/`used`/`airtime`, or it is one of the named
/// transfer counters.
fn is_counter(name: &str) -> bool {
    name == "bytes_sent"
        || name == "bytes_fetched"
        || name
            .split('_')
            .any(|seg| seg == "quota" || seg == "used" || seg == "airtime")
}

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !SCOPED_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        let sig = &file.sig;
        for i in 0..sig.len() {
            let op = sig[i].text.as_str();
            if !matches!(op, "+" | "-" | "+=" | "-=") {
                continue;
            }
            // A counter on either side of the operator: the previous
            // identifier (`used +`), the next identifier (`+ used`), or a
            // `self . used` to the right.
            let prev = i
                .checked_sub(1)
                .map(|j| &sig[j])
                .filter(|t| t.kind == TokenKind::Ident)
                .is_some_and(|t| is_counter(&t.text));
            let next = sig
                .get(i + 1)
                .filter(|t| t.kind == TokenKind::Ident)
                .is_some_and(|t| is_counter(&t.text))
                || (sig.get(i + 1).is_some_and(|t| t.text == "self")
                    && sig.get(i + 2).is_some_and(|t| t.text == ".")
                    && sig
                        .get(i + 3)
                        .filter(|t| t.kind == TokenKind::Ident)
                        .is_some_and(|t| is_counter(&t.text)));
            if !(prev || next) {
                continue;
            }
            let verb = match op {
                "+" | "+=" => "add",
                _ => "sub",
            };
            out.push(violation(
                file,
                Rule::UncheckedQuotaArithmetic,
                sig[i].line,
                format!(
                    "raw `{op}` on an accounting counter wraps on overflow/underflow \
                     in release builds — go through `checked_{verb}`/`saturating_{verb}` \
                     instead so a full device can't read as an empty one"
                ),
            ));
        }
    }
    out
}
