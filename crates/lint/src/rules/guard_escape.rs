//! S10 `guard-escape`: a lock guard that outlives its function — returned
//! to the caller, stored into a field, or captured by a `move` closure.
//!
//! A guard that escapes turns a lexically-scoped critical section into an
//! unbounded one: the lock is released wherever the escaping value
//! happens to die, which no local reasoning (and no S9 scope-narrowing)
//! can see. Functions whose declared return type names `MutexGuard` are
//! exempt from the *returned* form — those are the intentional
//! constructors (`lock_manager` and friends) every other rule keys on.
//! Borrowing closures are not flagged: rustc already ties their lifetime
//! to the guard's scope; only `move` closures can smuggle one out.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::{LintViolation, Rule};

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for info in &ws.fns {
        let file = &ws.files[info.file];
        let f = &file.functions[info.func];
        let sig = &file.sig;
        let body = f.body.clone();
        for (gid, g) in info.flow.guards.iter().enumerate() {
            let Some(name) = g.bind.as_deref() else {
                continue;
            };

            // Returned: `return NAME ;` / `return Ok(NAME)` anywhere, or
            // the body's tail expression being `NAME` / `Ok(NAME)`.
            if !f.returns_guard {
                let returned = (body.start..body.end)
                    .find(|&i| sig[i].text == "return" && wrapped_name(sig, i + 1, body.end, name));
                let tail = tail_is_name(sig, body.clone(), name);
                if let Some(at) = returned.or(tail) {
                    out.push(violation(
                        file,
                        Rule::GuardEscape,
                        sig[at.min(body.end.saturating_sub(1))].line,
                        format!(
                            "the `{}` guard `{name}` is returned from `{}` — the critical \
                             section now ends wherever the caller drops it; return the data, \
                             not the lock",
                            g.lock, f.name
                        ),
                    ));
                    continue;
                }
            }

            // Stored in a field: `recv.field = NAME` or a struct-literal
            // `field: NAME` init.
            if let Some(at) = field_store(sig, body.clone(), name) {
                out.push(violation(
                    file,
                    Rule::GuardEscape,
                    sig[at].line,
                    format!(
                        "the `{}` guard `{name}` is stored in a field — the lock is now \
                         released wherever that structure dies, not at the end of this \
                         critical section",
                        g.lock
                    ),
                ));
                continue;
            }

            // Captured by a `move` closure while the guard is live.
            for i in body.clone() {
                if sig[i].text != "move" {
                    continue;
                }
                if !info.flow.held_ids_at(&info.cfg, i).contains(&gid) {
                    continue;
                }
                if move_captures(sig, i, body.end, name) {
                    out.push(violation(
                        file,
                        Rule::GuardEscape,
                        sig[i].line,
                        format!(
                            "the `{}` guard `{name}` is captured by a `move` closure — if \
                             the closure outlives this call the lock does too; pass the \
                             data by value instead",
                            g.lock
                        ),
                    ));
                    break;
                }
            }
        }
    }
    out
}

/// `NAME` or `Ok(NAME)` / `Some(NAME)` starting at `i`.
fn wrapped_name(sig: &[crate::model::STok], i: usize, end: usize, name: &str) -> bool {
    if i < end && sig[i].is_ident(name) {
        return true;
    }
    i + 3 < end
        && (sig[i].is_ident("Ok") || sig[i].is_ident("Some"))
        && sig[i + 1].text == "("
        && sig[i + 2].is_ident(name)
        && sig[i + 3].text == ")"
}

/// The body's tail expression is `NAME` / `Ok(NAME)` — returns its token.
fn tail_is_name(
    sig: &[crate::model::STok],
    body: std::ops::Range<usize>,
    name: &str,
) -> Option<usize> {
    let last = body.end.checked_sub(1).filter(|&l| l >= body.start)?;
    if sig[last].is_ident(name) && (last == body.start || sig[last - 1].text != ".") {
        return Some(last);
    }
    if last >= body.start + 3
        && sig[last].text == ")"
        && sig[last - 1].is_ident(name)
        && sig[last - 2].text == "("
        && (sig[last - 3].is_ident("Ok") || sig[last - 3].is_ident("Some"))
    {
        return Some(last - 1);
    }
    None
}

/// First `recv.field = NAME` assignment or `field: NAME [,}]` struct
/// literal init in the body.
fn field_store(
    sig: &[crate::model::STok],
    body: std::ops::Range<usize>,
    name: &str,
) -> Option<usize> {
    for i in body.clone() {
        if !sig[i].is_ident(name) {
            continue;
        }
        // `… . field = NAME` — assignment into a place expression.
        if i >= 3
            && sig[i - 1].text == "="
            && sig[i - 2].kind == TokenKind::Ident
            && sig[i - 3].text == "."
        {
            return Some(i);
        }
        // `field : NAME` followed by `,` or `}` — struct literal.
        if i >= 2
            && sig[i - 1].text == ":"
            && sig[i - 2].kind == TokenKind::Ident
            && i + 1 < body.end
            && (sig[i + 1].text == "," || sig[i + 1].text == "}")
        {
            return Some(i);
        }
    }
    None
}

/// Whether the statement containing the `move` at `m` mentions `name`
/// after it (the closure body captures the guard by value).
fn move_captures(sig: &[crate::model::STok], m: usize, end: usize, name: &str) -> bool {
    let mut depth = 0i32;
    let mut i = m + 1;
    while i < end {
        match sig[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                if depth == 0 {
                    return false;
                }
                depth -= 1;
            }
            ";" if depth == 0 => return false,
            _ => {
                if sig[i].is_ident(name) {
                    return true;
                }
            }
        }
        i += 1;
    }
    false
}
