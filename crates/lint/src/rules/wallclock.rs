//! S7 `wall-clock`: `Instant::now`/`SystemTime::now` outside the virtual
//! clock.
//!
//! Trace determinism (the `verify-trace` identity gate, PR 4) requires
//! every timestamp to come from the simulated clock in
//! `crates/net/src/clock.rs`. A wall-clock read anywhere else makes
//! run-over-run traces diverge, which turns golden-trace comparisons into
//! flakes.

use super::{violation, Workspace};
use crate::{LintViolation, Rule};

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.rel_path.ends_with("net/src/clock.rs") {
            continue;
        }
        let sig = &file.sig;
        for (i, t) in sig.iter().enumerate() {
            if (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && sig.get(i + 1).is_some_and(|n| n.text == "::")
                && sig.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                out.push(violation(
                    file,
                    Rule::WallClock,
                    t.line,
                    format!(
                        "`{}::now()` reads the wall clock; simulated time comes from \
                         obiwan_net's virtual clock so traces stay bit-identical across \
                         runs — thread a SimTime in (or lint:allow a genuine \
                         host-side measurement)",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}
