//! S7 `wall-clock`: `Instant::now`/`SystemTime::now` outside the virtual
//! clock.
//!
//! Trace determinism (the `verify-trace` identity gate, PR 4) requires
//! every timestamp to come from the simulated clock in
//! `crates/net/src/clock.rs`. A wall-clock read anywhere else makes
//! run-over-run traces diverge, which turns golden-trace comparisons into
//! flakes.
//!
//! The live-transport crates (`netd`, `blobd`) are held to a stricter
//! bar: they legitimately run on real time, but only through the
//! `clock::real()` seam `crates/net/src/clock.rs` exports — so there the
//! raw `Instant`/`SystemTime` types may not appear *at all*, not merely
//! their `::now` reads (`Duration` stays fine). One seam means one place
//! where simulated and real time can ever be confused.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::{LintViolation, Rule};

/// Crates that may touch real time only via `obiwan_net::clock::real()`.
const LIVE_CRATES: &[&str] = &["netd", "blobd"];

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.rel_path.ends_with("net/src/clock.rs") {
            continue;
        }
        let live = LIVE_CRATES.contains(&file.crate_name.as_str());
        let sig = &file.sig;
        for (i, t) in sig.iter().enumerate() {
            if live && t.kind == TokenKind::Ident && (t.text == "Instant" || t.text == "SystemTime")
            {
                out.push(violation(
                    file,
                    Rule::WallClock,
                    t.line,
                    format!(
                        "`{}` may not appear in live-transport crate `{}` at all: real \
                         time enters only through obiwan_net::clock::real(), the one \
                         seam where simulated and wall time may meet",
                        t.text, file.crate_name
                    ),
                ));
                continue;
            }
            if (t.is_ident("Instant") || t.is_ident("SystemTime"))
                && sig.get(i + 1).is_some_and(|n| n.text == "::")
                && sig.get(i + 2).is_some_and(|n| n.is_ident("now"))
            {
                out.push(violation(
                    file,
                    Rule::WallClock,
                    t.line,
                    format!(
                        "`{}::now()` reads the wall clock; simulated time comes from \
                         obiwan_net's virtual clock so traces stay bit-identical across \
                         runs — thread a SimTime in (or lint:allow a genuine \
                         host-side measurement)",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}
