//! S8 `nondeterministic-iteration`: `HashMap`/`HashSet` iteration on any
//! path feeding the Recorder.
//!
//! PR 4 fixed exactly this bug in `PlacementTable` (repair events were
//! emitted in hash order, breaking golden traces) by moving to `BTreeMap`.
//! This rule generalizes the fix: inside the deterministic-trace domain
//! (`core` and `placement`), any function on a recording path must not
//! observe hash iteration order. Lookups (`get`/`contains_key`/`insert`/
//! `remove`) stay fine — only order-revealing operations are flagged.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::model::FileModel;
use crate::{LintViolation, Rule};
use std::collections::BTreeSet;

/// Crates inside the deterministic-trace domain.
const SCOPE: &[&str] = &["core", "placement"];

/// Order-revealing operations.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet"];

/// Names bound to hash-typed values anywhere in the scoped crates:
/// struct fields (the field name is what `self.x.iter()` shows) plus this
/// file's typed params/lets — collected per workspace so impl blocks split
/// across files still see the struct's fields.
fn hash_named(ws: &Workspace) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for file in &ws.files {
        if !SCOPE.contains(&file.crate_name.as_str()) {
            continue;
        }
        for st in &file.structs {
            for (n, ty) in &st.fields {
                if HASH_TYPES.contains(&ty.as_str()) {
                    names.insert(n.clone());
                }
            }
        }
        for f in &file.functions {
            for (n, ty) in &f.params {
                if HASH_TYPES.contains(&ty.as_str()) {
                    names.insert(n.clone());
                }
            }
        }
    }
    names
}

/// Typed `let` bindings of hash types in one body: `let x: HashMap<…>` or
/// `let x = HashMap::new()` / `HashSet::from(…)`.
fn hash_lets(file: &FileModel, body: std::ops::Range<usize>, names: &mut BTreeSet<String>) {
    let sig = &file.sig;
    for i in body {
        if sig[i].text != "let" {
            continue;
        }
        let mut j = i + 1;
        if sig.get(j).is_some_and(|t| t.text == "mut") {
            j += 1;
        }
        let Some(name) = sig.get(j).filter(|t| t.kind == TokenKind::Ident) else {
            continue;
        };
        let hashy = match sig.get(j + 1).map(|t| t.text.as_str()) {
            Some(":") => sig
                .get(j + 2)
                .is_some_and(|t| HASH_TYPES.contains(&t.text.as_str())),
            Some("=") => {
                sig.get(j + 2)
                    .is_some_and(|t| HASH_TYPES.contains(&t.text.as_str()))
                    && sig.get(j + 3).is_some_and(|t| t.text == "::")
            }
            _ => false,
        };
        if hashy {
            names.insert(name.text.clone());
        }
    }
}

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let feeds = ws.feeding_recorder();
    let field_names = hash_named(ws);
    let mut out = Vec::new();
    for (id, info) in ws.fns.iter().enumerate() {
        if !feeds[id] {
            continue;
        }
        let file = &ws.files[info.file];
        if !SCOPE.contains(&file.crate_name.as_str()) {
            continue;
        }
        let f = &file.functions[info.func];
        let mut names = field_names.clone();
        hash_lets(file, f.body.clone(), &mut names);
        let sig = &file.sig;
        let mut i = f.body.start;
        while i < f.body.end {
            let t = &sig[i];
            // `name.iter()` / `self.name.iter()` / `name.retain(…)`.
            if t.kind == TokenKind::Ident
                && names.contains(&t.text)
                && sig.get(i + 1).is_some_and(|n| n.text == ".")
                && sig.get(i + 2).is_some_and(|m| {
                    m.kind == TokenKind::Ident && ITER_METHODS.contains(&m.text.as_str())
                })
                && sig.get(i + 3).is_some_and(|p| p.text == "(")
            {
                out.push(violation(
                    file,
                    Rule::NondeterministicIteration,
                    t.line,
                    format!(
                        "`{}` is hash-keyed and `{}` runs on a path that feeds the \
                         Recorder, so event order depends on hasher state; switch the \
                         container to BTreeMap/BTreeSet (the PR 4 PlacementTable fix) or \
                         sort before iterating",
                        t.text, f.name
                    ),
                ));
                i += 3;
                continue;
            }
            // `for x in &map { … }` — scan the iterated expression.
            if t.text == "for" {
                let mut j = i + 1;
                while j < f.body.end && sig[j].text != "in" {
                    j += 1;
                }
                let expr_start = j + 1;
                while j < f.body.end && sig[j].text != "{" {
                    j += 1;
                }
                if let Some(name) = sig[expr_start..j.min(f.body.end)]
                    .iter()
                    .find(|t| t.kind == TokenKind::Ident && names.contains(&t.text))
                {
                    out.push(violation(
                        file,
                        Rule::NondeterministicIteration,
                        name.line,
                        format!(
                            "`for` loop iterates hash-keyed `{}` inside `{}`, which feeds \
                             the Recorder; hash order leaks into the trace — use \
                             BTreeMap/BTreeSet or collect-and-sort first",
                            name.text, f.name
                        ),
                    ));
                }
                i = j;
                continue;
            }
            i += 1;
        }
    }
    out
}
