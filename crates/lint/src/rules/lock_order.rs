//! S1 `lock-order`: cycles in the static lock-acquisition graph.
//!
//! Every acquisition site contributes edges `held → acquired`, both for
//! direct acquisitions and — through the call graph's per-function
//! summaries — for calls made while a guard is live. A cycle (including
//! the 1-cycle of re-acquiring a non-reentrant `std::sync::Mutex`) is the
//! shape of the historical `make_cursor` deadlock: the middleware held
//! the manager lock and called into replication, which re-entered the
//! interceptor shim and took `lock_manager` again.
//!
//! Interprocedural edges carry the example call chain from the summary,
//! so the report shows *how* the buried acquisition is reached.

use super::{violation, Interproc, Workspace};
use crate::{LintViolation, Rule};
use std::collections::{BTreeMap, BTreeSet};

/// One lock-ordering edge with the site that introduced it.
struct Edge {
    file: usize,
    line: u32,
    note: String,
    chain: Vec<String>,
}

pub(super) fn run(ws: &Workspace, ip: &Interproc) -> Vec<LintViolation> {
    // (held, acquired) → first site introducing that edge.
    let mut edges: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for (id, info) in ws.fns.iter().enumerate() {
        for ls in &info.locks {
            for h in &ls.held {
                // Same family re-acquired under a *different known shard
                // key* is not re-entrance — it is S11's domain (two
                // siblings needing a canonical order), so S1 stays quiet.
                if h.lock == ls.lock && h.key.is_some() && ls.key.is_some() && h.key != ls.key {
                    continue;
                }
                edges
                    .entry((h.lock.clone(), ls.lock.clone()))
                    .or_insert_with(|| Edge {
                        file: info.file,
                        line: ls.line,
                        note: format!("`{}` is acquired while `{}` is held", ls.lock, h.lock),
                        chain: Vec::new(),
                    });
            }
        }
        // Interprocedural: a call made under a guard reaches whatever its
        // summary says it acquires.
        for hc in &info.held_calls {
            for edge in &ip.cg.edges[id] {
                if info.calls[edge.call].tok != hc.call.tok {
                    continue;
                }
                for (lock, tail) in &ip.sums[edge.callee].acquires {
                    for h in &hc.held {
                        edges
                            .entry((h.lock.clone(), lock.clone()))
                            .or_insert_with(|| {
                                let mut chain =
                                    vec![crate::summaries::display(ws, edge.callee)];
                                chain.extend(tail.iter().cloned());
                                Edge {
                                    file: info.file,
                                    line: hc.call.line,
                                    note: format!(
                                        "the call to `{}` (transitively) acquires `{}` while `{}` is held",
                                        hc.call.name, lock, h.lock
                                    ),
                                    chain,
                                }
                            });
                    }
                }
            }
        }
    }

    // Adjacency over lock identities.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for (held, acquired) in edges.keys() {
        adj.entry(held.as_str())
            .or_default()
            .insert(acquired.as_str());
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if seen.insert(n) {
                if let Some(next) = adj.get(n) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        false
    };

    let mut out = Vec::new();
    for ((held, acquired), edge) in &edges {
        let file = &ws.files[edge.file];
        let mut v = if held == acquired {
            violation(
                file,
                Rule::LockOrder,
                edge.line,
                format!(
                    "{}; a non-reentrant std Mutex self-deadlocks here (the historical \
                     make_cursor bug) — drop the `{}` guard before re-entering",
                    edge.note, held
                ),
            )
        } else if reaches(acquired, held) {
            violation(
                file,
                Rule::LockOrder,
                edge.line,
                format!(
                    "lock-order cycle: {}, but elsewhere `{}` is (transitively) acquired \
                     while `{}` is held — pick one global acquisition order",
                    edge.note, held, acquired
                ),
            )
        } else {
            continue;
        };
        v.chain = edge.chain.clone();
        out.push(v);
    }
    out
}
