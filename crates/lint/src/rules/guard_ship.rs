//! S9 `guard-across-ship`: a lock guard live across a blocking
//! `obiwan-net` blob transfer on some path.
//!
//! Shipping a blob is the slowest thing the middleware does — the paper's
//! B1 experiment measures proxy faults at 9× the local-call cost, and all
//! of that time is network airtime. Holding the manager (or any other
//! coarse) guard across the transfer serializes every other swap, cursor
//! build, and policy tick behind one radio. The sharded manager makes
//! this a hard contract: bytes move only after the bookkeeping guard
//! drops.
//!
//! The `net` guard itself is exempt — `SimNet`/`NetFabric` *are* the
//! transport, so their own lock necessarily brackets every send — and so
//! is the `net` crate, whose internals hold their own structures while
//! transmitting.
//!
//! The transitive case runs on the interprocedural summaries: a held
//! call whose callee's summary reaches a ship verb fires, with the
//! summary's example call chain attached to the report.

use super::{transport_guard, violation, Interproc, Workspace};
use crate::summaries::SHIP_FNS;
use crate::{LintViolation, Rule};

pub(super) fn run(ws: &Workspace, ip: &Interproc) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for (id, info) in ws.fns.iter().enumerate() {
        let file = &ws.files[info.file];
        if file.crate_name == "net" {
            continue;
        }
        for hc in &info.held_calls {
            let Some(held) = hc
                .held
                .iter()
                .find(|h| !transport_guard(&h.lock, h.guard_type.as_deref()))
            else {
                continue;
            };
            if SHIP_FNS.contains(&hc.call.name.as_str()) {
                out.push(violation(
                    file,
                    Rule::GuardAcrossShip,
                    hc.call.line,
                    format!(
                        "`{}` transmits a blob while the `{}` guard is held on some path — \
                         finish the bookkeeping, drop the guard, then ship",
                        hc.call.name, held.lock
                    ),
                ));
                continue;
            }
            // Transitive: does any resolved callee's summary ship?
            for edge in &ip.cg.edges[id] {
                if info.calls[edge.call].tok != hc.call.tok {
                    continue;
                }
                let Some(tail) = &ip.sums[edge.callee].ships else {
                    continue;
                };
                let mut chain = vec![crate::summaries::display(ws, edge.callee)];
                chain.extend(tail.iter().cloned());
                let mut v = violation(
                    file,
                    Rule::GuardAcrossShip,
                    hc.call.line,
                    format!(
                        "the call to `{}` (transitively) ships blobs over obiwan-net while \
                         the `{}` guard is held on some path — restructure so bytes move \
                         after the guard drops",
                        hc.call.name, held.lock
                    ),
                );
                v.chain = chain;
                out.push(v);
                break;
            }
        }
    }
    out
}
