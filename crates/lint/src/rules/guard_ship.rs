//! S9 `guard-across-ship`: a lock guard live across a blocking
//! `obiwan-net` blob transfer on some path.
//!
//! Shipping a blob is the slowest thing the middleware does — the paper's
//! B1 experiment measures proxy faults at 9× the local-call cost, and all
//! of that time is network airtime. Holding the manager (or any other
//! coarse) guard across the transfer serializes every other swap, cursor
//! build, and policy tick behind one radio. The upcoming sharded manager
//! (ROADMAP item 1) makes this a hard contract: bytes move only after the
//! bookkeeping guard drops.
//!
//! The `net` guard itself is exempt — `SimNet` *is* the transport, so its
//! own lock necessarily brackets every send — and so is the `net` crate,
//! whose internals hold their own structures while transmitting.

use super::{violation, Workspace};
use crate::{LintViolation, Rule};

/// Blocking blob-transfer entry points on `SimNet`.
const SHIP_FNS: &[&str] = &[
    "send_blob",
    "send_blob_routed",
    "fetch_blob",
    "fetch_blob_routed",
];

/// Guards that never count as "held across a ship": the transport's own.
fn transport_guard(lock: &str, guard_type: Option<&str>) -> bool {
    lock == "net" || guard_type == Some("SimNet")
}

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    // Transitive "ships blobs" closure over the resolved call graph.
    let mut ships: Vec<bool> = ws
        .fns
        .iter()
        .map(|info| {
            info.calls
                .iter()
                .any(|c| SHIP_FNS.contains(&c.name.as_str()))
        })
        .collect();
    loop {
        let mut changed = false;
        for id in 0..ws.fns.len() {
            if ships[id] {
                continue;
            }
            for call in &ws.fns[id].calls {
                if ws.resolve(id, call).into_iter().any(|c| ships[c]) {
                    ships[id] = true;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut out = Vec::new();
    for (id, info) in ws.fns.iter().enumerate() {
        let file = &ws.files[info.file];
        if file.crate_name == "net" {
            continue;
        }
        for hc in &info.held_calls {
            let Some(held) = hc
                .held
                .iter()
                .find(|h| !transport_guard(&h.lock, h.guard_type.as_deref()))
            else {
                continue;
            };
            if SHIP_FNS.contains(&hc.call.name.as_str()) {
                out.push(violation(
                    file,
                    Rule::GuardAcrossShip,
                    hc.call.line,
                    format!(
                        "`{}` transmits a blob while the `{}` guard is held on some path — \
                         finish the bookkeeping, drop the guard, then ship",
                        hc.call.name, held.lock
                    ),
                ));
            } else if ws.resolve(id, &hc.call).into_iter().any(|c| ships[c]) {
                out.push(violation(
                    file,
                    Rule::GuardAcrossShip,
                    hc.call.line,
                    format!(
                        "the call to `{}` (transitively) ships blobs over obiwan-net while \
                         the `{}` guard is held on some path — restructure so bytes move \
                         after the guard drops",
                        hc.call.name, held.lock
                    ),
                ));
            }
        }
    }
    out
}
