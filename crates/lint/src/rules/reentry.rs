//! S14 `actor-reentrancy`: code running *on* a device-actor thread
//! transitively calling back into a verb that enqueues to a device
//! actor's mailbox and blocks for the reply.
//!
//! netd's actors are single-threaded mailbox loops: `Actor::call` puts
//! an envelope on the channel and waits up to the actor timeout for the
//! reply. If the actor's own thread — anything reachable from the
//! closure passed to `spawn` — re-enters a `Transport` verb that calls
//! `Actor::call`, the enqueue can target the very mailbox the thread is
//! supposed to be draining: the reply never comes and the call burns the
//! full timeout (or deadlocks outright with a rendezvous channel). The
//! rule computes the set of functions reachable from any spawn body and
//! flags call sites in that set whose callee summary reaches a mailbox
//! enqueue.

use super::{violation, Interproc, Workspace};
use crate::summaries::{display, is_mailbox_enqueue};
use crate::{LintViolation, Rule};
use std::collections::BTreeSet;

pub(super) fn run(ws: &Workspace, ip: &Interproc) -> Vec<LintViolation> {
    // Actor-thread entry points: functions resolved from call sites that
    // sit lexically inside a `spawn(…)` argument list *and whose own body
    // drains a channel* (`rx.recv()` / `recv_timeout`). A spawned worker
    // that never drains a mailbox can enqueue to actors freely — only the
    // drain loop itself deadlocks by re-entering.
    let drains_mailbox = |id: usize| {
        ws.fns[id].calls.iter().enumerate().any(|(ci, c)| {
            crate::summaries::blocking_kind(c) == Some(crate::summaries::BlockKind::ChannelWait)
                && !ip.cg.edges[id].iter().any(|e| e.call == ci)
        })
    };
    let mut entries: Vec<usize> = Vec::new();
    let mut seen_entry: Vec<bool> = vec![false; ws.fns.len()];
    for (id, info) in ws.fns.iter().enumerate() {
        let file = &ws.files[info.file];
        let f = &file.functions[info.func];
        for c in &info.calls {
            if c.name != "spawn" {
                continue;
            }
            let open = c.tok + 1;
            if open >= f.body.end || file.sig[open].text != "(" {
                continue;
            }
            let close = file.match_paren(open, f.body.end);
            for edge in &ip.cg.edges[id] {
                let ct = info.calls[edge.call].tok;
                if ct > c.tok
                    && ct < close
                    && !seen_entry[edge.callee]
                    && drains_mailbox(edge.callee)
                {
                    seen_entry[edge.callee] = true;
                    entries.push(edge.callee);
                }
            }
        }
    }
    if entries.is_empty() {
        return Vec::new();
    }

    // Everything an actor thread can run, with first-discovered
    // predecessors for chain reconstruction.
    let reach = ip.cg.reachable_from(&entries);
    let path_from_entry = |mut id: usize| -> Vec<String> {
        let mut path = vec![display(ws, id)];
        while let Some(Some(pred)) = reach.get(&id) {
            path.push(display(ws, *pred));
            id = *pred;
        }
        path.reverse();
        path
    };

    let mut seen: BTreeSet<(usize, u32)> = BTreeSet::new();
    let mut out = Vec::new();
    for &id in reach.keys() {
        let info = &ws.fns[id];
        let file = &ws.files[info.file];
        for (ci, call) in info.calls.iter().enumerate() {
            let resolved: Vec<usize> = ip.cg.edges[id]
                .iter()
                .filter(|e| e.call == ci)
                .map(|e| e.callee)
                .collect();
            // Direct enqueue, or a callee whose summary reaches one.
            let tail: Option<Vec<String>> = if resolved
                .iter()
                .any(|&c| ip.sums[c].enqueues_mailbox.is_some())
            {
                resolved.iter().find_map(|&c| {
                    ip.sums[c].enqueues_mailbox.as_ref().map(|t| {
                        let mut chain = vec![display(ws, c)];
                        chain.extend(t.iter().cloned());
                        chain
                    })
                })
            } else if resolved.is_empty() && is_mailbox_enqueue(call) {
                Some(Vec::new())
            } else {
                None
            };
            let Some(chain) = tail else {
                continue;
            };
            if !seen.insert((info.file, call.line)) {
                continue;
            }
            let entry_path = path_from_entry(id);
            let entry = entry_path.first().cloned().unwrap_or_default();
            let mut v = violation(
                file,
                Rule::ActorReentrancy,
                call.line,
                format!(
                    "`{}` runs on the actor thread spawned into `{}` (via {}) and \
                     (transitively) enqueues to a device-actor mailbox — the actor \
                     can't drain its own inbox while blocked here, so this burns the \
                     actor timeout or deadlocks; hand the work to another thread or \
                     reply without re-entering the transport",
                    call.name,
                    entry,
                    entry_path.join(" -> "),
                ),
            );
            v.chain = chain;
            out.push(v);
        }
    }
    out
}
