//! S5 `blob-access`: raw blob store/drop/fetch traffic outside the
//! placement fan-out.
//!
//! PR 3's durability guarantees (k-way placement, failover reload, churn
//! repair) hold only if every blob write and drop goes through the
//! manager-side fan-out that keeps `PlacementTable` in sync with the
//! network. A stray `send_blob`/`drop_blob` elsewhere silently desyncs
//! the placement view from reality.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::{LintViolation, Rule};

/// The raw blob verbs on the network/store API.
const BLOB_VERBS: &[&str] = &[
    "send_blob",
    "fetch_blob",
    "drop_blob",
    "send_blob_routed",
    "fetch_blob_routed",
    "drop_blob_routed",
];

/// Core files that *are* the placement fan-out (plus its load/drop
/// mirrors): the sanctioned call sites.
const CORE_ALLOWED: &[&str] = &["detach.rs", "reload.rs", "gc_bridge.rs", "manager.rs"];

fn allowed(crate_name: &str, rel_path: &str) -> bool {
    match crate_name {
        // The network crate owns the verbs (definitions + internal use),
        // and the live-transport crates *implement* them: the daemon's
        // store dispatch and the actor runtime's `Transport` impl are the
        // layer below the placement fan-out, not callers bypassing it.
        "net" | "netd" | "blobd" => true,
        // Pre-OBIWAN baselines bypass placement by design: they exist to
        // measure what the paper's machinery buys.
        "baselines" => true,
        "core" => CORE_ALLOWED
            .iter()
            .any(|f| rel_path.ends_with(&format!("src/{f}"))),
        _ => false,
    }
}

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if allowed(&file.crate_name, &file.rel_path) {
            continue;
        }
        let sig = &file.sig;
        for (i, t) in sig.iter().enumerate() {
            if t.kind == TokenKind::Ident
                && BLOB_VERBS.contains(&t.text.as_str())
                && sig.get(i + 1).is_some_and(|n| n.text == "(")
                // A `fn send_blob(…)` definition is not traffic.
                && !(i >= 1 && sig[i - 1].text == "fn")
            {
                out.push(violation(
                    file,
                    Rule::BlobAccess,
                    t.line,
                    format!(
                        "`{}` bypasses the k-way placement fan-out; blob traffic goes \
                         through the manager's detach/reload/repair paths so \
                         PlacementTable stays in sync with the network (PR 3)",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}
