//! S4 `panic-paths`: `unwrap`-family calls and indexing/slicing in the
//! library code of crates the original clippy `disallowed-methods` wall
//! did not cover (`bench`, `auditor`, `baselines`, `policy`).
//!
//! PR 1 converted core+net to structured `SwapError`s after panics were
//! observed stranding half-patched proxy graphs; this rule extends the
//! same discipline to the measurement crates, whose panics abort whole
//! figure runs, and to the live-transport crates (`netd`, `blobd`),
//! where a panic takes down a daemon serving other devices' blobs.
//! Tests, benches and bins are outside the scanned set, so they keep
//! their idiomatic `unwrap`s.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::{LintViolation, Rule};

/// Crates governed by this rule.
const SCOPE: &[&str] = &["bench", "auditor", "baselines", "policy", "netd", "blobd"];

const UNWRAP_FAMILY: &[&str] = &[
    "unwrap",
    "expect",
    "unwrap_err",
    "expect_err",
    "unwrap_unchecked",
];

fn is_keywordish(t: &str) -> bool {
    matches!(
        t,
        "if" | "else"
            | "while"
            | "for"
            | "loop"
            | "match"
            | "return"
            | "break"
            | "continue"
            | "let"
            | "in"
            | "as"
            | "mut"
            | "ref"
            | "move"
            | "where"
            | "true"
            | "false"
    )
}

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if !SCOPE.contains(&file.crate_name.as_str()) {
            continue;
        }
        let sig = &file.sig;
        for (i, t) in sig.iter().enumerate() {
            // `.unwrap()` family — but not `self.expect(…)`-style custom
            // methods (a parser's own `expect` is not Option::expect).
            if t.kind == TokenKind::Ident
                && UNWRAP_FAMILY.contains(&t.text.as_str())
                && i >= 1
                && sig[i - 1].text == "."
                && sig.get(i + 1).is_some_and(|n| n.text == "(")
                && !(i >= 2 && sig[i - 2].text == "self")
            {
                out.push(violation(
                    file,
                    Rule::PanicPaths,
                    t.line,
                    format!(
                        "`.{}()` panics on the error path and aborts the whole run; \
                         propagate a structured error instead (see the PR 1 SwapError \
                         treatment of core+net)",
                        t.text
                    ),
                ));
            }
            // Indexing/slicing: `expr[…]` where the previous token closes
            // an expression. `[..]` (full-range) is infallible and allowed.
            if t.text == "[" && i >= 1 {
                let prev = &sig[i - 1];
                let prev_is_expr = prev.text == ")"
                    || prev.text == "]"
                    || (prev.kind == TokenKind::Ident
                        && !is_keywordish(&prev.text)
                        && !prev.text.chars().next().is_some_and(char::is_uppercase));
                let full_range = sig.get(i + 1).is_some_and(|a| a.text == "..")
                    && sig.get(i + 2).is_some_and(|b| b.text == "]");
                if prev_is_expr && !full_range {
                    out.push(violation(
                        file,
                        Rule::PanicPaths,
                        t.line,
                        "indexing/slicing panics when out of bounds; use `.get(…)`/ \
                         `.get_mut(…)` and handle the miss, or document the bound with \
                         lint:allow"
                            .to_owned(),
                    ));
                }
            }
        }
    }
    out
}
