//! S3 `layering`: the dependency-direction wall.
//!
//! Three sub-checks, all source-level so they hold even where Cargo's
//! dependency graph cannot see (string-typed coupling, re-exported
//! internals):
//!
//! * leaf crates (`trace`, `xml`, `lz`) name no other workspace crate;
//! * `core` never reaches into `obiwan_net`'s `sim`/`route` modules —
//!   only the crate-root façade;
//! * `Placement`/`PlacementTable` internals (struct literals, patterns,
//!   `.holders`/`.key` mutation) stay inside `crates/placement`;
//! * the live-transport crates stay low in the graph: `blobd` names no
//!   workspace crate but `obiwan_net`, and `netd` only `obiwan_net` and
//!   `obiwan_blobd` — a daemon that imports the core would drag the whole
//!   swapping stack into every storage process;
//! * `core` never names `obiwan_netd`/`obiwan_blobd`: it dispatches over
//!   the `Transport` trait, and live worlds are assembled *above* it.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::{LintViolation, Rule};

/// Crates that must stay leaves (no `obiwan_*` imports at all).
const LEAF_CRATES: &[&str] = &["trace", "xml", "lz"];

/// Live-transport crates and the only workspace crates each may name
/// (besides itself): the daemon is a dumb storage device over the net
/// façade, and the actor runtime adds just the daemon's client.
const TRANSPORT_IMPORTS: &[(&str, &[&str])] = &[
    ("blobd", &["obiwan_net"]),
    ("netd", &["obiwan_net", "obiwan_blobd"]),
];

/// Vec-mutating method names for the `.holders` check.
const VEC_MUTATORS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "retain",
    "clear",
    "truncate",
    "drain",
    "extend",
    "sort",
    "sort_unstable",
    "dedup",
    "swap_remove",
    "splice",
    "append",
];

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        let sig = &file.sig;
        let own = format!("obiwan_{}", file.crate_name);
        for (i, t) in sig.iter().enumerate() {
            // S3a: leaf crates import nothing from the workspace.
            if LEAF_CRATES.contains(&file.crate_name.as_str())
                && t.kind == TokenKind::Ident
                && t.text.starts_with("obiwan_")
                && t.text != own
            {
                out.push(violation(
                    file,
                    Rule::Layering,
                    t.line,
                    format!(
                        "crate `{}` is a leaf of the workspace graph and must not depend \
                         on `{}`; move shared types down or pass plain data in",
                        file.crate_name, t.text
                    ),
                ));
            }
            // S3b: core uses only obiwan_net's façade.
            if file.crate_name == "core"
                && t.is_ident("obiwan_net")
                && sig.get(i + 1).is_some_and(|n| n.text == "::")
                && sig
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("sim") || n.is_ident("route"))
            {
                out.push(violation(
                    file,
                    Rule::Layering,
                    t.line,
                    "core talks to the network through obiwan_net's crate-root façade \
                     only; naming sim/route internals couples core to the simulator's \
                     module layout"
                        .to_owned(),
                ));
            }
            // S3d: transport crates import only their sanctioned slice of
            // the workspace.
            if let Some((_, allowed)) = TRANSPORT_IMPORTS
                .iter()
                .find(|(c, _)| *c == file.crate_name)
            {
                if t.kind == TokenKind::Ident
                    && t.text.starts_with("obiwan_")
                    && t.text != own
                    && !allowed.contains(&t.text.as_str())
                {
                    out.push(violation(
                        file,
                        Rule::Layering,
                        t.line,
                        format!(
                            "live-transport crate `{}` must not depend on `{}`; daemons \
                             and the actor runtime stay below the swapping stack so a \
                             storage process never drags the core in",
                            file.crate_name, t.text
                        ),
                    ));
                }
            }
            // S3e: core dispatches over the Transport trait; naming the
            // live backends would invert the dependency wall.
            if file.crate_name == "core"
                && (t.is_ident("obiwan_netd") || t.is_ident("obiwan_blobd"))
            {
                out.push(violation(
                    file,
                    Rule::Layering,
                    t.line,
                    format!(
                        "core must not name `{}`: live worlds are assembled above the \
                         middleware and handed in through NetFabric::backend / \
                         build_in_world, never constructed inside core",
                        t.text
                    ),
                ));
            }
            // S3c: placement internals stay in crates/placement.
            if file.crate_name != "placement" {
                // Type positions (`-> &PlacementTable {`, `impl Trait for
                // PlacementTable {`) are not literals/patterns.
                let type_pos = i >= 1
                    && matches!(
                        sig[i - 1].text.as_str(),
                        "->" | "&" | "mut" | "dyn" | "impl" | "for" | ":" | "<" | "as"
                    );
                if (t.is_ident("Placement") || t.is_ident("PlacementTable"))
                    && sig.get(i + 1).is_some_and(|n| n.text == "{")
                    && !type_pos
                {
                    out.push(violation(
                        file,
                        Rule::Layering,
                        t.line,
                        format!(
                            "`{}` is constructed/destructured only inside crates/placement \
                             (the k-way invariants live there); use its constructor and \
                             accessor API",
                            t.text
                        ),
                    ));
                }
                if t.text == "."
                    && sig
                        .get(i + 1)
                        .is_some_and(|n| n.is_ident("holders") || n.is_ident("key"))
                {
                    let mutated = match sig.get(i + 2).map(|n| n.text.as_str()) {
                        Some(".") => {
                            sig.get(i + 3)
                                .is_some_and(|m| VEC_MUTATORS.contains(&m.text.as_str()))
                                && sig.get(i + 4).is_some_and(|p| p.text == "(")
                        }
                        Some(op) => matches!(
                            op,
                            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^="
                        ),
                        None => false,
                    };
                    if mutated {
                        out.push(violation(
                            file,
                            Rule::Layering,
                            sig[i + 1].line,
                            "Placement holder/key state is mutated only through \
                             PlacementTable's API so the k-way placement invariants \
                             (PR 3) cannot be bypassed"
                                .to_owned(),
                        ));
                    }
                }
            }
        }
    }
    out
}
