//! S3 `layering`: the dependency-direction wall.
//!
//! Three sub-checks, all source-level so they hold even where Cargo's
//! dependency graph cannot see (string-typed coupling, re-exported
//! internals):
//!
//! * leaf crates (`trace`, `xml`, `lz`) name no other workspace crate;
//! * `core` never reaches into `obiwan_net`'s `sim`/`route` modules —
//!   only the crate-root façade;
//! * `Placement`/`PlacementTable` internals (struct literals, patterns,
//!   `.holders`/`.key` mutation) stay inside `crates/placement`.

use super::{violation, Workspace};
use crate::lexer::TokenKind;
use crate::{LintViolation, Rule};

/// Crates that must stay leaves (no `obiwan_*` imports at all).
const LEAF_CRATES: &[&str] = &["trace", "xml", "lz"];

/// Vec-mutating method names for the `.holders` check.
const VEC_MUTATORS: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "retain",
    "clear",
    "truncate",
    "drain",
    "extend",
    "sort",
    "sort_unstable",
    "dedup",
    "swap_remove",
    "splice",
    "append",
];

pub(super) fn run(ws: &Workspace) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        let sig = &file.sig;
        let own = format!("obiwan_{}", file.crate_name);
        for (i, t) in sig.iter().enumerate() {
            // S3a: leaf crates import nothing from the workspace.
            if LEAF_CRATES.contains(&file.crate_name.as_str())
                && t.kind == TokenKind::Ident
                && t.text.starts_with("obiwan_")
                && t.text != own
            {
                out.push(violation(
                    file,
                    Rule::Layering,
                    t.line,
                    format!(
                        "crate `{}` is a leaf of the workspace graph and must not depend \
                         on `{}`; move shared types down or pass plain data in",
                        file.crate_name, t.text
                    ),
                ));
            }
            // S3b: core uses only obiwan_net's façade.
            if file.crate_name == "core"
                && t.is_ident("obiwan_net")
                && sig.get(i + 1).is_some_and(|n| n.text == "::")
                && sig
                    .get(i + 2)
                    .is_some_and(|n| n.is_ident("sim") || n.is_ident("route"))
            {
                out.push(violation(
                    file,
                    Rule::Layering,
                    t.line,
                    "core talks to the network through obiwan_net's crate-root façade \
                     only; naming sim/route internals couples core to the simulator's \
                     module layout"
                        .to_owned(),
                ));
            }
            // S3c: placement internals stay in crates/placement.
            if file.crate_name != "placement" {
                // Type positions (`-> &PlacementTable {`, `impl Trait for
                // PlacementTable {`) are not literals/patterns.
                let type_pos = i >= 1
                    && matches!(
                        sig[i - 1].text.as_str(),
                        "->" | "&" | "mut" | "dyn" | "impl" | "for" | ":" | "<" | "as"
                    );
                if (t.is_ident("Placement") || t.is_ident("PlacementTable"))
                    && sig.get(i + 1).is_some_and(|n| n.text == "{")
                    && !type_pos
                {
                    out.push(violation(
                        file,
                        Rule::Layering,
                        t.line,
                        format!(
                            "`{}` is constructed/destructured only inside crates/placement \
                             (the k-way invariants live there); use its constructor and \
                             accessor API",
                            t.text
                        ),
                    ));
                }
                if t.text == "."
                    && sig
                        .get(i + 1)
                        .is_some_and(|n| n.is_ident("holders") || n.is_ident("key"))
                {
                    let mutated = match sig.get(i + 2).map(|n| n.text.as_str()) {
                        Some(".") => {
                            sig.get(i + 3)
                                .is_some_and(|m| VEC_MUTATORS.contains(&m.text.as_str()))
                                && sig.get(i + 4).is_some_and(|p| p.text == "(")
                        }
                        Some(op) => matches!(
                            op,
                            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "&=" | "|=" | "^="
                        ),
                        None => false,
                    };
                    if mutated {
                        out.push(violation(
                            file,
                            Rule::Layering,
                            sig[i + 1].line,
                            "Placement holder/key state is mutated only through \
                             PlacementTable's API so the k-way placement invariants \
                             (PR 3) cannot be bypassed"
                                .to_owned(),
                        ));
                    }
                }
            }
        }
    }
    out
}
