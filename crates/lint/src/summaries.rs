//! Bottom-up per-function summaries over the call graph.
//!
//! Each function gets a [`Summary`] of the effects reachable from its
//! body: lock families acquired, blocking operations (sleeps, socket I/O,
//! channel waits), obiwan-net blob transfers, device-actor mailbox
//! enqueues, and Result-producing swap-protocol verbs. Every transitive
//! fact carries an example *call chain* — callee display names, outermost
//! first — so a rule firing on a caller can show the path to the buried
//! effect.
//!
//! Summaries are computed one SCC at a time in the call graph's
//! callees-first order, so acyclic call chains converge in a single pass.
//! Within an SCC (recursion) the merge iterates to fixpoint: the merge
//! only ever *adds* facts and a chain is recorded once per fact, so the
//! fixpoint is monotone over a finite domain and terminates on its own —
//! but, mirroring the dataflow engine's discipline, a fuel bound
//! proportional to the SCC size backstops it anyway.

use crate::callgraph::CallGraph;
use crate::model::{CallSite, Receiver};
use crate::rules::Workspace;
use std::collections::BTreeMap;

/// A blocking-operation class, ordered by severity (S13 reports the
/// worst one at a site).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BlockKind {
    /// `thread::sleep` and friends — unconditionally wrong under a lock.
    Sleep,
    /// TCP connect/read/write with OS-level timeouts.
    SocketIo,
    /// `mpsc` receive, with or without timeout.
    ChannelWait,
}

impl BlockKind {
    /// Human phrasing for advice strings.
    pub fn describe(self) -> &'static str {
        match self {
            BlockKind::Sleep => "sleeps on the calling thread",
            BlockKind::SocketIo => "performs blocking socket I/O",
            BlockKind::ChannelWait => "waits on a channel receive",
        }
    }
}

/// Classify a call site as a blocking entry point. Socket verbs are
/// name-based for the timeout-carrying calls (`connect_timeout`,
/// `read_exact`, `write_all`, `read_to_end`) and type-gated for the bare
/// `connect`/`accept` so `TcpStream::connect` counts but an iterator
/// adapter named `connect` does not.
pub fn blocking_kind(call: &CallSite) -> Option<BlockKind> {
    match call.name.as_str() {
        "sleep" => Some(BlockKind::Sleep),
        "connect_timeout" | "read_exact" | "write_all" | "read_to_end" => Some(BlockKind::SocketIo),
        "connect" | "accept" if matches!(&call.recv, Receiver::Typed(t) if t == "TcpStream" || t == "TcpListener") => {
            Some(BlockKind::SocketIo)
        }
        "recv" | "recv_timeout" => Some(BlockKind::ChannelWait),
        _ => None,
    }
}

/// The blocking blob-transfer verbs (S9's vocabulary).
pub const SHIP_FNS: &[&str] = &[
    "send_blob",
    "send_blob_routed",
    "fetch_blob",
    "fetch_blob_routed",
];

/// Result-producing swap-protocol verbs whose reachability a summary
/// records (the interprocedural face of S12's vocabulary).
const SWAP_RESULT_FNS: &[&str] = &[
    "send_blob",
    "send_blob_routed",
    "fetch_blob",
    "fetch_blob_routed",
    "drop_blob",
    "drop_blob_routed",
    "store_blob",
    "reload_cluster",
    "swap_out_cluster",
];

/// Whether a call site puts an envelope on a device actor's mailbox and
/// blocks for the reply: `Actor::call` by receiver type, or the
/// `ActorNet` dispatch shim by name.
pub fn is_mailbox_enqueue(call: &CallSite) -> bool {
    (call.name == "call" && matches!(&call.recv, Receiver::Typed(t) if t == "Actor"))
        || call.name == "actor_call"
}

/// What a function (transitively) does. Each map value / `Some` payload
/// is an example call chain to the effect — callee display names,
/// outermost first; an empty chain means the effect is in the function's
/// own body.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Lock families acquired.
    pub acquires: BTreeMap<String, Vec<String>>,
    /// Blocking operations reachable, by kind.
    pub blocking: BTreeMap<BlockKind, Vec<String>>,
    /// An obiwan-net blob transfer is reachable.
    pub ships: Option<Vec<String>>,
    /// A device-actor mailbox enqueue is reachable.
    pub enqueues_mailbox: Option<Vec<String>>,
    /// A Result-producing swap-protocol verb is reachable.
    pub swap_results: bool,
}

/// Display name used in chains: `Type::name` for methods, bare `name`
/// for free functions (stable across line renumbering, unlike spans).
pub fn display(ws: &Workspace, id: usize) -> String {
    let f = ws.func(id);
    match &f.impl_type {
        Some(t) => format!("{}::{}", t, f.name),
        None => f.name.clone(),
    }
}

/// Fuel for one SCC's fixpoint: `members × 4 + 4` rounds. The merge is
/// monotone, so `members × fact-kinds` rounds always suffice; the bound
/// exists so a modeling bug degrades to an under-approximation instead
/// of a hang.
fn scc_fuel(members: usize) -> usize {
    members * 4 + 4
}

/// Compute all summaries, bottom-up over the call graph's SCC order.
pub fn compute(ws: &Workspace, cg: &CallGraph) -> Vec<Summary> {
    let mut sums: Vec<Summary> = (0..ws.fns.len()).map(|id| base(ws, cg, id)).collect();
    for scc in &cg.sccs {
        for _round in 0..scc_fuel(scc.len()) {
            let mut changed = false;
            for &id in scc {
                for k in 0..cg.edges[id].len() {
                    let callee = cg.edges[id][k].callee;
                    if callee == id {
                        continue;
                    }
                    let from = sums[callee].clone();
                    let step = display(ws, callee);
                    changed |= absorb(&mut sums[id], &step, &from);
                }
            }
            if !changed {
                break;
            }
        }
    }
    sums
}

/// Direct facts from a function's own body. A blocking-shaped call that
/// *resolves* to a project function is not counted here — that callee's
/// own summary decides (so a virtual-clock `sleep` stays quiet while
/// `thread::sleep` counts).
fn base(ws: &Workspace, cg: &CallGraph, id: usize) -> Summary {
    let info = &ws.fns[id];
    let mut s = Summary::default();
    for ls in &info.locks {
        s.acquires.entry(ls.lock.clone()).or_default();
    }
    for (ci, c) in info.calls.iter().enumerate() {
        let resolved = cg.edges[id].iter().any(|e| e.call == ci);
        if !resolved {
            if let Some(kind) = blocking_kind(c) {
                s.blocking.entry(kind).or_default();
            }
        }
        if SHIP_FNS.contains(&c.name.as_str()) && s.ships.is_none() {
            s.ships = Some(Vec::new());
        }
        if is_mailbox_enqueue(c) && s.enqueues_mailbox.is_none() {
            s.enqueues_mailbox = Some(Vec::new());
        }
        if SWAP_RESULT_FNS.contains(&c.name.as_str()) {
            s.swap_results = true;
        }
    }
    s
}

/// Merge a callee's summary into a caller's, prefixing chains with the
/// callee's display name. Only absent facts are inserted — an existing
/// chain is never replaced, which is what makes the fixpoint monotone.
fn absorb(into: &mut Summary, step: &str, from: &Summary) -> bool {
    let chain = |tail: &[String]| {
        let mut c = Vec::with_capacity(tail.len() + 1);
        c.push(step.to_owned());
        c.extend(tail.iter().cloned());
        c
    };
    let mut changed = false;
    for (lock, tail) in &from.acquires {
        if !into.acquires.contains_key(lock) {
            into.acquires.insert(lock.clone(), chain(tail));
            changed = true;
        }
    }
    for (kind, tail) in &from.blocking {
        if !into.blocking.contains_key(kind) {
            into.blocking.insert(*kind, chain(tail));
            changed = true;
        }
    }
    if into.ships.is_none() {
        if let Some(tail) = &from.ships {
            into.ships = Some(chain(tail));
            changed = true;
        }
    }
    if into.enqueues_mailbox.is_none() {
        if let Some(tail) = &from.enqueues_mailbox {
            into.enqueues_mailbox = Some(chain(tail));
            changed = true;
        }
    }
    if !into.swap_results && from.swap_results {
        into.swap_results = true;
        changed = true;
    }
    changed
}
