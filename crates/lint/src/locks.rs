//! Flow-sensitive held-lock analysis: which guards are live at each
//! program point, computed as a may-analysis over the function's CFG.
//!
//! A linear extraction pass (mirroring the guard discipline in
//! [`crate::model::analyze_body`]) turns the body into per-token events —
//! a guard is *acquired* at its `lock_x(…)` / `.lock()` token and
//! *released* at `drop(guard)`, at the `}` closing its binding scope, or
//! at the `;`/`,` ending its statement when it is a temporary. The events
//! then flow forward over the CFG with set-union join, so a guard counts
//! as held at a point exactly when **some** path reaches it with the
//! guard still live — the right bias for deadlock and
//! held-across-blocking rules.

use crate::cfg::Cfg;
use crate::dataflow::{forward, SetUnion};
use crate::lexer::TokenKind;
use crate::model::{pair_keys, FileModel, Function, HeldLock, LockHelper};
use std::collections::{BTreeMap, BTreeSet};

/// One guard the analysis tracks.
#[derive(Debug, Clone)]
pub struct GuardInfo {
    /// Lock identity (family), e.g. `manager`.
    pub lock: String,
    /// Guard self-type head when the acquisition goes through a helper.
    pub guard_type: Option<String>,
    /// Normalized helper-call argument text (shard key); `None` for raw
    /// `.lock()` acquisitions.
    pub key: Option<String>,
    /// Binding name when `let`-bound (`None` for statement temporaries).
    pub bind: Option<String>,
    /// Acquiring token index (into the file's significant tokens).
    pub tok: usize,
    /// 1-based source line of the acquisition.
    pub line: u32,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    Acquire(usize),
    Release(usize),
}

/// The per-function result: guards, per-token events, and block in-facts.
#[derive(Debug)]
pub struct LockFlow {
    /// Guards in acquisition order; ids index this vector.
    pub guards: Vec<GuardInfo>,
    events: BTreeMap<usize, Vec<Event>>,
    facts: Vec<SetUnion<usize>>,
}

impl LockFlow {
    /// Run the analysis for `f` over its prebuilt `cfg`.
    pub fn build(file: &FileModel, f: &Function, helpers: &[LockHelper], cfg: &Cfg) -> LockFlow {
        let (guards, events) = extract_events(file, f, helpers);
        let facts = forward(cfg, SetUnion::default(), SetUnion::default(), |b, inf| {
            let mut out = inf.clone();
            for tok in cfg.tokens_of(b) {
                if let Some(evs) = events.get(&tok) {
                    for ev in evs {
                        apply(&mut out.0, *ev);
                    }
                }
            }
            out
        });
        LockFlow {
            guards,
            events,
            facts,
        }
    }

    /// Guard ids live just before token `tok` executes (strictly-before
    /// semantics: an acquisition does not hold its own guard).
    pub fn held_ids_at(&self, cfg: &Cfg, tok: usize) -> BTreeSet<usize> {
        let Some(b) = cfg.block_of(tok) else {
            return BTreeSet::new();
        };
        let mut set = self.facts[b].0.clone();
        for t in cfg.tokens_of(b) {
            if t == tok {
                break;
            }
            if let Some(evs) = self.events.get(&t) {
                for ev in evs {
                    apply(&mut set, *ev);
                }
            }
        }
        set
    }

    /// [`Self::held_ids_at`] projected through the guard table.
    pub fn held_at(&self, cfg: &Cfg, tok: usize) -> Vec<HeldLock> {
        self.held_ids_at(cfg, tok)
            .into_iter()
            .filter_map(|id| self.guards.get(id))
            .map(|g| HeldLock {
                lock: g.lock.clone(),
                key: g.key.clone(),
                guard_type: g.guard_type.clone(),
            })
            .collect()
    }

    /// An empty analysis (used for lock-helper bodies, which define
    /// rather than use their lock).
    pub fn empty(cfg: &Cfg) -> LockFlow {
        LockFlow {
            guards: Vec::new(),
            events: BTreeMap::new(),
            facts: vec![SetUnion::default(); cfg.len()],
        }
    }
}

fn apply(set: &mut BTreeSet<usize>, ev: Event) {
    match ev {
        Event::Acquire(id) => {
            set.insert(id);
        }
        Event::Release(id) => {
            set.remove(&id);
        }
    }
}

/// Methods that adapt a lock-guard result without consuming the guard
/// (kept in sync with `model::GUARD_ADAPTERS`).
const ADAPTERS: &[&str] = &[
    "map_err",
    "expect",
    "unwrap",
    "unwrap_or_else",
    "ok",
    "and_then",
    "map",
];

/// The linear pass: guards plus acquire/release events keyed by token.
#[allow(clippy::type_complexity)]
fn extract_events(
    file: &FileModel,
    f: &Function,
    helpers: &[LockHelper],
) -> (Vec<GuardInfo>, BTreeMap<usize, Vec<Event>>) {
    struct Active {
        id: usize,
        bind: Option<String>,
        depth: i32,
        temp: bool,
    }

    let sig = &file.sig;
    let body = f.body.clone();
    let mut guards: Vec<GuardInfo> = Vec::new();
    let mut events: BTreeMap<usize, Vec<Event>> = BTreeMap::new();
    let mut active: Vec<Active> = Vec::new();
    let helper_of = |name: &str| helpers.iter().find(|h| h.name == name);

    let mut depth = 0i32;
    let mut pdepth = 0i32;
    let mut stmt_start = body.start;
    // Brace depths of enclosing loop bodies: `continue`/`break` unwind
    // every scope inside the innermost one, releasing its guards on that
    // path (the back/exit edge bypasses the `}` release tokens).
    let mut loop_stack: Vec<i32> = Vec::new();
    let mut pending_loop = false;
    let release = |events: &mut BTreeMap<usize, Vec<Event>>,
                   active: &mut Vec<Active>,
                   at: usize,
                   dies: &dyn Fn(&Active) -> bool| {
        active.retain(|g| {
            if dies(g) {
                events.entry(at).or_default().push(Event::Release(g.id));
                false
            } else {
                true
            }
        });
    };

    let mut i = body.start;
    while i < body.end {
        let t = &sig[i];
        match t.text.as_str() {
            "loop" | "while" | "for" => pending_loop = true,
            "{" => {
                depth += 1;
                if pending_loop {
                    loop_stack.push(depth);
                    pending_loop = false;
                }
                stmt_start = i + 1;
            }
            "}" => {
                let d = depth;
                release(&mut events, &mut active, i, &|g| g.depth >= d || g.temp);
                if loop_stack.last() == Some(&depth) {
                    loop_stack.pop();
                }
                depth -= 1;
                stmt_start = i + 1;
            }
            "continue" | "break" => {
                // Path-local release: the jump edge unwinds these scopes,
                // but the fallthrough paths still hold the guards, so the
                // guard stays in `active` for its real scope-end `}`.
                if let Some(&ld) = loop_stack.last() {
                    for g in active.iter().filter(|g| g.depth >= ld || g.temp) {
                        events.entry(i).or_default().push(Event::Release(g.id));
                    }
                }
            }
            ";" if pdepth == 0 => {
                release(&mut events, &mut active, i, &|g| g.temp);
                stmt_start = i + 1;
            }
            "," if pdepth == 0 => {
                let d = depth;
                release(&mut events, &mut active, i, &|g| g.temp && g.depth == d);
            }
            "(" | "[" => pdepth += 1,
            ")" | "]" => pdepth -= 1,
            _ => {}
        }

        if t.is_ident("drop")
            && i + 3 < body.end
            && sig[i + 1].text == "("
            && sig[i + 3].text == ")"
        {
            let victim = sig[i + 2].text.clone();
            release(&mut events, &mut active, i, &|g| {
                g.bind.as_deref() == Some(victim.as_str())
            });
        }

        // Acquisition: helper call `lock_x(` or method call `x.lock()`.
        // A `lock_<family>_pair` helper yields two same-family guards with
        // the split trailing-argument keys (mirroring `analyze_body`).
        let acq = if t.kind == TokenKind::Ident
            && i + 1 < body.end
            && sig[i + 1].text == "("
            && (i == body.start || sig[i - 1].text != ".")
        {
            helper_of(&t.text).map(|h| {
                (
                    h.lock.clone(),
                    h.guard_type.clone(),
                    pair_keys(file, i + 1, body.end, h.pair),
                )
            })
        } else if t.text == "lock"
            && i >= 1
            && sig[i - 1].text == "."
            && i + 2 < body.end
            && sig[i + 1].text == "("
            && sig[i + 2].text == ")"
        {
            let id = (1..=3)
                .filter_map(|back| i.checked_sub(1 + back))
                .map(|j| &sig[j])
                .find(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone())
                .unwrap_or_else(|| "anonymous".to_owned());
            Some((id, None, vec![(None, None)]))
        } else {
            None
        };

        if let Some((lock, guard_type, keys)) = acq {
            // Binding discipline mirrors `analyze_body`: `let`-bound only
            // when the statement is `let [mut] NAME = <acq>(…)?*;` with
            // nothing but `?`s and result adapters chained after. A pair
            // helper binds through a tuple pattern: its last two idents.
            let mut binds: Vec<Option<String>> = vec![None; keys.len()];
            let st = &sig[stmt_start..i.min(body.end)];
            if st.first().is_some_and(|t| t.text == "let") {
                // Binding names live in the pattern, strictly before `=`.
                let eq = st.iter().position(|t| t.text == "=").unwrap_or(st.len());
                let mut names = st[..eq]
                    .iter()
                    .rev()
                    .filter(|t| t.kind == TokenKind::Ident && t.text != "mut" && t.text != "ref");
                // `let g = match <acq>(…) { … };` binds too: the match arms
                // adapt the acquisition result in place.
                let in_match = st.iter().any(|t| t.text == "match");
                let close = file.match_paren(i + 1, body.end);
                let mut k = close + 1;
                loop {
                    while k < body.end && sig[k].text == "?" {
                        k += 1;
                    }
                    if k + 2 < body.end
                        && sig[k].text == "."
                        && ADAPTERS.contains(&sig[k + 1].text.as_str())
                        && sig[k + 2].text == "("
                    {
                        k = file.match_paren(k + 2, body.end) + 1;
                        continue;
                    }
                    if in_match && k < body.end && sig[k].text == "{" {
                        k = file.match_brace(k, body.end) + 1;
                        continue;
                    }
                    break;
                }
                if k < body.end && sig[k].text == ";" {
                    for b in binds.iter_mut().rev() {
                        *b = names.next().map(|t| t.text.clone());
                    }
                }
            }
            for (n, ((key, _), bind)) in keys.into_iter().zip(binds).enumerate() {
                let id = guards.len();
                guards.push(GuardInfo {
                    lock: lock.clone(),
                    guard_type: guard_type.clone(),
                    key,
                    bind: bind.clone(),
                    // The second pair guard acquires on the `(` token so
                    // the flow sees the first one held at its own site.
                    tok: i + n,
                    line: t.line,
                });
                events.entry(i + n).or_default().push(Event::Acquire(id));
                active.push(Active {
                    id,
                    bind,
                    depth,
                    temp: guards[id].bind.is_none(),
                });
            }
        }
        i += 1;
    }
    (guards, events)
}
