//! A hand-rolled, lossless Rust lexer.
//!
//! Same philosophy as `obiwan_trace::json`'s recursive-descent parser:
//! no external crates, byte-oriented, and total — every input produces a
//! token stream, never a panic. The stream is *lossless*: concatenating
//! the spans of all tokens reproduces the input byte-for-byte (the
//! property tests rely on this), so rule code can always recover exact
//! excerpts and line numbers.
//!
//! The lexer understands exactly as much Rust as the S1–S12 rules need:
//! string/char/lifetime literals (so `"lock_manager("` inside a string is
//! not an acquisition site), nested block comments, doc comments, raw
//! strings and raw identifiers, and compound operators such as `::` and
//! `+=` that the source model keys on.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Horizontal and vertical whitespace.
    Whitespace,
    /// `// …` (including `///` and `//!` doc comments).
    LineComment,
    /// `/* … */`, nesting-aware; unterminated comments extend to EOF.
    BlockComment,
    /// Identifiers and keywords, including raw identifiers (`r#fn`).
    Ident,
    /// Integer and float literals (approximate: digits plus suffix glue).
    Number,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// A character literal `'x'` (escapes included).
    Char,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// Punctuation, possibly compound (`::`, `->`, `+=`, `..=`, …).
    Punct,
    /// A byte the lexer has no rule for (stray `\u{…}` fragments and the
    /// like); one byte long, preserved for losslessness.
    Unknown,
}

/// One lexed token: kind plus byte span plus 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What this token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of the first byte.
    pub line: u32,
}

impl Token {
    /// The token's text within `src`.
    ///
    /// Spans are always produced on byte boundaries of `src`; slicing can
    /// still panic for a span from a *different* source, which is a caller
    /// bug. Rule code always pairs tokens with the source they came from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Compound operators recognized as single `Punct` tokens, longest first.
const COMPOUND: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "&&", "||", "..", "<<", ">>",
];

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a lossless token stream.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
}

impl<'s> Lexer<'s> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let kind = self.next_kind();
            debug_assert!(self.pos > start, "lexer must always make progress");
            if self.pos == start {
                // Defensive: never loop forever, even if a case forgets to
                // advance.
                self.bump();
            }
            out.push(Token {
                kind,
                start,
                end: self.pos,
                line,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if let Some(b) = self.src.get(self.pos) {
            if *b == b'\n' {
                self.line += 1;
            }
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let Some(b) = self.peek(0) else {
            return TokenKind::Unknown;
        };
        match b {
            b if b.is_ascii_whitespace() => {
                while self.peek(0).is_some_and(|c| c.is_ascii_whitespace()) {
                    self.bump();
                }
                TokenKind::Whitespace
            }
            b'/' if self.peek(1) == Some(b'/') => {
                while self.peek(0).is_some_and(|c| c != b'\n') {
                    self.bump();
                }
                TokenKind::LineComment
            }
            b'/' if self.peek(1) == Some(b'*') => {
                self.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 && self.peek(0).is_some() {
                    if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                        depth += 1;
                        self.bump_n(2);
                    } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                        depth -= 1;
                        self.bump_n(2);
                    } else {
                        self.bump();
                    }
                }
                TokenKind::BlockComment
            }
            b'"' => self.string_body(),
            b'\'' => self.char_or_lifetime(),
            b if b.is_ascii_digit() => {
                // Digits plus ident-glue (covers 0xff, 1_000u64, 1e9); a
                // `.` is consumed only when followed by a digit so range
                // expressions like `0..n` stay three tokens.
                self.bump();
                loop {
                    match self.peek(0) {
                        Some(c) if is_ident_continue(c) => self.bump(),
                        Some(b'.') if self.peek(1).is_some_and(|c| c.is_ascii_digit()) => {
                            self.bump();
                        }
                        _ => break,
                    }
                }
                TokenKind::Number
            }
            b if is_ident_start(b) => {
                // Raw strings / byte strings / raw idents first: r" r#" b" br" c" r#ident
                if let Some(k) = self.try_prefixed_literal() {
                    return k;
                }
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokenKind::Ident
            }
            _ => {
                for op in COMPOUND {
                    let bytes = op.as_bytes();
                    if self.src[self.pos..].starts_with(bytes) {
                        self.bump_n(bytes.len());
                        return TokenKind::Punct;
                    }
                }
                self.bump();
                if b.is_ascii_punctuation() {
                    TokenKind::Punct
                } else {
                    TokenKind::Unknown
                }
            }
        }
    }

    /// `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `c"…"`, `r#ident`.
    /// Returns `None` when the ident at `pos` is just an ident.
    fn try_prefixed_literal(&mut self) -> Option<TokenKind> {
        let rest = &self.src[self.pos..];
        let prefix_len = match rest {
            [b'r', b'#', c, ..] if is_ident_start(*c) => {
                // Raw identifier r#fn.
                self.bump_n(2);
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                return Some(TokenKind::Ident);
            }
            [b'b', b'r', b'"' | b'#', ..] => 2,
            [b'b' | b'c', b'"', ..] => 1,
            [b'r', b'"' | b'#', ..] => 1,
            _ => return None,
        };
        // Count hashes after the prefix.
        let mut hashes = 0usize;
        while rest.get(prefix_len + hashes) == Some(&b'#') {
            hashes += 1;
        }
        if rest.get(prefix_len + hashes) != Some(&b'"') {
            return None; // `b#foo` or similar — not a literal.
        }
        let raw = rest.first() == Some(&b'r') || rest.get(1) == Some(&b'r');
        self.bump_n(prefix_len + hashes + 1);
        if raw {
            // Scan for `"` followed by `hashes` hashes; no escapes.
            'scan: while let Some(c) = self.peek(0) {
                if c == b'"' {
                    for h in 0..hashes {
                        if self.peek(1 + h) != Some(b'#') {
                            self.bump();
                            continue 'scan;
                        }
                    }
                    self.bump_n(1 + hashes);
                    return Some(TokenKind::Str);
                }
                self.bump();
            }
            Some(TokenKind::Str) // unterminated: runs to EOF
        } else {
            Some(self.cooked_string_tail())
        }
    }

    /// Body of a cooked (escape-aware) string, starting at the opening `"`.
    fn string_body(&mut self) -> TokenKind {
        self.bump(); // opening quote
        self.cooked_string_tail()
    }

    /// Consume until an unescaped `"` (or EOF).
    fn cooked_string_tail(&mut self) -> TokenKind {
        while let Some(c) = self.peek(0) {
            match c {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    return TokenKind::Str;
                }
                _ => self.bump(),
            }
        }
        TokenKind::Str
    }

    fn char_or_lifetime(&mut self) -> TokenKind {
        // 'a  | 'static        → lifetime (ident after quote, no closing ')
        // 'x' | '\n' | '\u{…}' → char literal
        match (self.peek(1), self.peek(2)) {
            (Some(c), close) if is_ident_start(c) && close != Some(b'\'') => {
                // Lifetime: quote + ident run ('a in <'a, T> even when
                // followed by more ident chars).
                self.bump_n(2);
                while self.peek(0).is_some_and(is_ident_continue) {
                    self.bump();
                }
                TokenKind::Lifetime
            }
            _ => {
                self.bump(); // opening quote
                while let Some(c) = self.peek(0) {
                    match c {
                        b'\\' => self.bump_n(2),
                        b'\'' => {
                            self.bump();
                            return TokenKind::Char;
                        }
                        // A char literal never spans a line; bail so a
                        // stray quote cannot swallow the rest of the file.
                        b'\n' => return TokenKind::Char,
                        _ => self.bump(),
                    }
                }
                TokenKind::Char
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (t.kind, t.text(src)))
            .collect()
    }

    #[test]
    fn roundtrip_is_lossless() {
        let src = "fn f(x: &mut T) -> u8 { x.y[0] += 1; \"s\\\"tr\" }\n// c\n/* /*n*/ */";
        let toks = lex(src);
        let mut rebuilt = String::new();
        for t in &toks {
            rebuilt.push_str(t.text(src));
        }
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn strings_and_comments_hide_contents() {
        let src = r##"let a = "lock_manager("; // lock_net(
let b = r#"drop_blob("#; /* unwrap() */"##;
        let found: Vec<_> = kinds(src)
            .into_iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s)
            .collect();
        assert_eq!(found, vec!["let", "a", "let", "b"]);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src = "<'a, 'static> 'x' '\\n'";
        let ks = kinds(src);
        let lifetimes: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .collect();
        let chars: Vec<_> = ks.iter().filter(|(k, _)| *k == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert_eq!(chars.len(), 2);
    }

    #[test]
    fn compound_punct() {
        let ks = kinds("a::b += c..=d -> e");
        let puncts: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(puncts, vec!["::", "+=", "..=", "->"]);
    }

    #[test]
    fn line_numbers() {
        let src = "a\nb\n  c";
        let idents: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.line)
            .collect();
        assert_eq!(idents, vec![1, 2, 3]);
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* nope", "'x", "b\"", "1_000_", "#"] {
            let toks = lex(src);
            let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
            assert_eq!(rebuilt, src);
        }
    }
}
