//! `obiwan-lint` CLI.
//!
//! ```text
//! obiwan-lint [--deny] [--json] [--allow <rule>]... [--baseline <file>]
//!             [--stats] [--budget-ms <n>] [PATH]
//! ```
//!
//! With no `PATH`, lints the enclosing workspace (found by walking up from
//! the current directory to the first `Cargo.toml` containing
//! `[workspace]`). `--baseline` takes a previous `--json` report and
//! suppresses the findings recorded in it, so CI gates on regressions
//! only. `--stats` prints per-phase/per-rule wall-clock timing, and
//! `--budget-ms` turns the total into a gate. Exit codes: `0` clean (or
//! violations without `--deny`), `1` violations under `--deny`, `2` usage
//! or I/O error, `3` wall-clock budget exceeded.

use obiwan_lint::{lint_root_timed, LintViolation, Rule, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    deny: bool,
    json: bool,
    stats: bool,
    budget_ms: Option<u64>,
    allow: Vec<Rule>,
    baseline: Option<PathBuf>,
    path: Option<PathBuf>,
}

fn usage() -> String {
    let rules: Vec<String> = ALL_RULES
        .into_iter()
        .map(|r| format!("  {:<3} {}", r.id(), r.name()))
        .collect();
    format!(
        "usage: obiwan-lint [--deny] [--json] [--allow <rule>]... [--baseline <file>]\n\
         \x20                  [--stats] [--budget-ms <n>] [PATH]\n\
         \n\
         --deny             exit 1 if any violation is found\n\
         --json             emit violations as a JSON array\n\
         --allow <rule>     disable a rule by id or name (repeatable)\n\
         --baseline <file>  suppress findings present in a previous --json report\n\
         --stats            print per-phase and per-rule wall-clock timing\n\
         --budget-ms <n>    exit 3 if the whole run takes longer than n ms\n\
         PATH               tree to lint (default: enclosing workspace root)\n\
         \n\
         rules:\n{}",
        rules.join("\n")
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: false,
        stats: false,
        budget_ms: None,
        allow: Vec::new(),
        baseline: None,
        path: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--stats" => opts.stats = true,
            "--budget-ms" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--budget-ms needs a millisecond count".to_owned())?;
                let ms = v
                    .parse::<u64>()
                    .map_err(|_| format!("--budget-ms: `{v}` is not a number"))?;
                opts.budget_ms = Some(ms);
            }
            "--allow" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--allow needs a rule id or name".to_owned())?;
                let rule = Rule::parse(v)
                    .ok_or_else(|| format!("unknown rule `{v}` (try S1..S15 or a rule name)"))?;
                opts.allow.push(rule);
            }
            "--baseline" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--baseline needs a file path".to_owned())?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(usage()),
            _ if a.starts_with('-') => {
                return Err(format!("unknown flag `{a}`\n\n{}", usage()));
            }
            _ => {
                if opts.path.is_some() {
                    return Err(format!("more than one PATH given\n\n{}", usage()));
                }
                opts.path = Some(PathBuf::from(a));
            }
        }
    }
    Ok(opts)
}

/// A baseline entry: (rule id, file, excerpt, chain). Matching on the
/// excerpt rather than the line number keeps unrelated edits (which shift
/// lines) from resurrecting suppressed findings; the chain (when the
/// report recorded one — `None` for pre-chain reports) distinguishes
/// same-excerpt findings reached through different call paths.
struct BaselineKey {
    rule: String,
    file: String,
    excerpt: String,
    chain: Option<Vec<String>>,
}

/// Split a JSON array's text into its top-level objects, tracking string
/// boundaries so a `{` or `}` inside an excerpt does not sever an object
/// (most lint excerpts end in `{`).
fn split_objects(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_str = false;
    let mut esc = false;
    for (i, c) in text.char_indices() {
        if in_str {
            if esc {
                esc = false;
            } else if c == '\\' {
                esc = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                if depth == 0 {
                    start = i;
                }
                depth += 1;
            }
            '}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    out.push(&text[start..=i]);
                }
            }
            _ => {}
        }
    }
    out
}

/// Extract baseline keys from a previous `--json` report with the same
/// zero-dependency discipline as the encoder: pull the `rule`, `file`,
/// `excerpt` and `chain` fields out of each object, in order.
fn parse_baseline(text: &str) -> Vec<BaselineKey> {
    let mut out = Vec::new();
    for obj in split_objects(text) {
        let rule = json_str_field(obj, "rule");
        let file = json_str_field(obj, "file");
        let excerpt = json_str_field(obj, "excerpt");
        if let (Some(rule), Some(file), Some(excerpt)) = (rule, file, excerpt) {
            out.push(BaselineKey {
                rule,
                file,
                excerpt,
                chain: json_str_array(obj, "chain"),
            });
        }
    }
    out
}

/// The (unescaped) value of `"name":"…"` inside one JSON object's text.
fn json_str_field(obj: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":\"");
    let start = obj.find(&marker)? + marker.len();
    json_string_at(&obj[start..]).map(|(s, _)| s)
}

/// The `"name":[…]` string-array field inside one JSON object's text;
/// `None` when the field is absent (pre-chain baseline reports).
fn json_str_array(obj: &str, name: &str) -> Option<Vec<String>> {
    let marker = format!("\"{name}\":[");
    let start = obj.find(&marker)? + marker.len();
    let mut rest = &obj[start..];
    let mut items = Vec::new();
    loop {
        rest = rest.trim_start_matches([',', ' ']);
        if rest.starts_with(']') {
            return Some(items);
        }
        let body = rest.strip_prefix('"')?;
        let (s, used) = json_string_at(body)?;
        items.push(s);
        rest = &body[used..];
    }
}

/// Decode a JSON string body starting *after* the opening quote; returns
/// the value and the byte length consumed including the closing quote.
fn json_string_at(body: &str) -> Option<(String, usize)> {
    let mut out = String::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => return Some((out, i + 1)),
            '\\' => match chars.next()?.1 {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).map(|(_, c)| c).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn in_baseline(v: &LintViolation, baseline: &[BaselineKey]) -> bool {
    baseline.iter().any(|k| {
        k.rule == v.rule.id()
            && k.file == v.file
            && k.excerpt == v.excerpt
            && k.chain.as_ref().is_none_or(|c| *c == v.chain)
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.path.clone().or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("obiwan-lint: no PATH given and no enclosing workspace found");
            return ExitCode::from(2);
        }
    };
    let baseline = match &opts.baseline {
        None => Vec::new(),
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => parse_baseline(&text),
            Err(e) => {
                eprintln!("obiwan-lint: --baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
    };
    let (mut violations, stats) = match lint_root_timed(&root, &opts.allow) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obiwan-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let total = violations.len();
    violations.retain(|v| !in_baseline(v, &baseline));
    let suppressed = total - violations.len();
    if opts.json {
        let items: Vec<String> = violations
            .iter()
            .map(|v| format!("  {}", v.to_json()))
            .collect();
        println!("[\n{}\n]", items.join(",\n"));
    } else {
        for v in &violations {
            println!("{v}\n");
        }
        let files: std::collections::BTreeSet<&str> =
            violations.iter().map(|v| v.file.as_str()).collect();
        let note = if suppressed > 0 {
            format!(" ({suppressed} baseline finding(s) suppressed)")
        } else {
            String::new()
        };
        println!(
            "obiwan-lint: {} violation(s) in {} file(s) under {}{note}",
            violations.len(),
            files.len(),
            root.display()
        );
    }
    if opts.stats {
        eprintln!("{stats}");
    }
    if let Some(budget) = opts.budget_ms {
        let took = stats.total.as_millis();
        if took > u128::from(budget) {
            eprintln!("obiwan-lint: run took {took} ms, over the --budget-ms {budget} gate");
            return ExitCode::from(3);
        }
    }
    if opts.deny && !violations.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
