//! `obiwan-lint` CLI.
//!
//! ```text
//! obiwan-lint [--deny] [--json] [--allow <rule>]... [--baseline <file>] [PATH]
//! ```
//!
//! With no `PATH`, lints the enclosing workspace (found by walking up from
//! the current directory to the first `Cargo.toml` containing
//! `[workspace]`). `--baseline` takes a previous `--json` report and
//! suppresses the findings recorded in it, so CI gates on regressions
//! only. Exit codes: `0` clean (or violations without `--deny`), `1`
//! violations under `--deny`, `2` usage or I/O error.

use obiwan_lint::{lint_root, LintViolation, Rule, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    deny: bool,
    json: bool,
    allow: Vec<Rule>,
    baseline: Option<PathBuf>,
    path: Option<PathBuf>,
}

fn usage() -> String {
    let rules: Vec<String> = ALL_RULES
        .into_iter()
        .map(|r| format!("  {:<3} {}", r.id(), r.name()))
        .collect();
    format!(
        "usage: obiwan-lint [--deny] [--json] [--allow <rule>]... [--baseline <file>] [PATH]\n\
         \n\
         --deny             exit 1 if any violation is found\n\
         --json             emit violations as a JSON array\n\
         --allow <rule>     disable a rule by id or name (repeatable)\n\
         --baseline <file>  suppress findings present in a previous --json report\n\
         PATH               tree to lint (default: enclosing workspace root)\n\
         \n\
         rules:\n{}",
        rules.join("\n")
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: false,
        allow: Vec::new(),
        baseline: None,
        path: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--allow" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--allow needs a rule id or name".to_owned())?;
                let rule = Rule::parse(v)
                    .ok_or_else(|| format!("unknown rule `{v}` (try S1..S12 or a rule name)"))?;
                opts.allow.push(rule);
            }
            "--baseline" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--baseline needs a file path".to_owned())?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(usage()),
            _ if a.starts_with('-') => {
                return Err(format!("unknown flag `{a}`\n\n{}", usage()));
            }
            _ => {
                if opts.path.is_some() {
                    return Err(format!("more than one PATH given\n\n{}", usage()));
                }
                opts.path = Some(PathBuf::from(a));
            }
        }
    }
    Ok(opts)
}

/// A baseline entry: (rule id, file, excerpt). Matching on the excerpt
/// rather than the line number keeps unrelated edits (which shift lines)
/// from resurrecting suppressed findings.
type BaselineKey = (String, String, String);

/// Extract baseline keys from a previous `--json` report with the same
/// zero-dependency discipline as the encoder: pull the `rule`, `file` and
/// `excerpt` string fields out of each object, in order.
fn parse_baseline(text: &str) -> Vec<BaselineKey> {
    let mut out = Vec::new();
    for obj in text.split('{').skip(1) {
        let rule = json_str_field(obj, "rule");
        let file = json_str_field(obj, "file");
        let excerpt = json_str_field(obj, "excerpt");
        if let (Some(r), Some(f), Some(e)) = (rule, file, excerpt) {
            out.push((r, f, e));
        }
    }
    out
}

/// The (unescaped) value of `"name":"…"` inside one JSON object's text.
fn json_str_field(obj: &str, name: &str) -> Option<String> {
    let marker = format!("\"{name}\":\"");
    let start = obj.find(&marker)? + marker.len();
    let rest = &obj[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

fn in_baseline(v: &LintViolation, baseline: &[BaselineKey]) -> bool {
    baseline
        .iter()
        .any(|(r, f, e)| r == v.rule.id() && f == &v.file && e == &v.excerpt)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.path.clone().or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("obiwan-lint: no PATH given and no enclosing workspace found");
            return ExitCode::from(2);
        }
    };
    let baseline = match &opts.baseline {
        None => Vec::new(),
        Some(p) => match std::fs::read_to_string(p) {
            Ok(text) => parse_baseline(&text),
            Err(e) => {
                eprintln!("obiwan-lint: --baseline {}: {e}", p.display());
                return ExitCode::from(2);
            }
        },
    };
    let mut violations = match lint_root(&root, &opts.allow) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obiwan-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let total = violations.len();
    violations.retain(|v| !in_baseline(v, &baseline));
    let suppressed = total - violations.len();
    if opts.json {
        let items: Vec<String> = violations
            .iter()
            .map(|v| format!("  {}", v.to_json()))
            .collect();
        println!("[\n{}\n]", items.join(",\n"));
    } else {
        for v in &violations {
            println!("{v}\n");
        }
        let files: std::collections::BTreeSet<&str> =
            violations.iter().map(|v| v.file.as_str()).collect();
        let note = if suppressed > 0 {
            format!(" ({suppressed} baseline finding(s) suppressed)")
        } else {
            String::new()
        };
        println!(
            "obiwan-lint: {} violation(s) in {} file(s) under {}{note}",
            violations.len(),
            files.len(),
            root.display()
        );
    }
    if opts.deny && !violations.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
