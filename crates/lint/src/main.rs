//! `obiwan-lint` CLI.
//!
//! ```text
//! obiwan-lint [--deny] [--json] [--allow <rule>]... [PATH]
//! ```
//!
//! With no `PATH`, lints the enclosing workspace (found by walking up from
//! the current directory to the first `Cargo.toml` containing
//! `[workspace]`). Exit codes: `0` clean (or violations without `--deny`),
//! `1` violations under `--deny`, `2` usage or I/O error.

use obiwan_lint::{lint_root, Rule, ALL_RULES};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    deny: bool,
    json: bool,
    allow: Vec<Rule>,
    path: Option<PathBuf>,
}

fn usage() -> String {
    let rules: Vec<String> = ALL_RULES
        .into_iter()
        .map(|r| format!("  {:<3} {}", r.id(), r.name()))
        .collect();
    format!(
        "usage: obiwan-lint [--deny] [--json] [--allow <rule>]... [PATH]\n\
         \n\
         --deny          exit 1 if any violation is found\n\
         --json          emit violations as a JSON array\n\
         --allow <rule>  disable a rule by id or name (repeatable)\n\
         PATH            tree to lint (default: enclosing workspace root)\n\
         \n\
         rules:\n{}",
        rules.join("\n")
    )
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        deny: false,
        json: false,
        allow: Vec::new(),
        path: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--allow" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--allow needs a rule id or name".to_owned())?;
                let rule = Rule::parse(v)
                    .ok_or_else(|| format!("unknown rule `{v}` (try S1..S8 or a rule name)"))?;
                opts.allow.push(rule);
            }
            "--help" | "-h" => return Err(usage()),
            _ if a.starts_with('-') => {
                return Err(format!("unknown flag `{a}`\n\n{}", usage()));
            }
            _ => {
                if opts.path.is_some() {
                    return Err(format!("more than one PATH given\n\n{}", usage()));
                }
                opts.path = Some(PathBuf::from(a));
            }
        }
    }
    Ok(opts)
}

/// Walk up from the current directory to the first `Cargo.toml` declaring
/// a `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let root = match opts.path.clone().or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("obiwan-lint: no PATH given and no enclosing workspace found");
            return ExitCode::from(2);
        }
    };
    let violations = match lint_root(&root, &opts.allow) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("obiwan-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    if opts.json {
        let items: Vec<String> = violations
            .iter()
            .map(|v| format!("  {}", v.to_json()))
            .collect();
        println!("[\n{}\n]", items.join(",\n"));
    } else {
        for v in &violations {
            println!("{v}\n");
        }
        let files: std::collections::BTreeSet<&str> =
            violations.iter().map(|v| v.file.as_str()).collect();
        println!(
            "obiwan-lint: {} violation(s) in {} file(s) under {}",
            violations.len(),
            files.len(),
            root.display()
        );
    }
    if opts.deny && !violations.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
