//! Generic forward dataflow over a [`Cfg`]: a worklist fixpoint for
//! join-semilattices.
//!
//! The framework is deliberately tiny — one trait, one driver — because
//! every flow rule (held locks for S1/S9/S11, pending Results for S12)
//! is a set-valued may-analysis: facts only grow along joins, so the
//! worklist reaches a fixpoint in at most `height × blocks` relaxations.
//! A fuel counter bounds the loop anyway, so termination holds even for
//! a non-monotone transfer function handed in by a test.

use crate::cfg::{Cfg, EdgeKind};
use std::collections::VecDeque;

/// A join-semilattice fact. `join` folds `other` into `self` and reports
/// whether `self` changed — the driver re-queues a block only on change.
pub trait JoinLattice: Clone {
    /// Least upper bound, in place; `true` when `self` grew.
    fn join(&mut self, other: &Self) -> bool;
}

/// Union-of-sets lattice (the may-analysis workhorse).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SetUnion<T: Ord + Clone>(pub std::collections::BTreeSet<T>);

impl<T: Ord + Clone> JoinLattice for SetUnion<T> {
    fn join(&mut self, other: &Self) -> bool {
        let before = self.0.len();
        self.0.extend(other.0.iter().cloned());
        self.0.len() != before
    }
}

/// Forward fixpoint: returns the in-fact of every block.
///
/// `entry` seeds the entry block, `bottom` every other block, and
/// `transfer(block, in_fact)` produces the block's out-fact. All edge
/// kinds propagate.
pub fn forward<L, F>(cfg: &Cfg, entry: L, bottom: L, transfer: F) -> Vec<L>
where
    L: JoinLattice,
    F: Fn(usize, &L) -> L,
{
    forward_filtered(cfg, entry, bottom, transfer, |_| true)
}

/// [`forward`], propagating only along edges whose kind passes `keep`
/// (S12 drops [`EdgeKind::Question`] so idiomatic `?` early-exits do not
/// count as discards).
pub fn forward_filtered<L, F, K>(cfg: &Cfg, entry: L, bottom: L, transfer: F, keep: K) -> Vec<L>
where
    L: JoinLattice,
    F: Fn(usize, &L) -> L,
    K: Fn(EdgeKind) -> bool,
{
    let n = cfg.len();
    let mut facts: Vec<L> = vec![bottom; n];
    if n == 0 {
        return facts;
    }
    facts[cfg.entry] = entry;
    let mut work: VecDeque<usize> = (0..n).collect();
    let mut queued = vec![true; n];
    // Fuel: generous for any monotone analysis on these graphs; bounds
    // the loop unconditionally (property-tested with hostile transfers).
    let mut fuel = n.saturating_mul(256).saturating_add(4096);
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        if fuel == 0 {
            break;
        }
        fuel -= 1;
        let out = transfer(b, &facts[b]);
        for &(s, kind) in &cfg.succs[b] {
            if !keep(kind) {
                continue;
            }
            if facts[s].join(&out) && !queued[s] {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }
    facts
}
