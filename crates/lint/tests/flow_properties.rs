//! Property tests for the flow machinery: CFG construction is total on
//! arbitrary token streams (and its invariants hold on whatever comes
//! out), the dataflow worklist terminates on random graphs even when
//! handed a hostile, non-monotone transfer function, call-graph
//! construction is total on token soup, and the summary fixpoint is
//! deterministic and fuel-terminating on random recursive call graphs.

// Tests assert on known-good setups; panicking on failure is the point.
#![allow(clippy::disallowed_methods)]

use obiwan_lint::callgraph::CallGraph;
use obiwan_lint::cfg::Cfg;
use obiwan_lint::dataflow::{forward, forward_filtered, JoinLattice, SetUnion};
use obiwan_lint::model::FileModel;
use obiwan_lint::rules::Workspace;
use obiwan_lint::summaries;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A hostile "lattice" whose join always reports growth, so a worklist
/// without a fuel bound would spin forever on any cyclic graph.
#[derive(Debug, Clone, Default)]
struct NeverStable(u64);

impl JoinLattice for NeverStable {
    fn join(&mut self, other: &Self) -> bool {
        self.0 = self.0.wrapping_add(other.0).wrapping_add(1);
        true
    }
}

/// Build a CFG over every function body (and the whole token stream) of
/// `src` and check the structural invariants the rules rely on.
fn assert_cfg_wellformed(src: &str) {
    let m = FileModel::parse("fuzz.rs".into(), "fuzz".into(), src.to_string());
    let mut ranges: Vec<std::ops::Range<usize>> =
        m.functions.iter().map(|f| f.body.clone()).collect();
    ranges.push(0..m.sig.len());
    // Out-of-range inputs must clamp, not panic.
    ranges.push(3..m.sig.len().saturating_add(7));
    for range in ranges {
        let cfg = Cfg::build(&m.sig, range.clone());
        assert!(!cfg.is_empty(), "built graphs always have blocks");
        assert_eq!(cfg.exit, 0, "exit is block 0 by construction");
        assert_eq!(cfg.entry, 1, "entry is block 1 by construction");
        assert!(
            cfg.blocks[cfg.exit].spans.is_empty(),
            "exit holds no tokens"
        );
        let lo = range.start.min(m.sig.len());
        let hi = range.end.min(m.sig.len()).max(lo);
        let mut seen = BTreeSet::new();
        for b in 0..cfg.len() {
            for span in &cfg.blocks[b].spans {
                assert!(span.start <= span.end, "negative span in block {b}");
                for tok in span.clone() {
                    assert!(
                        (lo..hi).contains(&tok),
                        "block {b} owns token {tok} outside {lo}..{hi}"
                    );
                    assert!(seen.insert(tok), "token {tok} owned by two spans");
                    assert_eq!(cfg.block_of(tok), Some(b), "owner map disagrees");
                }
            }
            for &(succ, _) in &cfg.succs[b] {
                assert!(succ < cfg.len(), "edge {b}->{succ} out of range");
            }
        }
    }
}

/// Rust-ish control-flow fragments: every shape the builder recognizes,
/// plus the malformed edges it must degrade through.
fn fragments() -> Vec<&'static str> {
    vec![
        "fn f() { ",
        "}",
        "if a { b(); } else { c(); }",
        "if a { b(); }",
        "else",
        "match x { Some(v) => v, None => 0, }",
        "match x { _ => { y(); } }",
        "loop { tick(); }",
        "while going { step()?; }",
        "for i in 0..n { sum += i; }",
        "return Err(e);",
        "break 'outer;",
        "continue;",
        "let g = lock_manager();",
        "net.send_blob(d, &key, bytes)?;",
        "? ? ?",
        "{ } { {",
        "match {",
        "if",
        "=> , ;",
        "loop while for",
        "x += 1;",
    ]
}

/// Build a call graph over `src` and check the structural invariants the
/// interprocedural rules rely on: edges stay in range, the SCCs
/// partition the function set, and the SCC order is callees-first.
fn assert_callgraph_wellformed(src: &str) {
    let m = FileModel::parse("fuzz.rs".into(), "fuzz".into(), src.to_string());
    let ws = Workspace::build(vec![m]);
    let cg = CallGraph::build(&ws);
    assert_eq!(cg.edges.len(), ws.fns.len(), "one edge list per fn");
    assert_eq!(cg.scc_of.len(), ws.fns.len(), "one SCC index per fn");
    let mut seen = vec![false; ws.fns.len()];
    for (n, scc) in cg.sccs.iter().enumerate() {
        assert!(!scc.is_empty(), "empty SCC {n}");
        for &id in scc {
            assert!(id < ws.fns.len(), "SCC member {id} out of range");
            assert!(!seen[id], "fn {id} appears in two SCCs");
            seen[id] = true;
            assert_eq!(cg.scc_of[id], n, "scc_of disagrees for fn {id}");
        }
    }
    assert!(seen.iter().all(|&s| s), "every fn belongs to some SCC");
    for (id, out) in cg.edges.iter().enumerate() {
        for e in out {
            assert!(e.callee < ws.fns.len(), "callee out of range");
            assert!(e.call < ws.fns[id].calls.len(), "call index out of range");
            assert!(
                cg.scc_of[e.callee] <= cg.scc_of[id],
                "edge {id}->{} breaks the callees-first SCC order",
                e.callee
            );
        }
    }
}

/// A synthetic workspace of `n` free functions with a random call matrix
/// and random per-function effects, shaped so calls resolve through the
/// unique-free-function discipline (every `f{i}` is defined exactly once).
fn synthetic_workspace_src(n: usize, calls: &[(usize, usize)], effects: &[usize]) -> String {
    let mut src = String::from(
        "use std::sync::{Mutex, MutexGuard, OnceLock};\n\
         pub struct Manager { pub epoch: u32 }\n\
         fn manager_cell() -> &'static Mutex<Manager> {\n\
             static CELL: OnceLock<Mutex<Manager>> = OnceLock::new();\n\
             CELL.get_or_init(|| Mutex::new(Manager { epoch: 0 }))\n\
         }\n\
         pub fn lock_manager() -> MutexGuard<'static, Manager> {\n\
             manager_cell().lock().expect(\"poisoned\")\n\
         }\n",
    );
    for id in 0..n {
        src.push_str(&format!("fn f{id}() {{\n"));
        match effects.get(id).copied().unwrap_or(0) % 4 {
            1 => src.push_str("    std::thread::sleep(std::time::Duration::from_micros(1));\n"),
            2 => src.push_str("    let _g = lock_manager();\n"),
            3 => src.push_str("    actor_call();\n"),
            _ => {}
        }
        for &(_, target) in calls.iter().filter(|&&(caller, _)| caller == id) {
            src.push_str(&format!("    f{}();\n", target % n));
        }
        src.push_str("}\n");
    }
    src
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CFG construction is total on arbitrary printable soup.
    #[test]
    fn cfg_total_on_arbitrary_text(src in "(\\PC|\n|\t)*") {
        assert_cfg_wellformed(&src);
    }

    /// Random concatenations of control-flow fragments — nested, broken,
    /// and unbalanced — still build well-formed graphs.
    #[test]
    fn cfg_total_on_fragment_soup(picks in prop::collection::vec(0usize..32, 0..48)) {
        let frags = fragments();
        let src: String = picks
            .iter()
            .map(|&i| frags[i % frags.len()])
            .collect::<Vec<_>>()
            .join(" ");
        assert_cfg_wellformed(&src);
    }

    /// The worklist reaches a fixpoint on random graphs with a monotone
    /// transfer, and the result is a valid fixpoint: every block's
    /// in-fact includes every predecessor's out-fact.
    #[test]
    fn dataflow_fixpoint_on_random_graphs(
        nblocks in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..120),
        gen_at in prop::collection::vec(0usize..40, 0..12),
    ) {
        let cfg = Cfg::synthetic(nblocks, &edges);
        let gens: BTreeSet<usize> = gen_at.iter().map(|&b| b % cfg.len()).collect();
        let transfer = |b: usize, inf: &SetUnion<usize>| {
            let mut out = inf.clone();
            if gens.contains(&b) {
                out.0.insert(b);
            }
            out
        };
        let facts = forward(&cfg, SetUnion::default(), SetUnion::default(), transfer);
        prop_assert_eq!(facts.len(), cfg.len());
        for b in 0..cfg.len() {
            let out = transfer(b, &facts[b]);
            for &(succ, _) in &cfg.succs[b] {
                prop_assert!(
                    out.0.is_subset(&facts[succ].0),
                    "edge {}->{} not relaxed: {:?} vs {:?}",
                    b, succ, out.0, facts[succ].0
                );
            }
        }
    }

    /// The fuel counter bounds the loop even for a "lattice" whose join
    /// always claims growth — the driver must return, not spin.
    #[test]
    fn dataflow_terminates_on_hostile_transfer(
        nblocks in 2usize..24,
        edges in prop::collection::vec((0usize..24, 0usize..24), 1..80),
    ) {
        let cfg = Cfg::synthetic(nblocks, &edges);
        let counter = std::cell::Cell::new(0usize);
        let facts = forward_filtered(
            &cfg,
            NeverStable::default(),
            NeverStable::default(),
            |_, inf: &NeverStable| {
                counter.set(counter.get() + 1);
                inf.clone()
            },
            |_| true,
        );
        prop_assert_eq!(facts.len(), cfg.len());
        // Fuel is n*256 + 4096; one transfer call per relaxation, so the
        // call count stays bounded even though joins never stabilize.
        prop_assert!(counter.get() <= cfg.len() * 256 + 4096 + cfg.len());
    }

    /// Call-graph construction is total on arbitrary printable soup and
    /// its invariants hold on whatever comes out.
    #[test]
    fn callgraph_total_on_arbitrary_text(src in "(\\PC|\n|\t)*") {
        assert_callgraph_wellformed(&src);
    }

    /// Random concatenations of control-flow fragments still build
    /// well-formed call graphs.
    #[test]
    fn callgraph_total_on_fragment_soup(picks in prop::collection::vec(0usize..32, 0..48)) {
        let frags = fragments();
        let src: String = picks
            .iter()
            .map(|&i| frags[i % frags.len()])
            .collect::<Vec<_>>()
            .join(" ");
        assert_callgraph_wellformed(&src);
    }

    /// Summary computation is deterministic and fuel-terminating on
    /// random (mutually) recursive call graphs, and the result is a
    /// closed fixpoint: every caller's summary includes every resolved
    /// callee's facts.
    #[test]
    fn summaries_deterministic_and_closed_on_random_recursion(
        n in 2usize..12,
        calls in prop::collection::vec((0usize..12, 0usize..12), 0..36),
        effects in prop::collection::vec(0usize..4, 0..12),
    ) {
        let calls: Vec<(usize, usize)> =
            calls.iter().map(|&(c, t)| (c % n, t % n)).collect();
        let src = synthetic_workspace_src(n, &calls, &effects);
        let m = FileModel::parse("synth.rs".into(), "synth".into(), src);
        let ws = Workspace::build(vec![m]);
        let cg = CallGraph::build(&ws);
        // Terminates (the fuel bound backstops the SCC fixpoint) and is
        // deterministic run to run.
        let first = summaries::compute(&ws, &cg);
        let second = summaries::compute(&ws, &cg);
        prop_assert_eq!(&first, &second);
        // Fixpoint closure: a caller absorbs each resolved callee's facts.
        for (id, out) in cg.edges.iter().enumerate() {
            for e in out {
                if e.callee == id {
                    continue;
                }
                for lock in first[e.callee].acquires.keys() {
                    prop_assert!(
                        first[id].acquires.contains_key(lock),
                        "fn {} misses lock `{}` from callee {}", id, lock, e.callee
                    );
                }
                for kind in first[e.callee].blocking.keys() {
                    prop_assert!(
                        first[id].blocking.contains_key(kind),
                        "fn {} misses blocking {:?} from callee {}", id, kind, e.callee
                    );
                }
                if first[e.callee].enqueues_mailbox.is_some() {
                    prop_assert!(
                        first[id].enqueues_mailbox.is_some(),
                        "fn {} misses the mailbox enqueue from callee {}", id, e.callee
                    );
                }
            }
        }
    }
}
