//! Property tests for the flow machinery: CFG construction is total on
//! arbitrary token streams (and its invariants hold on whatever comes
//! out), and the dataflow worklist terminates on random graphs even
//! when handed a hostile, non-monotone transfer function.

// Tests assert on known-good setups; panicking on failure is the point.
#![allow(clippy::disallowed_methods)]

use obiwan_lint::cfg::Cfg;
use obiwan_lint::dataflow::{forward, forward_filtered, JoinLattice, SetUnion};
use obiwan_lint::model::FileModel;
use proptest::prelude::*;
use std::collections::BTreeSet;

/// A hostile "lattice" whose join always reports growth, so a worklist
/// without a fuel bound would spin forever on any cyclic graph.
#[derive(Debug, Clone, Default)]
struct NeverStable(u64);

impl JoinLattice for NeverStable {
    fn join(&mut self, other: &Self) -> bool {
        self.0 = self.0.wrapping_add(other.0).wrapping_add(1);
        true
    }
}

/// Build a CFG over every function body (and the whole token stream) of
/// `src` and check the structural invariants the rules rely on.
fn assert_cfg_wellformed(src: &str) {
    let m = FileModel::parse("fuzz.rs".into(), "fuzz".into(), src.to_string());
    let mut ranges: Vec<std::ops::Range<usize>> =
        m.functions.iter().map(|f| f.body.clone()).collect();
    ranges.push(0..m.sig.len());
    // Out-of-range inputs must clamp, not panic.
    ranges.push(3..m.sig.len().saturating_add(7));
    for range in ranges {
        let cfg = Cfg::build(&m.sig, range.clone());
        assert!(!cfg.is_empty(), "built graphs always have blocks");
        assert_eq!(cfg.exit, 0, "exit is block 0 by construction");
        assert_eq!(cfg.entry, 1, "entry is block 1 by construction");
        assert!(
            cfg.blocks[cfg.exit].spans.is_empty(),
            "exit holds no tokens"
        );
        let lo = range.start.min(m.sig.len());
        let hi = range.end.min(m.sig.len()).max(lo);
        let mut seen = BTreeSet::new();
        for b in 0..cfg.len() {
            for span in &cfg.blocks[b].spans {
                assert!(span.start <= span.end, "negative span in block {b}");
                for tok in span.clone() {
                    assert!(
                        (lo..hi).contains(&tok),
                        "block {b} owns token {tok} outside {lo}..{hi}"
                    );
                    assert!(seen.insert(tok), "token {tok} owned by two spans");
                    assert_eq!(cfg.block_of(tok), Some(b), "owner map disagrees");
                }
            }
            for &(succ, _) in &cfg.succs[b] {
                assert!(succ < cfg.len(), "edge {b}->{succ} out of range");
            }
        }
    }
}

/// Rust-ish control-flow fragments: every shape the builder recognizes,
/// plus the malformed edges it must degrade through.
fn fragments() -> Vec<&'static str> {
    vec![
        "fn f() { ",
        "}",
        "if a { b(); } else { c(); }",
        "if a { b(); }",
        "else",
        "match x { Some(v) => v, None => 0, }",
        "match x { _ => { y(); } }",
        "loop { tick(); }",
        "while going { step()?; }",
        "for i in 0..n { sum += i; }",
        "return Err(e);",
        "break 'outer;",
        "continue;",
        "let g = lock_manager();",
        "net.send_blob(d, &key, bytes)?;",
        "? ? ?",
        "{ } { {",
        "match {",
        "if",
        "=> , ;",
        "loop while for",
        "x += 1;",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// CFG construction is total on arbitrary printable soup.
    #[test]
    fn cfg_total_on_arbitrary_text(src in "(\\PC|\n|\t)*") {
        assert_cfg_wellformed(&src);
    }

    /// Random concatenations of control-flow fragments — nested, broken,
    /// and unbalanced — still build well-formed graphs.
    #[test]
    fn cfg_total_on_fragment_soup(picks in prop::collection::vec(0usize..32, 0..48)) {
        let frags = fragments();
        let src: String = picks
            .iter()
            .map(|&i| frags[i % frags.len()])
            .collect::<Vec<_>>()
            .join(" ");
        assert_cfg_wellformed(&src);
    }

    /// The worklist reaches a fixpoint on random graphs with a monotone
    /// transfer, and the result is a valid fixpoint: every block's
    /// in-fact includes every predecessor's out-fact.
    #[test]
    fn dataflow_fixpoint_on_random_graphs(
        nblocks in 2usize..40,
        edges in prop::collection::vec((0usize..40, 0usize..40), 0..120),
        gen_at in prop::collection::vec(0usize..40, 0..12),
    ) {
        let cfg = Cfg::synthetic(nblocks, &edges);
        let gens: BTreeSet<usize> = gen_at.iter().map(|&b| b % cfg.len()).collect();
        let transfer = |b: usize, inf: &SetUnion<usize>| {
            let mut out = inf.clone();
            if gens.contains(&b) {
                out.0.insert(b);
            }
            out
        };
        let facts = forward(&cfg, SetUnion::default(), SetUnion::default(), transfer);
        prop_assert_eq!(facts.len(), cfg.len());
        for b in 0..cfg.len() {
            let out = transfer(b, &facts[b]);
            for &(succ, _) in &cfg.succs[b] {
                prop_assert!(
                    out.0.is_subset(&facts[succ].0),
                    "edge {}->{} not relaxed: {:?} vs {:?}",
                    b, succ, out.0, facts[succ].0
                );
            }
        }
    }

    /// The fuel counter bounds the loop even for a "lattice" whose join
    /// always claims growth — the driver must return, not spin.
    #[test]
    fn dataflow_terminates_on_hostile_transfer(
        nblocks in 2usize..24,
        edges in prop::collection::vec((0usize..24, 0usize..24), 1..80),
    ) {
        let cfg = Cfg::synthetic(nblocks, &edges);
        let counter = std::cell::Cell::new(0usize);
        let facts = forward_filtered(
            &cfg,
            NeverStable::default(),
            NeverStable::default(),
            |_, inf: &NeverStable| {
                counter.set(counter.get() + 1);
                inf.clone()
            },
            |_| true,
        );
        prop_assert_eq!(facts.len(), cfg.len());
        // Fuel is n*256 + 4096; one transfer call per relaxation, so the
        // call count stays bounded even though joins never stabilize.
        prop_assert!(counter.get() <= cfg.len() * 256 + 4096 + cfg.len());
    }
}
