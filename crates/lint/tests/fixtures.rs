//! Fixture conformance: every rule S1–S15 fires on its seeded bad tree
//! at the expected file and line, stays quiet on the matching clean
//! tree, and the whole `lint-fixtures/` forest covers the full catalog.
//! The `*-cross` trees split the lock acquisition and the violation into
//! different functions, so only the interprocedural summaries connect
//! them — each asserts the reported call chain, not just the site.

// Tests assert on known-good setups; panicking on failure is the point.
#![allow(clippy::disallowed_methods)]

use obiwan_lint::{lint_root, LintViolation, Rule, ALL_RULES};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../lint-fixtures")
        .canonicalize()
        .expect("lint-fixtures/ exists at the workspace root")
}

fn lint(tree: &str) -> Vec<LintViolation> {
    lint_root(&fixtures().join(tree), &[]).expect("fixture tree is readable")
}

/// The bad tree fires exactly the expected rule at the expected site.
fn assert_fires(tree: &str, rule: Rule, file: &str, lines: &[u32]) {
    let found = lint(tree);
    assert_eq!(
        found.len(),
        lines.len(),
        "{tree}: expected {} violation(s), got {found:#?}",
        lines.len()
    );
    for (v, &line) in found.iter().zip(lines) {
        assert_eq!(v.rule, rule, "{tree}: wrong rule in {v:?}");
        assert_eq!(v.file, file, "{tree}: wrong file in {v:?}");
        assert_eq!(v.line, line, "{tree}: wrong line in {v:?}");
        assert!(!v.excerpt.is_empty(), "{tree}: empty excerpt in {v:?}");
        assert!(!v.advice.is_empty(), "{tree}: empty advice in {v:?}");
    }
}

/// The clean counterpart of a tree produces nothing.
fn assert_clean(tree: &str) {
    let found = lint(&format!("clean/{tree}"));
    assert!(found.is_empty(), "clean/{tree}: unexpected {found:#?}");
}

#[test]
fn s1_lock_order_catches_the_make_cursor_deadlock_shape() {
    assert_fires(
        "s1",
        Rule::LockOrder,
        "crates/core/src/middleware.rs",
        &[31],
    );
    // The regression fixture reproduces the historical deadlock: the
    // advice must name it so the report reads as the known bug class.
    let v = lint("s1").pop().expect("one violation");
    assert!(
        v.advice.contains("make_cursor"),
        "S1 advice should name the historical bug: {}",
        v.advice
    );
    assert!(
        v.excerpt.contains("intercept_build"),
        "excerpt: {}",
        v.excerpt
    );
    assert_clean("s1");
}

#[test]
fn s2_recorder_bypass() {
    assert_fires(
        "s2",
        Rule::RecorderBypass,
        "crates/core/src/manager.rs",
        &[21],
    );
    let v = lint("s2").pop().expect("one violation");
    assert_eq!(v.excerpt, "self.stats.swap_outs += 1;");
    assert_clean("s2");
}

#[test]
fn s3_layering() {
    assert_fires("s3", Rule::Layering, "crates/trace/src/export.rs", &[4]);
    assert_clean("s3");
}

#[test]
fn s3_transport_crates_stay_below_the_core() {
    // blobd importing the swapping core would drag the whole stack into
    // every storage process.
    assert_fires("s3d", Rule::Layering, "crates/blobd/src/daemon.rs", &[4]);
    assert_clean("s3d");
}

#[test]
fn s3_core_never_names_the_live_backends() {
    // Fires once on the `use` and once on the return type: every mention
    // inverts the dependency wall, not just the import.
    assert_fires("s3e", Rule::Layering, "crates/core/src/world.rs", &[4, 7]);
    assert_clean("s3e");
}

#[test]
fn s4_panic_paths_flags_unwrap_and_indexing() {
    assert_fires(
        "s4",
        Rule::PanicPaths,
        "crates/bench/src/report.rs",
        &[12, 13],
    );
    assert_clean("s4");
}

#[test]
fn s5_blob_access() {
    assert_fires("s5", Rule::BlobAccess, "crates/core/src/cursor.rs", &[21]);
    assert_clean("s5");
}

#[test]
fn s6_event_coverage() {
    assert_fires(
        "s6",
        Rule::EventCoverage,
        "crates/core/src/recorder.rs",
        &[30],
    );
    assert_clean("s6");
}

#[test]
fn s7_wall_clock() {
    assert_fires("s7", Rule::WallClock, "crates/bench/src/timing.rs", &[8]);
    // The clean tree documents its wall-clock read with lint:allow — this
    // exercises the suppression machinery, not just absence of the call.
    assert_clean("s7");
}

#[test]
fn s7_live_crates_may_not_name_wall_clock_types_at_all() {
    // In netd/blobd the bare type is the violation — the import, the
    // parameter type, and the `::now` read each fire; the clean tree
    // reads real time through obiwan_net::clock's seam instead.
    assert_fires(
        "s7-live",
        Rule::WallClock,
        "crates/netd/src/pacing.rs",
        &[4, 7, 8],
    );
    assert_clean("s7-live");
}

#[test]
fn s8_nondeterministic_iteration() {
    assert_fires(
        "s8",
        Rule::NondeterministicIteration,
        "crates/placement/src/table.rs",
        &[23],
    );
    assert_clean("s8");
}

#[test]
fn s9_guard_across_ship() {
    assert_fires(
        "s9",
        Rule::GuardAcrossShip,
        "crates/core/src/detach.rs",
        &[54],
    );
    // The advice must teach the fix shape: narrow the guard, then ship.
    let v = lint("s9").pop().expect("one violation");
    assert!(
        v.advice.contains("drop the guard"),
        "S9 advice should say how to fix it: {}",
        v.advice
    );
    assert_clean("s9");
}

#[test]
fn s10_guard_escape() {
    assert_fires(
        "s10",
        Rule::GuardEscape,
        "crates/core/src/manager.rs",
        &[32],
    );
    assert_clean("s10");
}

#[test]
fn s11_cross_shard_order() {
    // Line 38: two raw `lock_shard` calls in argument order. Line 54: a
    // call through a `lock_shard_pair` helper whose body shows no
    // ordering evidence — encapsulation alone is not an order.
    assert_fires(
        "s11",
        Rule::CrossShardOrder,
        "crates/core/src/manager.rs",
        &[38, 54],
    );
    // The clean tree locks in canonical key order two ways: a `from < to`
    // comparison in the caller, and a pair helper that min/maxes its keys
    // (the ordering evidence is found in the helper body, so the caller
    // needs none of its own).
    assert_clean("s11");
}

#[test]
fn s12_discarded_result() {
    assert_fires(
        "s12",
        Rule::DiscardedResult,
        "crates/core/src/reload.rs",
        &[25],
    );
    assert_clean("s12");
}

#[test]
fn s1_interprocedural_reacquisition_one_call_deep() {
    // The make_cursor shape again, but the re-acquisition lives in the
    // callee: only the call-graph summary can see it.
    assert_fires(
        "s1-cross",
        Rule::LockOrder,
        "crates/core/src/middleware.rs",
        &[36],
    );
    let v = lint("s1-cross").pop().expect("one violation");
    assert_eq!(v.chain, vec!["rebuild_cursor"], "chain: {v:?}");
    assert!(
        v.advice.contains("make_cursor"),
        "S1 advice should name the historical bug: {}",
        v.advice
    );
    assert_clean("s1-cross");
}

#[test]
fn s9_interprocedural_ship_buried_in_helper() {
    assert_fires(
        "s9-cross",
        Rule::GuardAcrossShip,
        "crates/core/src/detach.rs",
        &[55],
    );
    let v = lint("s9-cross").pop().expect("one violation");
    assert_eq!(v.chain, vec!["ship_blob"], "chain: {v:?}");
    assert!(
        v.advice.contains("after the guard drops"),
        "S9 advice should teach the fix shape: {}",
        v.advice
    );
    assert_clean("s9-cross");
}

#[test]
fn s13_blocking_under_lock_across_functions() {
    // The lock is taken in `swap_out`, the sleep lives in
    // `charge_airtime` — the two-function case the summaries exist for.
    assert_fires(
        "s13",
        Rule::BlockingUnderLock,
        "crates/core/src/charge.rs",
        &[34],
    );
    let v = lint("s13").pop().expect("one violation");
    assert_eq!(v.chain, vec!["charge_airtime"], "chain: {v:?}");
    assert!(
        v.advice.contains("sleeps on the calling thread"),
        "S13 advice should name the blocking class: {}",
        v.advice
    );
    assert_clean("s13");
}

#[test]
fn s14_actor_reentrancy() {
    assert_fires(
        "s14",
        Rule::ActorReentrancy,
        "crates/netd/src/relay.rs",
        &[34],
    );
    let v = lint("s14").pop().expect("one violation");
    assert_eq!(v.chain, vec!["forward"], "chain: {v:?}");
    assert!(
        v.advice.contains("mailbox"),
        "S14 advice should explain the deadlock: {}",
        v.advice
    );
    assert_clean("s14");
}

#[test]
fn s15_unchecked_quota_arithmetic() {
    assert_fires(
        "s15",
        Rule::UncheckedQuotaArithmetic,
        "crates/placement/src/quota.rs",
        &[17, 20, 27],
    );
    let v = lint("s15").pop().expect("violations");
    assert!(
        v.advice.contains("saturating_sub"),
        "S15 advice should name the checked alternative: {}",
        v.advice
    );
    assert_clean("s15");
}

#[test]
fn whole_forest_covers_every_rule() {
    let found = lint_root(&fixtures(), &[]).expect("forest is readable");
    let fired: BTreeSet<Rule> = found.iter().map(|v| v.rule).collect();
    for rule in ALL_RULES {
        assert!(fired.contains(&rule), "no fixture fires {rule}");
    }
}

#[test]
fn allow_disables_a_rule() {
    let found =
        lint_root(&fixtures().join("s4"), &[Rule::PanicPaths]).expect("fixture tree is readable");
    assert!(
        found.is_empty(),
        "--allow S4 should silence the tree: {found:#?}"
    );
}

#[test]
fn json_encoding_is_wellformed() {
    let v = lint("s1").pop().expect("one violation");
    let json = v.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"rule\":\"S1\""), "{json}");
    assert!(json.contains("\"line\":31"), "{json}");
}
