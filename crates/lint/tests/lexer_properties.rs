//! Property tests for the hand-rolled lexer: total (never panics) and
//! lossless (token spans tile the input exactly, so excerpts and line
//! numbers are always recoverable).

// Tests assert on known-good setups; panicking on failure is the point.
#![allow(clippy::disallowed_methods)]

use obiwan_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Spans must tile `src` byte-for-byte: contiguous, in order, and
/// concatenating their text reproduces the input.
fn assert_lossless(src: &str) {
    let tokens = lex(src);
    let mut at = 0usize;
    for t in &tokens {
        assert_eq!(t.start, at, "gap or overlap before token {t:?} in {src:?}");
        assert!(t.end >= t.start, "negative span {t:?}");
        at = t.end;
    }
    assert_eq!(at, src.len(), "tokens do not cover the tail of {src:?}");
    let rebuilt: String = tokens.iter().map(|t| t.text(src)).collect();
    assert_eq!(rebuilt, src, "round-trip mismatch");
    // Line numbers are 1-based and monotone.
    let mut prev = 1u32;
    for t in &tokens {
        assert!(t.line >= prev, "line numbers went backwards at {t:?}");
        prev = t.line;
    }
}

/// Rust-ish fragments covering every token class the rules key on,
/// including the tricky ones (raw strings, nested comments, lifetimes).
fn fragments() -> Vec<&'static str> {
    vec![
        "fn ",
        "let mut ",
        "self.stats.swap_outs += 1;",
        "lock_manager()",
        "m.lock().unwrap()",
        "\"a \\\"quoted\\\" str\"",
        "r#\"raw \" str\"#",
        "b\"bytes\"",
        "'x'",
        "'\\n'",
        "'static",
        "&'a str",
        "// line comment\n",
        "/* block /* nested */ comment */",
        "/// doc\n",
        "0x1f_u32",
        "1.5e-3",
        "::",
        "->",
        "..=",
        "<<=",
        "r#fn",
        "\u{3b1}\u{3b2}",
        "\n",
        "\t ",
        "[0]",
        "HashMap::<u64, u32>::new()",
        "#[allow(dead_code)]",
        "}{)(",
        "\\",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary printable soup (plus newlines): the lexer is total and
    /// lossless on inputs that are not Rust at all.
    #[test]
    fn arbitrary_text_never_panics_and_round_trips(src in "(\\PC|\n|\t)*") {
        assert_lossless(&src);
    }

    /// Concatenations of Rust-ish fragments: every token class, chopped
    /// together in random orders, still lexes losslessly.
    #[test]
    fn fragment_soup_round_trips(picks in prop::collection::vec(0usize..29, 0..40)) {
        let frags = fragments();
        let src: String = picks
            .iter()
            .map(|&i| frags[i % frags.len()])
            .collect();
        assert_lossless(&src);
    }
}

#[test]
fn token_kinds_survive_adversarial_edges() {
    // Unterminated constructs extend to EOF without panicking.
    for src in [
        "\"unterminated",
        "r#\"unterminated",
        "/* unterminated",
        "'",
        "b\"",
        "r###\"deep\"##",
        "ident\u{0}after",
        "0x",
        "'a",
    ] {
        assert_lossless(src);
    }
    // A string containing an acquisition spelling is one Str token, so
    // rule code never sees a phantom lock site.
    let tokens = lex("\"lock_manager(\"");
    assert_eq!(tokens.len(), 1);
    assert_eq!(tokens[0].kind, TokenKind::Str);
}
