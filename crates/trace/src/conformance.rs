//! Replay an exported trace against the swap-lifecycle state machine.
//!
//! The checker is the telemetry subsystem's teeth: counters can be summed
//! wrong and nobody notices, but a trace that claims a cluster reloaded
//! twice without detaching in between, regressed its epoch, or failed
//! over more times than it has replicas is caught here mechanically. The
//! auditor's `trace-verify` binary and the property tests both funnel
//! through [`check`].

use crate::json::Trace;
use crate::EventKind;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The conformance rules a trace can violate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceRule {
    /// The ring evicted events; pairing rules cannot be replayed.
    Truncated,
    /// Stamps must be ordered: `seq` strictly increasing, `churn` and
    /// `at_us` non-decreasing.
    StampRegression,
    /// Every cluster-bearing event must name a cluster the run registered.
    UnknownCluster,
    /// The event is not legal in the cluster's current lifecycle state.
    IllegalTransition,
    /// Swap-out epochs must strictly increase per cluster.
    EpochRegression,
    /// An epoch-bearing event disagrees with the epoch the cluster is
    /// actually out under.
    EpochMismatch,
    /// A single reload failed over more than `replication_factor - 1`
    /// times.
    ExcessFailovers,
    /// `ReloadEnd.failovers` disagrees with the `Failover` events seen.
    FailoverMiscount,
    /// A swap-out stored more copies than the configured placement width.
    ExcessCopies,
    /// The trace ends with a cluster mid-detach or mid-reload.
    UnterminatedPhase,
    /// The final states disagree with the exported `meta.swapped` list.
    SwappedMismatch,
}

impl fmt::Display for TraceRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            TraceRule::Truncated => "truncated",
            TraceRule::StampRegression => "stamp-regression",
            TraceRule::UnknownCluster => "unknown-cluster",
            TraceRule::IllegalTransition => "illegal-transition",
            TraceRule::EpochRegression => "epoch-regression",
            TraceRule::EpochMismatch => "epoch-mismatch",
            TraceRule::ExcessFailovers => "excess-failovers",
            TraceRule::FailoverMiscount => "failover-miscount",
            TraceRule::ExcessCopies => "excess-copies",
            TraceRule::UnterminatedPhase => "unterminated-phase",
            TraceRule::SwappedMismatch => "swapped-mismatch",
        };
        f.write_str(name)
    }
}

/// One rule violation found while replaying a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConformanceViolation {
    /// The rule that was broken.
    pub rule: TraceRule,
    /// Sequence number of the offending event; `None` for end-of-trace
    /// and metadata violations.
    pub seq: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ConformanceViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seq {
            Some(seq) => write!(f, "[{}] event #{seq}: {}", self.rule, self.message),
            None => write!(f, "[{}] {}", self.rule, self.message),
        }
    }
}

/// The outcome of replaying a trace through the lifecycle state machine.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConformanceReport {
    /// Events replayed.
    pub events_checked: u64,
    /// Every violation found, in replay order.
    pub violations: Vec<ConformanceViolation>,
}

impl ConformanceReport {
    /// Whether the trace passed every rule.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "trace conforms ({} events checked)", self.events_checked)
        } else {
            writeln!(
                f,
                "trace violates {} rule(s) across {} events:",
                self.violations.len(),
                self.events_checked
            )?;
            for v in &self.violations {
                writeln!(f, "  {v}")?;
            }
            Ok(())
        }
    }
}

/// Per-cluster lifecycle state the replay walks through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Loaded,
    Detaching,
    Out,
    Reloading,
    Gone,
}

impl State {
    fn name(self) -> &'static str {
        match self {
            State::Loaded => "loaded",
            State::Detaching => "detaching",
            State::Out => "out",
            State::Reloading => "reloading",
            State::Gone => "gone",
        }
    }
}

#[derive(Debug, Clone)]
struct ClusterReplay {
    state: State,
    /// Epoch of the last completed swap-out.
    last_epoch: Option<u32>,
    /// Epoch the cluster is currently out under.
    out_epoch: Option<u32>,
    /// Epochs shipped during the in-flight detach.
    shipping: Vec<u32>,
    /// `Failover` events seen during the in-flight reload.
    failovers: u32,
}

impl ClusterReplay {
    fn new() -> Self {
        ClusterReplay {
            state: State::Loaded,
            last_epoch: None,
            out_epoch: None,
            shipping: Vec::new(),
            failovers: 0,
        }
    }
}

/// Replay `trace` through the lifecycle state machine and report every
/// violation. A truncated trace (ring evictions) reports only
/// [`TraceRule::Truncated`]: pairing rules cannot be trusted on a stream
/// with holes.
pub fn check(trace: &Trace) -> ConformanceReport {
    let mut report = ConformanceReport {
        events_checked: trace.events.len() as u64,
        violations: Vec::new(),
    };
    if trace.meta.dropped > 0 {
        report.violations.push(ConformanceViolation {
            rule: TraceRule::Truncated,
            seq: None,
            message: format!(
                "{} event(s) were evicted from the ring; the trace cannot be replayed",
                trace.meta.dropped
            ),
        });
        return report;
    }

    let known: BTreeSet<u32> = trace.meta.clusters.iter().copied().collect();
    let k = u64::from(trace.meta.replication_factor.max(1));
    let mut clusters: BTreeMap<u32, ClusterReplay> = BTreeMap::new();
    let mut last_stamp: Option<crate::Stamp> = None;

    for record in &trace.events {
        let seq = record.stamp.seq;
        let mut flag = |rule: TraceRule, message: String| {
            report.violations.push(ConformanceViolation {
                rule,
                seq: Some(seq),
                message,
            });
        };

        if let Some(prev) = last_stamp {
            if record.stamp.seq <= prev.seq {
                flag(
                    TraceRule::StampRegression,
                    format!(
                        "seq {} does not increase past {}",
                        record.stamp.seq, prev.seq
                    ),
                );
            }
            if record.stamp.churn < prev.churn {
                flag(
                    TraceRule::StampRegression,
                    format!(
                        "churn {} regressed below {}",
                        record.stamp.churn, prev.churn
                    ),
                );
            }
            if record.stamp.at_us < prev.at_us {
                flag(
                    TraceRule::StampRegression,
                    format!(
                        "virtual clock {}us regressed below {}us",
                        record.stamp.at_us, prev.at_us
                    ),
                );
            }
        }
        last_stamp = Some(record.stamp);

        let sc = match record.kind.swap_cluster() {
            Some(sc) => {
                if !known.contains(&sc) {
                    flag(
                        TraceRule::UnknownCluster,
                        format!(
                            "event {} names unregistered cluster {sc}",
                            record.kind.name()
                        ),
                    );
                    continue;
                }
                sc
            }
            // Whole-manager events (repair, gc, pump) have no per-cluster
            // state machine to advance.
            None => continue,
        };
        let cl = clusters.entry(sc).or_insert_with(ClusterReplay::new);

        match &record.kind {
            EventKind::DetachStart { .. } => {
                if cl.state != State::Loaded {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("detach-start while cluster {sc} is {}", cl.state.name()),
                    );
                }
                cl.state = State::Detaching;
                cl.shipping.clear();
            }
            EventKind::DetachEnd { epoch, copies, .. } => {
                if cl.state != State::Detaching {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("detach-end while cluster {sc} is {}", cl.state.name()),
                    );
                }
                if let Some(last) = cl.last_epoch {
                    if *epoch <= last {
                        flag(
                            TraceRule::EpochRegression,
                            format!("cluster {sc} swapped out under epoch {epoch} after {last}"),
                        );
                    }
                }
                for shipped in &cl.shipping {
                    if shipped != epoch {
                        flag(
                            TraceRule::EpochMismatch,
                            format!(
                                "cluster {sc} shipped epoch {shipped} but detached under {epoch}"
                            ),
                        );
                    }
                }
                if u64::from(*copies) > k {
                    flag(
                        TraceRule::ExcessCopies,
                        format!("cluster {sc} stored {copies} copies with k={k}"),
                    );
                }
                cl.state = State::Out;
                cl.last_epoch = Some(*epoch);
                cl.out_epoch = Some(*epoch);
                cl.shipping.clear();
            }
            EventKind::DetachAbort { .. } => {
                if cl.state != State::Detaching {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("detach-abort while cluster {sc} is {}", cl.state.name()),
                    );
                }
                cl.state = State::Loaded;
                cl.shipping.clear();
            }
            EventKind::ReloadStart { .. } => {
                if cl.state != State::Out {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("reload-start while cluster {sc} is {}", cl.state.name()),
                    );
                }
                cl.state = State::Reloading;
                cl.failovers = 0;
            }
            EventKind::ReloadEnd {
                epoch, failovers, ..
            } => {
                if cl.state != State::Reloading {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("reload-end while cluster {sc} is {}", cl.state.name()),
                    );
                }
                if let Some(out) = cl.out_epoch {
                    if *epoch != out {
                        flag(
                            TraceRule::EpochMismatch,
                            format!("cluster {sc} reloaded epoch {epoch} while out under {out}"),
                        );
                    }
                }
                if *failovers != cl.failovers {
                    flag(
                        TraceRule::FailoverMiscount,
                        format!(
                            "reload-end claims {failovers} failover(s) but {} were traced",
                            cl.failovers
                        ),
                    );
                }
                cl.state = State::Loaded;
                cl.out_epoch = None;
                cl.failovers = 0;
            }
            EventKind::ReloadAbort { .. } => {
                if cl.state != State::Reloading {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("reload-abort while cluster {sc} is {}", cl.state.name()),
                    );
                }
                cl.state = State::Out;
                cl.failovers = 0;
            }
            EventKind::BlobShipped { epoch, .. } => match cl.state {
                State::Detaching => cl.shipping.push(*epoch),
                // Repair sweeps re-replicate blobs of swapped-out clusters.
                State::Out => {
                    if let Some(out) = cl.out_epoch {
                        if *epoch != out {
                            flag(
                                TraceRule::EpochMismatch,
                                format!(
                                    "repair shipped epoch {epoch} for cluster {sc} out under {out}"
                                ),
                            );
                        }
                    }
                }
                other => flag(
                    TraceRule::IllegalTransition,
                    format!("blob-shipped while cluster {sc} is {}", other.name()),
                ),
            },
            EventKind::BlobDropped { .. } => {
                if !matches!(cl.state, State::Out | State::Reloading) {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("blob-dropped while cluster {sc} is {}", cl.state.name()),
                    );
                }
            }
            EventKind::ClusterDropped { .. } => {
                if cl.state != State::Out {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("cluster-dropped while cluster {sc} is {}", cl.state.name()),
                    );
                }
                cl.state = State::Gone;
                cl.out_epoch = None;
            }
            EventKind::Failover { epoch, .. } => {
                if cl.state != State::Reloading {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("failover while cluster {sc} is {}", cl.state.name()),
                    );
                }
                if let Some(out) = cl.out_epoch {
                    if *epoch != out {
                        flag(
                            TraceRule::EpochMismatch,
                            format!(
                                "failover names epoch {epoch} for cluster {sc} out under {out}"
                            ),
                        );
                    }
                }
                cl.failovers += 1;
                if u64::from(cl.failovers) > k.saturating_sub(1) {
                    flag(
                        TraceRule::ExcessFailovers,
                        format!(
                            "cluster {sc} failed over {} time(s) with k={k}",
                            cl.failovers
                        ),
                    );
                }
            }
            EventKind::HolderLost { .. } => {
                if cl.state != State::Out {
                    flag(
                        TraceRule::IllegalTransition,
                        format!("holder-lost while cluster {sc} is {}", cl.state.name()),
                    );
                }
            }
            // Proxy traffic is legal in every state: crossings happen
            // while loaded, surgery while detaching, patching on reload.
            EventKind::ProxyCreated { .. }
            | EventKind::ProxyReused { .. }
            | EventKind::ProxyDismantled { .. }
            | EventKind::AssignPatch { .. } => {}
            EventKind::RepairStart
            | EventKind::RepairEnd { .. }
            | EventKind::GcRun { .. }
            | EventKind::PumpAction { .. } => {}
        }
    }

    // End-of-trace rules: nothing mid-phase, and the exporter's idea of
    // what is swapped out must match the replayed states.
    let swapped_meta: BTreeSet<u32> = trace.meta.swapped.iter().copied().collect();
    let mut swapped_replay: BTreeSet<u32> = BTreeSet::new();
    for (sc, cl) in &clusters {
        match cl.state {
            State::Detaching | State::Reloading => {
                report.violations.push(ConformanceViolation {
                    rule: TraceRule::UnterminatedPhase,
                    seq: None,
                    message: format!("trace ends with cluster {sc} still {}", cl.state.name()),
                });
            }
            State::Out => {
                swapped_replay.insert(*sc);
            }
            State::Loaded | State::Gone => {}
        }
    }
    for sc in swapped_replay.difference(&swapped_meta) {
        report.violations.push(ConformanceViolation {
            rule: TraceRule::SwappedMismatch,
            seq: None,
            message: format!("replay leaves cluster {sc} out but meta.swapped omits it"),
        });
    }
    for sc in swapped_meta.difference(&swapped_replay) {
        report.violations.push(ConformanceViolation {
            rule: TraceRule::SwappedMismatch,
            seq: None,
            message: format!("meta.swapped lists cluster {sc} but the replay leaves it loaded"),
        });
    }
    report
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use crate::{Stamp, TraceMeta, TraceRecord};

    fn rec(seq: u64, at_us: u64, kind: EventKind) -> TraceRecord {
        TraceRecord {
            stamp: Stamp {
                seq,
                churn: 0,
                at_us,
            },
            kind,
        }
    }

    fn meta(k: u32, clusters: &[u32], swapped: &[u32]) -> TraceMeta {
        TraceMeta {
            home: 0,
            replication_factor: k,
            wire_format: "xml".to_owned(),
            capacity: 1024,
            recorded: 0,
            dropped: 0,
            clusters: clusters.to_vec(),
            swapped: swapped.to_vec(),
        }
    }

    fn clean_round_trip() -> Trace {
        Trace {
            meta: meta(2, &[0, 1], &[]),
            events: vec![
                rec(0, 0, EventKind::DetachStart { sc: 1 }),
                rec(
                    1,
                    10,
                    EventKind::BlobShipped {
                        sc: 1,
                        epoch: 0,
                        device: 2,
                        bytes: 64,
                        airtime_us: 10,
                    },
                ),
                rec(
                    2,
                    20,
                    EventKind::DetachEnd {
                        sc: 1,
                        epoch: 0,
                        bytes: 64,
                        copies: 2,
                    },
                ),
                rec(3, 30, EventKind::ReloadStart { sc: 1 }),
                rec(
                    4,
                    40,
                    EventKind::Failover {
                        sc: 1,
                        epoch: 0,
                        device: 2,
                    },
                ),
                rec(
                    5,
                    50,
                    EventKind::ReloadEnd {
                        sc: 1,
                        epoch: 0,
                        bytes: 64,
                        failovers: 1,
                    },
                ),
            ],
        }
    }

    fn rules(report: &ConformanceReport) -> Vec<TraceRule> {
        report.violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn clean_trace_conforms() {
        let report = check(&clean_round_trip());
        assert!(report.is_clean(), "{report}");
        assert_eq!(report.events_checked, 6);
    }

    #[test]
    fn truncated_trace_short_circuits() {
        let mut t = clean_round_trip();
        t.meta.dropped = 5;
        // Even violations downstream are not reported: the replay is off.
        t.events.remove(0);
        assert_eq!(rules(&check(&t)), vec![TraceRule::Truncated]);
    }

    #[test]
    fn unknown_cluster_is_flagged() {
        let mut t = clean_round_trip();
        t.meta.clusters = vec![0];
        let report = check(&t);
        assert!(rules(&report).contains(&TraceRule::UnknownCluster));
    }

    #[test]
    fn reload_without_detach_is_illegal() {
        let t = Trace {
            meta: meta(1, &[0, 1], &[]),
            events: vec![rec(0, 0, EventKind::ReloadStart { sc: 1 })],
        };
        let report = check(&t);
        assert!(rules(&report).contains(&TraceRule::IllegalTransition));
        // ...and the trace then ends mid-reload.
        assert!(rules(&report).contains(&TraceRule::UnterminatedPhase));
    }

    #[test]
    fn epoch_must_increase_per_cluster() {
        let mut t = clean_round_trip();
        t.events.extend([
            rec(6, 60, EventKind::DetachStart { sc: 1 }),
            rec(
                7,
                70,
                EventKind::DetachEnd {
                    sc: 1,
                    epoch: 0,
                    bytes: 64,
                    copies: 1,
                },
            ),
        ]);
        t.meta.swapped = vec![1];
        assert_eq!(rules(&check(&t)), vec![TraceRule::EpochRegression]);
    }

    #[test]
    fn failovers_bounded_by_replication() {
        let mut t = clean_round_trip();
        t.meta.replication_factor = 1;
        let report = check(&t);
        assert!(rules(&report).contains(&TraceRule::ExcessFailovers));
    }

    #[test]
    fn miscounted_failovers_are_flagged() {
        let mut t = clean_round_trip();
        t.events.remove(4); // drop the Failover event, keep failovers:1
        let report = check(&t);
        assert!(rules(&report).contains(&TraceRule::FailoverMiscount));
    }

    #[test]
    fn stamp_regressions_are_flagged() {
        let mut t = clean_round_trip();
        t.events[3].stamp.at_us = 5; // reload-start before detach-end time
        let report = check(&t);
        assert!(rules(&report).contains(&TraceRule::StampRegression));
    }

    #[test]
    fn swapped_meta_must_match_replay() {
        let mut t = clean_round_trip();
        t.meta.swapped = vec![1]; // replay reloads cluster 1 back in
        assert_eq!(rules(&check(&t)), vec![TraceRule::SwappedMismatch]);
    }

    #[test]
    fn gone_clusters_admit_nothing_further() {
        let t = Trace {
            meta: meta(1, &[0, 1], &[]),
            events: vec![
                rec(0, 0, EventKind::DetachStart { sc: 1 }),
                rec(
                    1,
                    10,
                    EventKind::DetachEnd {
                        sc: 1,
                        epoch: 0,
                        bytes: 8,
                        copies: 1,
                    },
                ),
                rec(
                    2,
                    20,
                    EventKind::BlobDropped {
                        sc: 1,
                        device: 2,
                        ok: true,
                    },
                ),
                rec(3, 30, EventKind::ClusterDropped { sc: 1 }),
                rec(4, 40, EventKind::ReloadStart { sc: 1 }),
            ],
        };
        let report = check(&t);
        assert!(rules(&report).contains(&TraceRule::IllegalTransition));
    }

    #[test]
    fn excess_copies_are_flagged() {
        let t = Trace {
            meta: meta(1, &[0, 1], &[1]),
            events: vec![
                rec(0, 0, EventKind::DetachStart { sc: 1 }),
                rec(
                    1,
                    10,
                    EventKind::DetachEnd {
                        sc: 1,
                        epoch: 0,
                        bytes: 8,
                        copies: 3,
                    },
                ),
            ],
        };
        assert_eq!(rules(&check(&t)), vec![TraceRule::ExcessCopies]);
    }
}
