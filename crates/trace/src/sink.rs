//! The bounded ring-buffer event sink.

use crate::{EventKind, Stamp, TraceRecord};
use std::collections::VecDeque;

/// Default event capacity of a [`TraceSink`]: generous enough that the
/// auditor's replay scenarios and the test suites never wrap, small enough
/// that an always-on sink costs a few megabytes at worst.
pub const DEFAULT_CAPACITY: usize = 1 << 16;

/// A bounded ring buffer of stamped lifecycle events.
///
/// Pushing beyond capacity evicts the oldest record and counts it in
/// [`TraceSink::dropped`]; the conformance checker treats a truncated
/// trace as unverifiable, so size the sink for the workload when the
/// trace must be checked end-to-end.
#[derive(Debug, Clone)]
pub struct TraceSink {
    records: VecDeque<TraceRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::with_capacity(DEFAULT_CAPACITY)
    }
}

impl TraceSink {
    /// A sink holding at most `capacity` events (at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceSink {
            records: VecDeque::new(),
            capacity: capacity.max(1),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Stamp and append an event, evicting the oldest if full. Returns the
    /// sequence number assigned.
    pub fn push(&mut self, churn: u64, at_us: u64, kind: EventKind) -> u64 {
        let seq = self.next_seq;
        self.push_stamped(seq, churn, at_us, kind);
        seq
    }

    /// Append an event whose sequence number was allocated elsewhere (a
    /// recorder's atomic choke point). `next_seq` only moves forward, so
    /// [`TraceSink::recorded`] stays the count of events ever stamped even
    /// when sequences arrive out of order.
    pub fn push_stamped(&mut self, seq: u64, churn: u64, at_us: u64, kind: EventKind) {
        self.next_seq = self.next_seq.max(seq + 1);
        if self.records.len() == self.capacity {
            self.records.pop_front();
            self.dropped += 1;
        }
        self.records.push_back(TraceRecord {
            stamp: Stamp { seq, churn, at_us },
            kind,
        });
    }

    /// Events currently buffered (oldest first).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (buffered + evicted).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Iterate the buffered records, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter()
    }

    /// Clone the buffered records out, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.iter().cloned().collect()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn push_stamps_monotonic_sequences() {
        let mut sink = TraceSink::with_capacity(8);
        for i in 0..5u64 {
            let seq = sink.push(1, i * 10, EventKind::RepairStart);
            assert_eq!(seq, i);
        }
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 5);
        assert_eq!(snap[3].stamp.seq, 3);
        assert_eq!(snap[3].stamp.at_us, 30);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let mut sink = TraceSink::with_capacity(3);
        for i in 0..5u32 {
            sink.push(0, 0, EventKind::DetachStart { sc: i });
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        assert_eq!(sink.recorded(), 5);
        let first = sink.iter().next().map(|r| r.stamp.seq);
        assert_eq!(first, Some(2));
    }

    #[test]
    fn push_stamped_accepts_preallocated_sequences() {
        let mut sink = TraceSink::with_capacity(8);
        sink.push_stamped(3, 1, 10, EventKind::RepairStart);
        sink.push_stamped(4, 1, 20, EventKind::RepairStart);
        assert_eq!(sink.recorded(), 5);
        // A later plain push continues past the highest stamped sequence.
        let seq = sink.push(1, 30, EventKind::RepairStart);
        assert_eq!(seq, 5);
        // An out-of-order stamp never rewinds `recorded`.
        sink.push_stamped(0, 0, 0, EventKind::RepairStart);
        assert_eq!(sink.recorded(), 6);
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut sink = TraceSink::with_capacity(0);
        sink.push(0, 0, EventKind::RepairStart);
        sink.push(0, 0, EventKind::RepairStart);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
    }
}
