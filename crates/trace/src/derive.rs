//! Folds over the event stream: counters, histograms, timelines.
//!
//! Everything here is a pure function of `&[TraceRecord]` — derived views
//! never consult the live middleware, so they work identically on a live
//! sink snapshot and on a re-imported JSON trace.

use crate::{EventKind, Histogram, TraceRecord};
use std::collections::BTreeMap;

/// Lifecycle counters derived by folding the event stream. Field names
/// mirror the middleware's `SwapStats`; the consistency tests assert the
/// two never drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct FoldedCounts {
    /// Completed swap-outs (`DetachEnd` events).
    pub swap_outs: u64,
    /// Completed reloads (`ReloadEnd` events).
    pub swap_ins: u64,
    /// Blob drops that reached the holder (`BlobDropped { ok: true }`).
    pub blobs_dropped: u64,
    /// Blob drops that could not reach the holder.
    pub drop_failures: u64,
    /// Proxies created (`ProxyCreated`).
    pub proxies_created: u64,
    /// Proxies reused (`ProxyReused`).
    pub proxies_reused: u64,
    /// Proxies dismantled (`ProxyDismantled`).
    pub proxies_dismantled: u64,
    /// Assign-marked self-patches (`AssignPatch`).
    pub assign_patches: u64,
    /// Payload bytes shipped out (`DetachEnd.bytes × copies`).
    pub bytes_swapped_out: u64,
    /// Payload bytes fetched back (`ReloadEnd.bytes`).
    pub bytes_swapped_in: u64,
    /// Reloads that succeeded only after at least one failover.
    pub reload_failovers: u64,
    /// Clusters re-replicated by repair sweeps (`RepairEnd.repaired`).
    pub repairs: u64,
    /// Bytes repair sweeps moved (`RepairEnd.bytes`).
    pub repair_bytes: u64,
}

/// Fold the event stream into lifecycle counters.
pub fn fold_counts(records: &[TraceRecord]) -> FoldedCounts {
    let mut c = FoldedCounts::default();
    for r in records {
        match &r.kind {
            EventKind::DetachEnd { bytes, copies, .. } => {
                c.swap_outs += 1;
                c.bytes_swapped_out += bytes * u64::from(*copies);
            }
            EventKind::ReloadEnd {
                bytes, failovers, ..
            } => {
                c.swap_ins += 1;
                c.bytes_swapped_in += bytes;
                if *failovers > 0 {
                    c.reload_failovers += 1;
                }
            }
            EventKind::BlobDropped { ok: true, .. } => c.blobs_dropped += 1,
            EventKind::BlobDropped { ok: false, .. } => c.drop_failures += 1,
            EventKind::ProxyCreated { .. } => c.proxies_created += 1,
            EventKind::ProxyReused { .. } => c.proxies_reused += 1,
            EventKind::ProxyDismantled { .. } => c.proxies_dismantled += 1,
            EventKind::AssignPatch { .. } => c.assign_patches += 1,
            EventKind::RepairEnd { repaired, bytes } => {
                c.repairs += repaired;
                c.repair_bytes += bytes;
            }
            _ => {}
        }
    }
    c
}

/// Histogram summary of a trace: how long the lifecycle phases took and
/// how big the blobs were.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[non_exhaustive]
pub struct TraceSummary {
    /// Virtual time from `DetachStart` to `DetachEnd`, per swap-out.
    pub detach_us: Histogram,
    /// Virtual time from `ReloadStart` to `ReloadEnd`, per reload.
    pub reload_us: Histogram,
    /// Payload bytes per stored copy, per swap-out.
    pub blob_bytes: Histogram,
    /// Airtime per shipped copy (`BlobShipped.airtime_us`).
    pub ship_airtime_us: Histogram,
}

impl TraceSummary {
    /// Deterministic JSON rendering of the four histograms as one object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"detach_us\":{},\"reload_us\":{},\"blob_bytes\":{},\"ship_airtime_us\":{}}}",
            self.detach_us.to_json(),
            self.reload_us.to_json(),
            self.blob_bytes.to_json(),
            self.ship_airtime_us.to_json()
        )
    }
}

/// Derive the phase-latency and size histograms from the stream.
///
/// Start events without a matching end (aborted or trace-truncated
/// phases) contribute nothing; sizes come from the completed `DetachEnd`
/// events only.
pub fn summarize(records: &[TraceRecord]) -> TraceSummary {
    let mut s = TraceSummary::default();
    let mut detach_started: BTreeMap<u32, u64> = BTreeMap::new();
    let mut reload_started: BTreeMap<u32, u64> = BTreeMap::new();
    for r in records {
        match &r.kind {
            EventKind::DetachStart { sc } => {
                detach_started.insert(*sc, r.stamp.at_us);
            }
            EventKind::DetachEnd { sc, bytes, .. } => {
                if let Some(t0) = detach_started.remove(sc) {
                    s.detach_us.record(r.stamp.at_us.saturating_sub(t0));
                }
                s.blob_bytes.record(*bytes);
            }
            EventKind::DetachAbort { sc } => {
                detach_started.remove(sc);
            }
            EventKind::ReloadStart { sc } => {
                reload_started.insert(*sc, r.stamp.at_us);
            }
            EventKind::ReloadEnd { sc, .. } => {
                if let Some(t0) = reload_started.remove(sc) {
                    s.reload_us.record(r.stamp.at_us.saturating_sub(t0));
                }
            }
            EventKind::ReloadAbort { sc } => {
                reload_started.remove(sc);
            }
            EventKind::BlobShipped { airtime_us, .. } => {
                s.ship_airtime_us.record(*airtime_us);
            }
            _ => {}
        }
    }
    s
}

/// One phase of a cluster's lifecycle timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase name: `"detaching"`, `"out"`, `"reloading"`, `"loaded"`,
    /// `"dropped"`.
    pub name: &'static str,
    /// Virtual time the phase began.
    pub from_us: u64,
    /// Virtual time the phase ended; `None` when the trace ends inside it.
    pub to_us: Option<u64>,
}

/// Per-cluster lifecycle timelines: for every swap-cluster named by a
/// lifecycle event, the ordered phases it went through. Clusters start
/// implicitly `loaded`; only phase *changes* are materialized, so a
/// cluster that never swapped has an empty timeline.
pub fn timelines(records: &[TraceRecord]) -> BTreeMap<u32, Vec<Phase>> {
    let mut out: BTreeMap<u32, Vec<Phase>> = BTreeMap::new();
    let mut open = |sc: u32, name: &'static str, at: u64| {
        let spans = out.entry(sc).or_default();
        if let Some(last) = spans.last_mut() {
            if last.to_us.is_none() {
                last.to_us = Some(at);
            }
        }
        spans.push(Phase {
            name,
            from_us: at,
            to_us: None,
        });
    };
    for r in records {
        let at = r.stamp.at_us;
        match &r.kind {
            EventKind::DetachStart { sc } => open(*sc, "detaching", at),
            EventKind::DetachEnd { sc, .. } => open(*sc, "out", at),
            EventKind::DetachAbort { sc } | EventKind::ReloadEnd { sc, .. } => {
                open(*sc, "loaded", at)
            }
            EventKind::ReloadStart { sc } => open(*sc, "reloading", at),
            EventKind::ReloadAbort { sc } => open(*sc, "out", at),
            EventKind::ClusterDropped { sc } => open(*sc, "dropped", at),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;
    use crate::Stamp;

    fn rec(seq: u64, at_us: u64, kind: EventKind) -> TraceRecord {
        TraceRecord {
            stamp: Stamp {
                seq,
                churn: 0,
                at_us,
            },
            kind,
        }
    }

    fn round_trip() -> Vec<TraceRecord> {
        vec![
            rec(0, 0, EventKind::DetachStart { sc: 1 }),
            rec(
                1,
                40,
                EventKind::BlobShipped {
                    sc: 1,
                    epoch: 0,
                    device: 1,
                    bytes: 100,
                    airtime_us: 40,
                },
            ),
            rec(
                2,
                50,
                EventKind::DetachEnd {
                    sc: 1,
                    epoch: 0,
                    bytes: 100,
                    copies: 1,
                },
            ),
            rec(3, 60, EventKind::ReloadStart { sc: 1 }),
            rec(
                4,
                70,
                EventKind::Failover {
                    sc: 1,
                    epoch: 0,
                    device: 1,
                },
            ),
            rec(
                5,
                120,
                EventKind::ReloadEnd {
                    sc: 1,
                    epoch: 0,
                    bytes: 100,
                    failovers: 1,
                },
            ),
            rec(
                6,
                120,
                EventKind::BlobDropped {
                    sc: 1,
                    device: 1,
                    ok: true,
                },
            ),
        ]
    }

    #[test]
    fn fold_counts_mirrors_swap_stats_semantics() {
        let c = fold_counts(&round_trip());
        assert_eq!(c.swap_outs, 1);
        assert_eq!(c.swap_ins, 1);
        assert_eq!(c.bytes_swapped_out, 100);
        assert_eq!(c.bytes_swapped_in, 100);
        assert_eq!(c.reload_failovers, 1);
        assert_eq!(c.blobs_dropped, 1);
        assert_eq!(c.drop_failures, 0);
    }

    #[test]
    fn summarize_pairs_phases() {
        let s = summarize(&round_trip());
        assert_eq!(s.detach_us.count(), 1);
        assert_eq!(s.detach_us.max(), 50);
        assert_eq!(s.reload_us.count(), 1);
        assert_eq!(s.reload_us.max(), 60);
        assert_eq!(s.blob_bytes.max(), 100);
        assert_eq!(s.ship_airtime_us.count(), 1);
    }

    #[test]
    fn aborted_phases_do_not_contribute_latency() {
        let records = vec![
            rec(0, 0, EventKind::DetachStart { sc: 2 }),
            rec(1, 99, EventKind::DetachAbort { sc: 2 }),
        ];
        let s = summarize(&records);
        assert_eq!(s.detach_us.count(), 0);
        let c = fold_counts(&records);
        assert_eq!(c.swap_outs, 0);
    }

    #[test]
    fn timelines_walk_the_lifecycle() {
        let tl = timelines(&round_trip());
        let phases: Vec<&str> = tl[&1].iter().map(|p| p.name).collect();
        assert_eq!(phases, vec!["detaching", "out", "reloading", "loaded"]);
        assert_eq!(tl[&1][0].to_us, Some(50));
        assert_eq!(tl[&1][3].to_us, None);
    }
}
