//! The lifecycle event vocabulary and its deterministic stamps.

use std::fmt;

/// The deterministic logical clock attached to every recorded event.
///
/// Nothing here consults a wall clock: `seq` is the recorder's own
/// monotonic counter, `churn` mirrors the simulated world's topology
/// sequence (`SimNet::churn_seq`) at recording time, and `at_us` is the
/// virtual [`SimTime`]-style clock in microseconds. Two runs of the same
/// deterministic workload produce byte-identical stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Stamp {
    /// Monotonic per-recorder event sequence, starting at 0.
    pub seq: u64,
    /// The world's churn sequence (topology epoch) when the event fired.
    pub churn: u64,
    /// Virtual time in microseconds when the event fired.
    pub at_us: u64,
}

/// A structured swap-lifecycle event.
///
/// `sc` is always the swap-cluster the event concerns; `epoch` the
/// swap-out epoch the blob on the wire was written under; `device` the
/// raw id of the storage device involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// Swap-out of `sc` began (members captured next).
    DetachStart {
        /// Swap-cluster being detached.
        sc: u32,
    },
    /// Swap-out of `sc` completed: the blob is stored and the graph
    /// surgery is done.
    DetachEnd {
        /// Swap-cluster detached.
        sc: u32,
        /// Swap-out epoch the blob was written under.
        epoch: u32,
        /// Payload bytes per stored copy.
        bytes: u64,
        /// Holder devices that accepted a copy.
        copies: u32,
    },
    /// Swap-out of `sc` failed after it had started; the cluster is back
    /// to (or still in) its loaded state and any stored copies became
    /// tracked orphans.
    DetachAbort {
        /// Swap-cluster whose detach failed.
        sc: u32,
    },
    /// Reload of `sc` began (blob fetch next).
    ReloadStart {
        /// Swap-cluster being reloaded.
        sc: u32,
    },
    /// Reload of `sc` completed: members rematerialized, proxies patched.
    ReloadEnd {
        /// Swap-cluster reloaded.
        sc: u32,
        /// Swap-out epoch of the blob that was fetched.
        epoch: u32,
        /// Payload bytes fetched.
        bytes: u64,
        /// Holders that failed before one served the blob.
        failovers: u32,
    },
    /// Reload of `sc` failed (every holder unreachable, decode error, or
    /// heap exhaustion); the cluster stays swapped out.
    ReloadAbort {
        /// Swap-cluster whose reload failed.
        sc: u32,
    },
    /// One copy of `sc`'s blob was stored on `device` (swap-out fan-out
    /// or repair re-replication).
    BlobShipped {
        /// Swap-cluster the blob captures.
        sc: u32,
        /// Swap-out epoch of the blob.
        epoch: u32,
        /// Raw id of the storing device.
        device: u32,
        /// Payload bytes on the wire.
        bytes: u64,
        /// Airtime the transfer cost, in virtual microseconds.
        airtime_us: u64,
    },
    /// A holder of `sc`'s blob was instructed to drop its copy.
    BlobDropped {
        /// Swap-cluster the blob captured.
        sc: u32,
        /// Raw id of the holder.
        device: u32,
        /// Whether the drop reached the device (`false`: it departed or
        /// already lost the blob; the copy is tracked as an orphan).
        ok: bool,
    },
    /// GC cooperation released `sc` for good: its replacement-object died,
    /// holders were instructed to drop, and the cluster can never reload.
    ClusterDropped {
        /// Swap-cluster released by the collector.
        sc: u32,
    },
    /// A reload attempt moved past an unreachable holder to the next copy.
    Failover {
        /// Swap-cluster being reloaded.
        sc: u32,
        /// Swap-out epoch of the blob.
        epoch: u32,
        /// Raw id of the holder that could not serve the blob.
        device: u32,
    },
    /// A placement repair sweep began.
    RepairStart,
    /// A placement repair sweep finished.
    RepairEnd {
        /// Clusters whose holder set was re-replicated back toward `k`.
        repaired: u64,
        /// Bytes the sweep moved (fetches plus stores).
        bytes: u64,
    },
    /// A swap-cluster-proxy was created (rule i) for an edge out of `sc`.
    ProxyCreated {
        /// Source swap-cluster of the proxy.
        sc: u32,
    },
    /// An existing proxy was reused (rule ii) for an edge out of `sc`.
    ProxyReused {
        /// Source swap-cluster of the proxy.
        sc: u32,
    },
    /// A proxy was dismantled (rule iii): the reference re-entered `sc`.
    ProxyDismantled {
        /// Swap-cluster the reference re-entered.
        sc: u32,
    },
    /// An assign-marked proxy patched itself (iteration optimization)
    /// while crossing into `sc`.
    AssignPatch {
        /// Swap-cluster the marked proxy crossed into.
        sc: u32,
    },
    /// A collection ran and its finalizers were processed.
    GcRun {
        /// Objects the collection freed.
        freed: u64,
        /// Dead swapped-out clusters whose blobs were dropped.
        dropped: u64,
    },
    /// A device holding a copy of `sc`'s blob left the room while the
    /// cluster was still swapped out.
    HolderLost {
        /// Swap-cluster whose blob lost a holder.
        sc: u32,
        /// Raw id of the departed holder.
        device: u32,
        /// Reachable holders remaining.
        left: u32,
    },
    /// The policy pump decided to apply an action.
    PumpAction {
        /// Kebab-case action name (`"swap-out-victims"`, …).
        action: String,
    },
}

impl EventKind {
    /// The stable kebab-case name used by the JSON wire format.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::DetachStart { .. } => "detach-start",
            EventKind::DetachEnd { .. } => "detach-end",
            EventKind::DetachAbort { .. } => "detach-abort",
            EventKind::ReloadStart { .. } => "reload-start",
            EventKind::ReloadEnd { .. } => "reload-end",
            EventKind::ReloadAbort { .. } => "reload-abort",
            EventKind::BlobShipped { .. } => "blob-shipped",
            EventKind::BlobDropped { .. } => "blob-dropped",
            EventKind::ClusterDropped { .. } => "cluster-dropped",
            EventKind::Failover { .. } => "failover",
            EventKind::RepairStart => "repair-start",
            EventKind::RepairEnd { .. } => "repair-end",
            EventKind::ProxyCreated { .. } => "proxy-created",
            EventKind::ProxyReused { .. } => "proxy-reused",
            EventKind::ProxyDismantled { .. } => "proxy-dismantled",
            EventKind::AssignPatch { .. } => "assign-patch",
            EventKind::GcRun { .. } => "gc-run",
            EventKind::HolderLost { .. } => "holder-lost",
            EventKind::PumpAction { .. } => "pump-action",
        }
    }

    /// The swap-cluster the event names, if any. Repair sweeps, GC runs
    /// and pump decisions are whole-manager events and return `None`.
    pub fn swap_cluster(&self) -> Option<u32> {
        match self {
            EventKind::DetachStart { sc }
            | EventKind::DetachEnd { sc, .. }
            | EventKind::DetachAbort { sc }
            | EventKind::ReloadStart { sc }
            | EventKind::ReloadEnd { sc, .. }
            | EventKind::ReloadAbort { sc }
            | EventKind::BlobShipped { sc, .. }
            | EventKind::BlobDropped { sc, .. }
            | EventKind::ClusterDropped { sc }
            | EventKind::Failover { sc, .. }
            | EventKind::ProxyCreated { sc }
            | EventKind::ProxyReused { sc }
            | EventKind::ProxyDismantled { sc }
            | EventKind::AssignPatch { sc }
            | EventKind::HolderLost { sc, .. } => Some(*sc),
            EventKind::RepairStart
            | EventKind::RepairEnd { .. }
            | EventKind::GcRun { .. }
            | EventKind::PumpAction { .. } => None,
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.swap_cluster() {
            Some(sc) => write!(f, "{} sc{sc}", self.name()),
            None => f.write_str(self.name()),
        }
    }
}

/// One stamped event in the trace stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When (logically) the event fired.
    pub stamp: Stamp,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} [churn {}, t={}us] {}",
            self.stamp.seq, self.stamp.churn, self.stamp.at_us, self.kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_kebab_case() {
        let e = EventKind::DetachEnd {
            sc: 3,
            epoch: 1,
            bytes: 100,
            copies: 2,
        };
        assert_eq!(e.name(), "detach-end");
        assert_eq!(e.swap_cluster(), Some(3));
        assert_eq!(EventKind::RepairStart.swap_cluster(), None);
    }

    #[test]
    fn display_names_cluster_and_stamp() {
        let r = TraceRecord {
            stamp: Stamp {
                seq: 9,
                churn: 2,
                at_us: 1500,
            },
            kind: EventKind::ReloadStart { sc: 4 },
        };
        let s = r.to_string();
        assert!(s.contains("#9") && s.contains("reload-start sc4"), "{s}");
    }
}
