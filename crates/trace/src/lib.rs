//! Swap-lifecycle telemetry for the OBIWAN object-swapping middleware.
//!
//! The paper's swap lifecycle (detach → ship → drop → reload) is easy to
//! count and hard to *trust*: end-of-run aggregates cannot say when things
//! happened, to which cluster, or how long each phase took. This crate is
//! the record of record:
//!
//! * [`TraceSink`] — a bounded ring buffer of structured lifecycle events
//!   ([`EventKind`]), each stamped ([`Stamp`]) with a monotonic sequence
//!   number, the simulated-network churn sequence and the virtual clock.
//! * [`Histogram`] — fixed power-of-two-bucket latency/size histograms,
//!   and [`derive`] — folds of the event stream: counters
//!   ([`derive::fold_counts`]), histograms ([`derive::summarize`]) and
//!   per-cluster lifecycle timelines ([`derive::timelines`]).
//! * [`json`] — a deterministic exporter (byte-identical output for
//!   identical traces; golden-file friendly) and a strict importer.
//! * [`conformance`] — a replayable checker that runs an exported trace
//!   through the lifecycle state machine: detach/reload pairing, epoch
//!   monotonicity, failover bounds, known-cluster rules.
//!
//! The crate is dependency-free and knows nothing about heaps, proxies or
//! networks — it only speaks the event vocabulary, so every layer of the
//! stack (core, net, policy, auditor, bench) can share one stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conformance;
pub mod derive;
mod event;
mod histogram;
pub mod json;
mod sink;

pub use conformance::{ConformanceReport, ConformanceViolation, TraceRule};
pub use derive::{FoldedCounts, Phase, TraceSummary};
pub use event::{EventKind, Stamp, TraceRecord};
pub use histogram::Histogram;
pub use json::{Trace, TraceError, TraceMeta};
pub use sink::{TraceSink, DEFAULT_CAPACITY};
