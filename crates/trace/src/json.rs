//! Deterministic JSON export and strict import of traces.
//!
//! The exporter writes one event object per line in stamp order with keys
//! in a fixed order, so identical traces serialize to identical bytes —
//! the golden-trace test commits an exported fixture and compares raw
//! strings. The importer is a small, strict JSON parser (the workspace is
//! dependency-free by design): unknown event names, missing fields and
//! malformed documents are errors, never silently skipped, because the
//! conformance checker's verdict is only as good as the parse.

use crate::{EventKind, Stamp, TraceRecord};
use std::collections::BTreeMap;
use std::fmt;

/// The trace schema version this crate reads and writes.
pub const TRACE_VERSION: u64 = 1;

/// Run-level metadata exported alongside the event stream.
///
/// `clusters` and `swapped` come from the middleware's registry at export
/// time; the conformance checker uses them to flag events naming unknown
/// clusters and lifecycles the trace leaves in the wrong state.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceMeta {
    /// Raw id of the home (resource-constrained) device.
    pub home: u32,
    /// Placement width `k` the run was configured with.
    pub replication_factor: u32,
    /// Wire format name the run used (`"xml"`, `"binary"`, `"lz-binary"`).
    pub wire_format: String,
    /// Ring capacity of the sink that produced the stream.
    pub capacity: u64,
    /// Total events recorded (buffered + evicted).
    pub recorded: u64,
    /// Events lost to ring eviction. Non-zero marks the trace truncated.
    pub dropped: u64,
    /// Every swap-cluster id the manager ever registered.
    pub clusters: Vec<u32>,
    /// Clusters still swapped out when the trace was exported.
    pub swapped: Vec<u32>,
}

/// An exported (or re-imported) trace: metadata plus the event stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Run-level metadata.
    pub meta: TraceMeta,
    /// The stamped events, oldest first.
    pub events: Vec<TraceRecord>,
}

/// Why a trace document failed to import.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The document is not well-formed JSON.
    Parse {
        /// Byte offset where parsing failed.
        offset: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// The document is valid JSON but not a valid trace.
    Schema(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { offset, message } => {
                write!(f, "JSON parse error at byte {offset}: {message}")
            }
            TraceError::Schema(message) => write!(f, "trace schema error: {message}"),
        }
    }
}

impl std::error::Error for TraceError {}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn ids_json(ids: &[u32]) -> String {
    let body: Vec<String> = ids.iter().map(u32::to_string).collect();
    format!("[{}]", body.join(","))
}

/// The event payload fields, in fixed export order.
fn event_fields(kind: &EventKind) -> String {
    match kind {
        EventKind::DetachStart { sc }
        | EventKind::DetachAbort { sc }
        | EventKind::ReloadStart { sc }
        | EventKind::ReloadAbort { sc }
        | EventKind::ClusterDropped { sc }
        | EventKind::ProxyCreated { sc }
        | EventKind::ProxyReused { sc }
        | EventKind::ProxyDismantled { sc }
        | EventKind::AssignPatch { sc } => format!(",\"sc\":{sc}"),
        EventKind::DetachEnd {
            sc,
            epoch,
            bytes,
            copies,
        } => format!(",\"sc\":{sc},\"epoch\":{epoch},\"bytes\":{bytes},\"copies\":{copies}"),
        EventKind::ReloadEnd {
            sc,
            epoch,
            bytes,
            failovers,
        } => format!(",\"sc\":{sc},\"epoch\":{epoch},\"bytes\":{bytes},\"failovers\":{failovers}"),
        EventKind::BlobShipped {
            sc,
            epoch,
            device,
            bytes,
            airtime_us,
        } => format!(
            ",\"sc\":{sc},\"epoch\":{epoch},\"device\":{device},\"bytes\":{bytes},\"airtime\":{airtime_us}"
        ),
        EventKind::BlobDropped { sc, device, ok } => {
            format!(",\"sc\":{sc},\"device\":{device},\"ok\":{ok}")
        }
        EventKind::Failover { sc, epoch, device } => {
            format!(",\"sc\":{sc},\"epoch\":{epoch},\"device\":{device}")
        }
        EventKind::RepairStart => String::new(),
        EventKind::RepairEnd { repaired, bytes } => {
            format!(",\"repaired\":{repaired},\"bytes\":{bytes}")
        }
        EventKind::GcRun { freed, dropped } => {
            format!(",\"freed\":{freed},\"dropped\":{dropped}")
        }
        EventKind::HolderLost { sc, device, left } => {
            format!(",\"sc\":{sc},\"device\":{device},\"left\":{left}")
        }
        EventKind::PumpAction { action } => format!(",\"action\":{}", json_string(action)),
    }
}

impl Trace {
    /// Serialize deterministically: fixed key order, one event per line.
    pub fn to_json(&self) -> String {
        let m = &self.meta;
        let mut out = String::new();
        out.push_str(&format!("{{\"version\":{TRACE_VERSION},\n"));
        out.push_str(&format!(
            "\"meta\":{{\"home\":{},\"replication_factor\":{},\"wire_format\":{},\"capacity\":{},\"recorded\":{},\"dropped\":{},\"clusters\":{},\"swapped\":{}}},\n",
            m.home,
            m.replication_factor,
            json_string(&m.wire_format),
            m.capacity,
            m.recorded,
            m.dropped,
            ids_json(&m.clusters),
            ids_json(&m.swapped)
        ));
        out.push_str("\"events\":[");
        for (i, r) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "{{\"seq\":{},\"churn\":{},\"at\":{},\"ev\":{}{}}}",
                r.stamp.seq,
                r.stamp.churn,
                r.stamp.at_us,
                json_string(r.kind.name()),
                event_fields(&r.kind)
            ));
        }
        out.push_str("\n]}\n");
        out
    }

    /// Parse a trace document produced by [`Trace::to_json`].
    pub fn from_json(text: &str) -> Result<Trace, TraceError> {
        let value = Parser::new(text).parse_document()?;
        let doc = value.as_object("document")?;
        let version = get(doc, "version")?.as_u64("version")?;
        if version != TRACE_VERSION {
            return Err(TraceError::Schema(format!(
                "unsupported trace version {version} (expected {TRACE_VERSION})"
            )));
        }
        let meta_obj = get(doc, "meta")?.as_object("meta")?;
        let meta = TraceMeta {
            home: get(meta_obj, "home")?.as_u32("home")?,
            replication_factor: get(meta_obj, "replication_factor")?
                .as_u32("replication_factor")?,
            wire_format: get(meta_obj, "wire_format")?
                .as_str("wire_format")?
                .to_owned(),
            capacity: get(meta_obj, "capacity")?.as_u64("capacity")?,
            recorded: get(meta_obj, "recorded")?.as_u64("recorded")?,
            dropped: get(meta_obj, "dropped")?.as_u64("dropped")?,
            clusters: id_list(get(meta_obj, "clusters")?, "clusters")?,
            swapped: id_list(get(meta_obj, "swapped")?, "swapped")?,
        };
        let mut events = Vec::new();
        for (i, ev) in get(doc, "events")?.as_array("events")?.iter().enumerate() {
            events.push(parse_event(ev).map_err(|e| match e {
                TraceError::Schema(m) => TraceError::Schema(format!("event {i}: {m}")),
                other => other,
            })?);
        }
        Ok(Trace { meta, events })
    }
}

fn parse_event(value: &Value) -> Result<TraceRecord, TraceError> {
    let obj = value.as_object("event")?;
    let stamp = Stamp {
        seq: get(obj, "seq")?.as_u64("seq")?,
        churn: get(obj, "churn")?.as_u64("churn")?,
        at_us: get(obj, "at")?.as_u64("at")?,
    };
    let name = get(obj, "ev")?.as_str("ev")?;
    let sc = |field: &str| -> Result<u32, TraceError> { get(obj, field)?.as_u32(field) };
    let n = |field: &str| -> Result<u64, TraceError> { get(obj, field)?.as_u64(field) };
    let kind = match name {
        "detach-start" => EventKind::DetachStart { sc: sc("sc")? },
        "detach-end" => EventKind::DetachEnd {
            sc: sc("sc")?,
            epoch: sc("epoch")?,
            bytes: n("bytes")?,
            copies: sc("copies")?,
        },
        "detach-abort" => EventKind::DetachAbort { sc: sc("sc")? },
        "reload-start" => EventKind::ReloadStart { sc: sc("sc")? },
        "reload-end" => EventKind::ReloadEnd {
            sc: sc("sc")?,
            epoch: sc("epoch")?,
            bytes: n("bytes")?,
            failovers: sc("failovers")?,
        },
        "reload-abort" => EventKind::ReloadAbort { sc: sc("sc")? },
        "blob-shipped" => EventKind::BlobShipped {
            sc: sc("sc")?,
            epoch: sc("epoch")?,
            device: sc("device")?,
            bytes: n("bytes")?,
            airtime_us: n("airtime")?,
        },
        "blob-dropped" => EventKind::BlobDropped {
            sc: sc("sc")?,
            device: sc("device")?,
            ok: get(obj, "ok")?.as_bool("ok")?,
        },
        "cluster-dropped" => EventKind::ClusterDropped { sc: sc("sc")? },
        "failover" => EventKind::Failover {
            sc: sc("sc")?,
            epoch: sc("epoch")?,
            device: sc("device")?,
        },
        "repair-start" => EventKind::RepairStart,
        "repair-end" => EventKind::RepairEnd {
            repaired: n("repaired")?,
            bytes: n("bytes")?,
        },
        "proxy-created" => EventKind::ProxyCreated { sc: sc("sc")? },
        "proxy-reused" => EventKind::ProxyReused { sc: sc("sc")? },
        "proxy-dismantled" => EventKind::ProxyDismantled { sc: sc("sc")? },
        "assign-patch" => EventKind::AssignPatch { sc: sc("sc")? },
        "gc-run" => EventKind::GcRun {
            freed: n("freed")?,
            dropped: n("dropped")?,
        },
        "holder-lost" => EventKind::HolderLost {
            sc: sc("sc")?,
            device: sc("device")?,
            left: sc("left")?,
        },
        "pump-action" => EventKind::PumpAction {
            action: get(obj, "action")?.as_str("action")?.to_owned(),
        },
        other => {
            return Err(TraceError::Schema(format!("unknown event name {other:?}")));
        }
    };
    Ok(TraceRecord { stamp, kind })
}

// ---------------------------------------------------------------------------
// A minimal strict JSON reader. Supports exactly what traces need: objects,
// arrays, strings (with the standard escapes), unsigned integers, booleans.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Object(BTreeMap<String, Value>),
    Array(Vec<Value>),
    String(String),
    Number(u64),
    Bool(bool),
}

impl Value {
    fn as_object(&self, what: &str) -> Result<&BTreeMap<String, Value>, TraceError> {
        match self {
            Value::Object(m) => Ok(m),
            _ => Err(TraceError::Schema(format!("{what} is not an object"))),
        }
    }

    fn as_array(&self, what: &str) -> Result<&[Value], TraceError> {
        match self {
            Value::Array(v) => Ok(v),
            _ => Err(TraceError::Schema(format!("{what} is not an array"))),
        }
    }

    fn as_str(&self, what: &str) -> Result<&str, TraceError> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(TraceError::Schema(format!("{what} is not a string"))),
        }
    }

    fn as_u64(&self, what: &str) -> Result<u64, TraceError> {
        match self {
            Value::Number(n) => Ok(*n),
            _ => Err(TraceError::Schema(format!("{what} is not a number"))),
        }
    }

    fn as_u32(&self, what: &str) -> Result<u32, TraceError> {
        u32::try_from(self.as_u64(what)?)
            .map_err(|_| TraceError::Schema(format!("{what} exceeds u32 range")))
    }

    fn as_bool(&self, what: &str) -> Result<bool, TraceError> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(TraceError::Schema(format!("{what} is not a boolean"))),
        }
    }
}

fn get<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v Value, TraceError> {
    obj.get(key)
        .ok_or_else(|| TraceError::Schema(format!("missing field {key:?}")))
}

fn id_list(value: &Value, what: &str) -> Result<Vec<u32>, TraceError> {
    value
        .as_array(what)?
        .iter()
        .map(|v| v.as_u32(what))
        .collect()
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> TraceError {
        TraceError::Parse {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), TraceError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn parse_document(&mut self) -> Result<Value, TraceError> {
        let value = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters after document"));
        }
        Ok(value)
    }

    fn parse_value(&mut self) -> Result<Value, TraceError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'0'..=b'9') => self.parse_number(),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(other) => Err(self.err(format!("unexpected character {:?}", other as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, TraceError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn parse_object(&mut self) -> Result<Value, TraceError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            if map.insert(key.clone(), value).is_some() {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, TraceError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, TraceError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E' | b'-' | b'+')) {
            return Err(self.err("only unsigned integers are valid in traces"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<u64>()
            .map(Value::Number)
            .map_err(|_| self.err("number out of u64 range"))
    }

    fn parse_string(&mut self) -> Result<String, TraceError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 scalar (input is a &str, so
                    // boundaries are trustworthy).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    fn sample() -> Trace {
        Trace {
            meta: TraceMeta {
                home: 0,
                replication_factor: 2,
                wire_format: "xml".to_owned(),
                capacity: 1024,
                recorded: 3,
                dropped: 0,
                clusters: vec![0, 1, 2],
                swapped: vec![2],
            },
            events: vec![
                TraceRecord {
                    stamp: Stamp {
                        seq: 0,
                        churn: 0,
                        at_us: 10,
                    },
                    kind: EventKind::DetachStart { sc: 1 },
                },
                TraceRecord {
                    stamp: Stamp {
                        seq: 1,
                        churn: 0,
                        at_us: 55,
                    },
                    kind: EventKind::BlobShipped {
                        sc: 1,
                        epoch: 0,
                        device: 3,
                        bytes: 320,
                        airtime_us: 45,
                    },
                },
                TraceRecord {
                    stamp: Stamp {
                        seq: 2,
                        churn: 1,
                        at_us: 60,
                    },
                    kind: EventKind::PumpAction {
                        action: "run-gc".to_owned(),
                    },
                },
            ],
        }
    }

    #[test]
    fn round_trips_byte_identically() {
        let trace = sample();
        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        assert_eq!(back, trace);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let kinds = vec![
            EventKind::DetachStart { sc: 1 },
            EventKind::DetachEnd {
                sc: 1,
                epoch: 2,
                bytes: 3,
                copies: 4,
            },
            EventKind::DetachAbort { sc: 1 },
            EventKind::ReloadStart { sc: 1 },
            EventKind::ReloadEnd {
                sc: 1,
                epoch: 2,
                bytes: 3,
                failovers: 1,
            },
            EventKind::ReloadAbort { sc: 1 },
            EventKind::BlobShipped {
                sc: 1,
                epoch: 2,
                device: 3,
                bytes: 4,
                airtime_us: 5,
            },
            EventKind::BlobDropped {
                sc: 1,
                device: 2,
                ok: false,
            },
            EventKind::ClusterDropped { sc: 1 },
            EventKind::Failover {
                sc: 1,
                epoch: 2,
                device: 3,
            },
            EventKind::RepairStart,
            EventKind::RepairEnd {
                repaired: 1,
                bytes: 2,
            },
            EventKind::ProxyCreated { sc: 1 },
            EventKind::ProxyReused { sc: 1 },
            EventKind::ProxyDismantled { sc: 1 },
            EventKind::AssignPatch { sc: 1 },
            EventKind::GcRun {
                freed: 7,
                dropped: 1,
            },
            EventKind::HolderLost {
                sc: 1,
                device: 2,
                left: 0,
            },
            EventKind::PumpAction {
                action: "log \"quoted\"\n".to_owned(),
            },
        ];
        let trace = Trace {
            meta: TraceMeta::default(),
            events: kinds
                .into_iter()
                .enumerate()
                .map(|(i, kind)| TraceRecord {
                    stamp: Stamp {
                        seq: i as u64,
                        churn: 0,
                        at_us: i as u64,
                    },
                    kind,
                })
                .collect(),
        };
        let back = Trace::from_json(&trace.to_json()).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,2]",
            "{\"version\":1}",
            "{\"version\":2,\"meta\":{},\"events\":[]}",
            "{\"version\":1,\"meta\":{},\"events\":[]} x",
        ] {
            assert!(Trace::from_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn rejects_unknown_event_names_and_missing_fields() {
        let mut trace = sample();
        trace.events.truncate(1);
        let json = trace.to_json();
        let renamed = json.replace("detach-start", "detach-begin");
        assert!(matches!(
            Trace::from_json(&renamed),
            Err(TraceError::Schema(_))
        ));
        let gutted = json.replace(",\"sc\":1", "");
        assert!(matches!(
            Trace::from_json(&gutted),
            Err(TraceError::Schema(_))
        ));
    }

    #[test]
    fn rejects_duplicate_keys_and_floats() {
        assert!(Trace::from_json("{\"a\":1,\"a\":2}").is_err());
        assert!(Trace::from_json("{\"version\":1.5}").is_err());
    }
}
