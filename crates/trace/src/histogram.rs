//! Fixed-bucket histograms for latencies and sizes.

use std::fmt;

/// Number of power-of-two buckets: bucket `i` holds values whose bit
/// length is `i` (bucket 0 holds the value 0, bucket 1 holds 1, bucket 2
/// holds 2–3, …, bucket 64 holds the top half of the `u64` range).
const BUCKETS: usize = 65;

/// A fixed-bucket histogram over `u64` values (virtual microseconds,
/// bytes). Buckets are powers of two, so merging, exporting and comparing
/// histograms never depends on the data seen — the shape is static.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// The index of the bucket holding `value`.
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// The inclusive `(lo, hi)` value range of bucket `i`.
fn bucket_range(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Non-empty buckets as `(lo, hi, count)` triples, ascending.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = bucket_range(i);
                (lo, hi, c)
            })
            .collect()
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// A deterministic single-line JSON rendering:
    /// `{"count":3,"min":1,"max":80,"mean":30,"buckets":[[1,1,1],[64,127,2]]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{},\"buckets\":[",
            self.count(),
            self.min(),
            self.max(),
            self.mean()
        ));
        for (i, (lo, hi, c)) in self.buckets().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{lo},{hi},{c}]"));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} min={} mean={} max={}",
            self.count(),
            self.min(),
            self.mean(),
            self.max()
        )
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may panic on impossible states
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        let buckets = h.buckets();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 2),
                (8, 15, 1),
                (512, 1023, 1)
            ]
        );
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!((h.count(), h.min(), h.max(), h.mean()), (0, 0, 0, 0));
        assert!(h.buckets().is_empty());
        assert_eq!(
            h.to_json(),
            "{\"count\":0,\"min\":0,\"max\":0,\"mean\":0,\"buckets\":[]}"
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new();
        a.record(5);
        let mut b = Histogram::new();
        b.record(100);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn extreme_values_land_in_the_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.buckets(), vec![(1 << 63, u64::MAX, 1)]);
    }
}
