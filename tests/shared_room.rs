//! Several PDAs in one room: one master server, one simulated world, one
//! laptop whose storage they contend for — "available to any user".

use obiwan::prelude::*;
use std::sync::{Arc, Mutex};

fn room() -> (
    Middleware,
    Middleware,
    DeviceId, // the shared laptop
    obiwan_heap::Oid,
    obiwan_heap::Oid,
) {
    let mut server = Server::new(standard_classes());
    let list_a = server.build_list("Node", 60, 8).expect("list a");
    let list_b = server.build_list("Node", 60, 8).expect("list b");
    let shared_server = server.into_shared();

    let mut net = SimNet::new();
    let pda_a = net.add_device("pda-a", DeviceKind::Pda, 0);
    let pda_b = net.add_device("pda-b", DeviceKind::Pda, 0);
    // Quota fits roughly two cluster blobs (~3 KB each).
    let laptop = net.add_device("shared-laptop", DeviceKind::Laptop, 7 * 1024);
    net.connect(pda_a, laptop, LinkSpec::bluetooth())
        .expect("a");
    net.connect(pda_b, laptop, LinkSpec::bluetooth())
        .expect("b");
    let net = Arc::new(Mutex::new(obiwan_net::NetFabric::sim(net)));

    let build = |home| {
        Middleware::builder()
            .cluster_size(20)
            .device_memory(1 << 20)
            .no_builtin_policies()
            .build_in_world(
                standard_classes(),
                Arc::clone(&shared_server),
                Arc::clone(&net),
                home,
            )
    };
    (build(pda_a), build(pda_b), laptop, list_a, list_b)
}

#[test]
fn two_pdas_share_one_laptops_quota() {
    let (mut a, mut b, laptop, list_a, list_b) = room();
    let root_a = a.replicate_root(list_a).expect("replicate a");
    a.set_global("head", Value::Ref(root_a));
    a.invoke_i64(root_a, "length", vec![]).expect("warm a");
    let root_b = b.replicate_root(list_b).expect("replicate b");
    b.set_global("head", Value::Ref(root_b));
    b.invoke_i64(root_b, "length", vec![]).expect("warm b");

    // Each PDA parks one cluster on the laptop.
    a.swap_out(1).expect("a swaps");
    b.swap_out(1).expect("b swaps");
    {
        let net = a.net();
        let net = net.lock().expect("net");
        assert!(net.stored_bytes(laptop).expect("laptop") > 6_000);
    }
    // The quota is now nearly full: the next swap finds no space.
    let err = a.swap_out(2).expect_err("laptop full");
    assert!(matches!(err, SwapError::NoStorageDevice { .. }));

    // B reloads its cluster, freeing quota; now A's eviction fits.
    b.swap_in(1).expect("b reloads");
    a.swap_out(2).expect("a swaps after space freed");

    // Both worlds remain intact.
    assert_eq!(a.invoke_i64(root_a, "length", vec![]).unwrap(), 60);
    assert_eq!(b.invoke_i64(root_b, "length", vec![]).unwrap(), 60);
}

#[test]
fn shared_clock_orders_both_pdas_transfers() {
    let (mut a, mut b, _laptop, list_a, list_b) = room();
    let root_a = a.replicate_root(list_a).expect("replicate a");
    a.set_global("head", Value::Ref(root_a));
    a.invoke_i64(root_a, "length", vec![]).expect("warm a");
    let root_b = b.replicate_root(list_b).expect("replicate b");
    b.set_global("head", Value::Ref(root_b));
    b.invoke_i64(root_b, "length", vec![]).expect("warm b");

    let t0 = a.net().lock().expect("net").now();
    a.swap_out(1).expect("a swaps");
    let t1 = a.net().lock().expect("net").now();
    b.swap_out(1).expect("b swaps");
    let t2 = b.net().lock().expect("net").now();
    assert!(t1 > t0 && t2 > t1, "one shared airtime timeline");
    // Both PDAs observe the same clock.
    assert_eq!(a.stats().now, b.stats().now);
}

#[test]
fn blob_keys_are_namespaced_per_device() {
    // Both PDAs swap *their own* swap-cluster 1 to the same laptop: the
    // keys carry the swapping device's id, so they coexist and each PDA
    // reloads its own data.
    let (mut a, mut b, laptop, list_a, list_b) = room();
    let root_a = a.replicate_root(list_a).expect("replicate a");
    a.set_global("head", Value::Ref(root_a));
    a.invoke_i64(root_a, "length", vec![]).expect("warm a");
    let root_b = b.replicate_root(list_b).expect("replicate b");
    b.set_global("head", Value::Ref(root_b));
    b.invoke_i64(root_b, "length", vec![]).expect("warm b");

    a.swap_out(1).expect("a swaps");
    b.swap_out(1)
        .expect("b swaps the same (device-local) cluster id");
    {
        let net = a.net();
        let net = net.lock().expect("net");
        assert!(net.holds_blob(laptop, "dev0-sc1-e0"));
        assert!(net.holds_blob(laptop, "dev1-sc1-e0"));
    }
    a.swap_in(1).expect("a reloads its own blob");
    b.swap_in(1).expect("b reloads its own blob");
    assert_eq!(a.invoke_i64(root_a, "length", vec![]).unwrap(), 60);
    assert_eq!(b.invoke_i64(root_b, "length", vec![]).unwrap(), 60);
}
