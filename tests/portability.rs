//! The paper's portability claim, tested literally: the device storing a
//! swapped cluster needs **no VM, no middleware, no class files** — the
//! blob is self-describing XML text that any XML-capable party can read,
//! and the storage protocol is just store / return / drop.

use obiwan::prelude::*;

fn swapped_world() -> (Middleware, String) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 40, 12).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    mw.swap_out(1).expect("swap out");
    let xml = {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        let laptop = net.nearby(mw.home_device())[0];
        let data = net
            .fetch_blob(mw.home_device(), laptop, "dev0-sc1-e0")
            .expect("the blob is on the laptop");
        String::from_utf8(data.to_vec()).expect("the default wire format is XML text")
    };
    (mw, xml)
}

#[test]
fn blob_is_plain_parseable_xml_with_no_middleware_knowledge_needed() {
    let (_mw, xml) = swapped_world();
    // A "dumb" party parses it with the generic XML parser alone — no
    // codec, no class registry, no heap.
    let root = obiwan::xml::Element::parse(&xml).expect("well-formed XML");
    assert_eq!(root.name(), "swap-cluster");
    assert_eq!(root.parse_attr::<u32>("id").unwrap(), 1);
    let objects: Vec<_> = root.children_named("object").collect();
    assert_eq!(objects.len(), 20);
    for o in &objects {
        assert!(o.parse_attr::<u64>("oid").unwrap() > 0);
        assert_eq!(o.require_attr("class").unwrap(), "Node");
        // Every field element is self-describing.
        for f in o.children_named("field") {
            let kind = f.require_attr("kind").unwrap();
            assert!(
                ["ref", "proxyref", "faultref", "int", "double", "bool", "str", "bytes"]
                    .contains(&kind),
                "unknown kind {kind}"
            );
        }
    }
}

#[test]
fn blob_text_is_pure_ascii_safe_for_any_transport() {
    let (_mw, xml) = swapped_world();
    assert!(xml.is_ascii(), "payload bytes travel hex-encoded");
    assert!(!xml.contains('\u{0}'));
}

#[test]
fn storing_device_speaks_only_store_return_drop() {
    // A fresh "device" with no OBIWAN anything: just the three-verb store.
    use obiwan::net::{BlobStore, MemStore};
    let (_mw, xml) = swapped_world();
    let mut dumb = MemStore::new(DeviceId::default(), 1 << 20);
    dumb.store("anything", xml.clone().into()).expect("store");
    assert_eq!(&dumb.fetch("anything").expect("return")[..], xml.as_bytes());
    dumb.drop_blob("anything").expect("drop");
    assert_eq!(dumb.blob_count(), 0);
}

#[test]
fn blob_roundtrips_through_foreign_xml_tooling() {
    let (_mw, xml) = swapped_world();
    // Simulate a storage device that re-serializes the text through its
    // own XML stack (e.g. pretty-printing it differently): the cluster
    // still decodes identically.
    let reparsed = obiwan::xml::Element::parse(&xml).expect("parse");
    let reprinted = reparsed.to_xml();
    let a = obiwan::core::codec::decode(&xml).expect("decode original");
    let b = obiwan::core::codec::decode(&reprinted).expect("decode reprinted");
    assert_eq!(a, b);
}
