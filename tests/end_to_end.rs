//! Full-stack integration tests through the `obiwan` facade: replication →
//! swap-cluster formation → policy-driven eviction → reload → GC
//! cooperation, on one unmodified middleware stack.

use obiwan::prelude::*;

#[test]
fn complete_lifecycle_under_memory_pressure() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 500, 8).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(25)
        .device_memory(14 * 1024) // roughly 40 % of the data
        .victim_policy(VictimPolicy::LeastRecentlyUsed)
        .build(server);
    let root = mw.replicate_root(head).expect("replicate root");
    // The head stays rooted in a global for the whole session (an ObjRef
    // held only in Rust is not a GC root and would die once the cursor
    // moves past it).
    mw.set_global("head", Value::Ref(root));

    // Two full passes: the first replicates under pressure, the second
    // reloads what the first evicted.
    for pass in 0..2 {
        let root = mw.global("head").expect("head").expect_ref().expect("ref");
        mw.set_global("cursor", Value::Ref(root));
        let mut steps = 1;
        loop {
            let cur = mw
                .global("cursor")
                .expect("cursor")
                .expect_ref()
                .expect("ref");
            match mw
                .invoke_resilient(cur, "next", vec![], 1_000)
                .expect("step")
            {
                Value::Ref(next) => {
                    mw.set_global("cursor", Value::Ref(next));
                    steps += 1;
                }
                _ => break,
            }
        }
        assert_eq!(steps, 500, "pass {pass} sees every record");
        assert!(
            mw.process().heap().bytes_used() <= mw.process().heap().capacity(),
            "budget was never exceeded"
        );
    }
    let stats = mw.stats();
    assert!(stats.swap.swap_outs >= 10, "heavy eviction expected");
    assert!(stats.swap.swap_ins >= 5, "second pass reloads");
    assert!(stats.traffic.0 > 0 && stats.traffic.1 > 0);
    assert!(stats.now.as_micros() > 0, "airtime was spent");
}

#[test]
fn payloads_survive_arbitrary_swap_schedules() {
    let mut server = Server::new(standard_classes());
    // Distinct payload per node (build_list varies the fill byte).
    let head = server.build_list("Node", 120, 24).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");

    // Record the baseline payload fingerprint.
    let fingerprint = |mw: &mut Middleware| -> Vec<i64> {
        let mut out = Vec::new();
        mw.set_global("fp", Value::Ref(root));
        loop {
            let cur = mw.global("fp").unwrap().expect_ref().unwrap();
            out.push(mw.invoke_i64(cur, "payload_len", vec![]).unwrap());
            match mw.invoke(cur, "next", vec![]).unwrap() {
                Value::Ref(next) => mw.set_global("fp", Value::Ref(next)),
                _ => break,
            }
        }
        out
    };
    let baseline = fingerprint(&mut mw);
    assert_eq!(baseline.len(), 120);

    // A gnarly schedule: swap evens, reload some, swap odds, reload all.
    for sc in [2u32, 4, 6, 8, 10, 12] {
        mw.swap_out(sc).expect("swap out evens");
    }
    for sc in [4u32, 8] {
        mw.swap_in(sc).expect("partial reload");
    }
    for sc in [1u32, 3, 5] {
        mw.swap_out(sc).expect("swap out odds");
    }
    assert_eq!(fingerprint(&mut mw), baseline, "contents identical");
    let stats = mw.swap_stats();
    assert_eq!(stats.swap_outs, 9);
    assert!(stats.swap_ins >= 2);
}

#[test]
fn same_object_identity_holds_across_proxies_and_swaps() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 60, 8).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");

    // Two different routes to node 30: direct walk and probe_step.
    let mut walk = root;
    for _ in 0..30 {
        walk = mw.invoke_ref(walk, "next", vec![]).expect("walk");
    }
    mw.set_global("a", Value::Ref(walk));
    let probe = mw
        .invoke_ref(root, "probe_step", vec![Value::Int(30)])
        .expect("probe");
    mw.set_global("b", Value::Ref(probe));
    let a = mw.global("a").unwrap().expect_ref().unwrap();
    let b = mw.global("b").unwrap().expect_ref().unwrap();
    assert!(mw.same_object(a, b).expect("identity"), "same node");

    // Identity survives the node's cluster being swapped out.
    mw.swap_out(2).expect("swap");
    let a = mw.global("a").unwrap().expect_ref().unwrap();
    let b = mw.global("b").unwrap().expect_ref().unwrap();
    assert!(mw.same_object(a, b).expect("identity while swapped"));
    // And not equal to a different node.
    assert!(!mw.same_object(a, root).expect("different nodes"));
}

#[test]
fn assign_cursor_iterates_whole_list_without_minting_proxies() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 200, 8).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    mw.run_gc().expect("settle");

    let cursor = mw.make_cursor(root).expect("cursor");
    mw.set_global("cursor", Value::Ref(cursor));
    let before = mw.swap_stats();
    let mut steps = 0;
    loop {
        let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
        match mw.invoke(cur, "next", vec![]).unwrap() {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                steps += 1;
            }
            _ => break,
        }
    }
    let after = mw.swap_stats();
    assert_eq!(steps, 199);
    assert!(
        after.proxies_created - before.proxies_created <= 1,
        "the marked cursor patches itself instead of minting proxies"
    );
    assert!(after.assign_patches - before.assign_patches >= 190);
    // The head global still denotes the list head, not the tail.
    let head_ref = mw.global("head").unwrap().expect_ref().unwrap();
    let len = mw.invoke_i64(head_ref, "length", vec![]).expect("len");
    assert_eq!(len, 200);
}

#[test]
fn swapping_disabled_baseline_runs_without_middleware_objects() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 100, 8).expect("build list");
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(1 << 20)
        .swapping_disabled()
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 100);
    mw.run_gc().expect("gc");
    let heap = mw.process().heap();
    let non_app = heap
        .iter_live()
        .filter(|&r| heap.get(r).unwrap().kind() != ObjectKind::App)
        .count();
    assert_eq!(non_app, 0, "no proxies, no replacements, nothing");
}
