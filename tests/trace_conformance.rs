//! Property-based conformance: whatever interleaving of swap-outs,
//! reloads, collections, traversals and churn a workload performs, the
//! exported lifecycle trace must replay cleanly through
//! `obiwan::trace::conformance::check` — every detach/reload pairs up,
//! epochs only grow, failovers stay under `k`, and the exporter's
//! metadata matches the replayed end state. Runs the full wire-format ×
//! replication-factor matrix the middleware supports.

use obiwan::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    SwapOutVictim,
    SwapOut(u32),
    SwapIn(u32),
    Gc,
    Pump,
    WalkPrefix(usize),
    Churn,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::SwapOutVictim),
        2 => (1u32..=12).prop_map(Op::SwapOut),
        2 => (1u32..=12).prop_map(Op::SwapIn),
        1 => Just(Op::Gc),
        1 => Just(Op::Pump),
        2 => (0usize..100).prop_map(Op::WalkPrefix),
        1 => Just(Op::Churn),
    ]
}

/// Run one random workload and return the exported trace.
fn run_workload(
    ops: &[Op],
    wire_format: obiwan::core::WireFormatKind,
    replication_factor: usize,
) -> obiwan::trace::Trace {
    const N: usize = 100;
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", N, 16).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .wire_format(wire_format)
        .replication_factor(replication_factor)
        .stores(
            (0..3)
                .map(|i| StoreSpec::new(format!("store-{i}"), DeviceKind::Laptop, 16 << 20))
                .collect(),
        )
        .build(server);
    let storage: Vec<DeviceId> = mw
        .net()
        .lock()
        .expect("net")
        .nearby(mw.home_device())
        .into_iter()
        .collect();
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");

    let mut away: Option<DeviceId> = None;
    let mut churn_cursor = 0usize;
    for op in ops {
        match op {
            Op::SwapOutVictim => {
                mw.swap_out_victim().expect("victim eviction");
            }
            Op::SwapOut(sc) => match mw.swap_out(*sc) {
                Ok(_) => {}
                Err(SwapError::BadState { .. })
                | Err(SwapError::UnknownSwapCluster { .. })
                | Err(SwapError::NothingToSwap { .. })
                | Err(SwapError::NoStorageDevice { .. }) => {}
                Err(e) => panic!("swap_out({sc}): {e}"),
            },
            Op::SwapIn(sc) => match mw.swap_in(*sc) {
                Ok(_) => {}
                Err(SwapError::BadState { .. })
                | Err(SwapError::UnknownSwapCluster { .. })
                | Err(SwapError::DataLost { .. })
                | Err(SwapError::BlobUnavailable { .. }) => {}
                Err(e) => panic!("swap_in({sc}): {e}"),
            },
            Op::Gc => {
                mw.run_gc().expect("gc");
            }
            Op::Pump => {
                mw.pump().expect("pump");
            }
            Op::WalkPrefix(n) => {
                mw.set_global("walk", Value::Ref(root));
                for _ in 0..*n {
                    let cur = mw.global("walk").expect("walk").expect_ref().expect("ref");
                    match mw.invoke_resilient(cur, "next", vec![], 100) {
                        Ok(Value::Ref(next)) => mw.set_global("walk", Value::Ref(next)),
                        Ok(_) => break,
                        // Every holder of the next cluster may be away
                        // (the fault path wraps the error in `Repl`).
                        Err(SwapError::BlobUnavailable { .. }) => break,
                        Err(e) if e.to_string().contains("unavailable") => break,
                        Err(e) => panic!("walk: {e}"),
                    }
                }
            }
            Op::Churn => {
                {
                    let net = mw.net();
                    let mut net = net.lock().expect("net");
                    if let Some(back) = away.take() {
                        net.arrive(back).expect("arrive");
                    }
                    let leaver = storage[churn_cursor % storage.len()];
                    churn_cursor += 1;
                    net.depart(leaver).expect("depart");
                    away = Some(leaver);
                }
                mw.pump().expect("pump after churn");
            }
        }
    }
    mw.export_trace()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_workload_trace_conforms(
        ops in proptest::collection::vec(arb_op(), 1..48),
    ) {
        use obiwan::core::WireFormatKind;
        for wire_format in WireFormatKind::ALL {
            for k in [1usize, 2] {
                let trace = run_workload(&ops, wire_format, k);
                let report = obiwan::trace::conformance::check(&trace);
                prop_assert!(
                    report.is_clean(),
                    "{wire_format} k={k}: {report}"
                );
                // The JSON pipeline must preserve the verdict bit-for-bit.
                let round = obiwan::trace::Trace::from_json(&trace.to_json())
                    .expect("exported trace re-imports");
                prop_assert_eq!(&round, &trace);
            }
        }
    }
}
