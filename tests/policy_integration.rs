//! Policy-engine integration through the facade: XML-coded rules steering
//! swapping, cluster-size adaptation ("adaptable size", paper §1/§2), and
//! device-preference actions.

use obiwan::prelude::*;

#[test]
fn xml_policies_steer_eviction_and_logging() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 300, 8).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(8 * 1024)
        .no_builtin_policies()
        .policies_xml(
            r#"<policies>
                 <policy id="pressure" category="machine" priority="5">
                   <on event="memory-pressure"/>
                   <when attr="occupancy-pct" ge="85"/>
                   <then><gc/><swap-out victims="2"/><log message="evicted two"/></then>
                 </policy>
                 <policy id="oom" category="machine" priority="9">
                   <on event="allocation-failed"/>
                   <then><swap-out victims="3"/><gc/><log message="oom handled"/></then>
                 </policy>
               </policies>"#,
        )
        .watermarks(Watermarks::new(70, 85))
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("cursor", Value::Ref(root));
    let mut steps = 1;
    loop {
        let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
        match mw
            .invoke_resilient(cur, "next", vec![], 1_000)
            .expect("step")
        {
            Value::Ref(next) => {
                mw.set_global("cursor", Value::Ref(next));
                steps += 1;
            }
            _ => break,
        }
    }
    assert_eq!(steps, 300);
    let log = mw.take_log();
    assert!(
        log.iter().any(|l| l == "evicted two" || l == "oom handled"),
        "policies must have fired: {log:?}"
    );
    assert!(mw.swap_stats().swap_outs > 0);
}

#[test]
fn adjust_cluster_size_action_adapts_replication_granularity() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 200, 8).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(50)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .policies_xml(
            r#"<policies>
                 <policy id="shrink-clusters" category="application">
                   <on event="cluster-replicated"/>
                   <when attr="objects" ge="40"/>
                   <then><adjust-cluster-size delta="-40"/><log message="shrunk"/></then>
                 </policy>
               </policies>"#,
        )
        .build(server);
    assert_eq!(mw.process().config().cluster_size, 50);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    // The first cluster (50 objects) triggers the rule; subsequent faults
    // use the adapted size (10).
    assert_eq!(mw.process().config().cluster_size, 10);
    mw.invoke_i64(root, "length", vec![]).expect("traverse");
    let m = mw.manager();
    let ids = m.loaded_clusters();
    // 1 × 50 + 15 × 10 = 200 objects.
    assert_eq!(ids.len(), 16, "one big cluster then small ones: {ids:?}");
    assert_eq!(m.cluster(1).expect("sc1").member_count(), 50);
    assert_eq!(m.cluster(2).expect("sc2").member_count(), 10);
    assert!(mw.take_log().contains(&"shrunk".to_string()));
}

#[test]
fn prefer_device_action_steers_placement() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 60, 8).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .stores(vec![
            // The desktop has more free space, so without the preference
            // it would win the placement.
            StoreSpec::new("big-desktop", DeviceKind::Desktop, 1 << 20),
            StoreSpec::new("small-mote", DeviceKind::Mote, 64 * 1024),
        ])
        .policies_xml(
            r#"<policies>
                 <policy id="prefer-motes" category="user">
                   <on event="cluster-replicated"/>
                   <then><prefer-device kind="mote"/></then>
                 </policy>
               </policies>"#,
        )
        .build(server);
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    mw.swap_out(1).expect("swap");
    let net = mw.net();
    let net = net.lock().expect("net");
    let mote = net
        .nearby(mw.home_device())
        .into_iter()
        .find(|d| net.profile(*d).unwrap().kind == DeviceKind::Mote)
        .expect("mote exists");
    assert!(
        net.stored_bytes(mote).unwrap() > 0,
        "the user's preference for motes must win over free space"
    );
}

#[test]
fn middleware_stack_is_send() {
    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}
    assert_send::<Middleware>();
    assert_send::<Process>();
    assert_send::<SwappingManager>();
    // The sharded engine is shared across threads as a bare
    // `Arc<SwappingManager>`; losing `Sync` would be a breaking change.
    assert_sync::<SwappingManager>();
    assert_send::<Server>();
}
