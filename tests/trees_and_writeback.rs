//! Branching-graph workloads and the replica write-back path: trees give
//! the BFS clustering non-trivial swap-cluster boundaries, and `commit`
//! exercises OBIWAN's update half ("creation and update of object
//! replicas", paper §2).

use obiwan::prelude::*;
use obiwan::replication::WireValue;

fn tree_world(depth: u32, cluster: usize) -> (Middleware, ObjRef, i64) {
    let mut server = Server::new(standard_classes());
    let root_oid = server.build_tree(depth, 8).expect("build tree");
    let n = (1i64 << depth) - 1;
    let mut mw = Middleware::builder()
        .cluster_size(cluster)
        .device_memory(4 << 20)
        .no_builtin_policies()
        .build(server);
    let root = mw.replicate_root(root_oid).expect("replicate");
    mw.set_global("tree", Value::Ref(root));
    (mw, root, n)
}

#[test]
fn tree_traversals_fault_the_whole_tree_in() {
    let (mut mw, root, n) = tree_world(7, 10); // 127 nodes
    assert_eq!(mw.invoke_i64(root, "count", vec![]).unwrap(), n);
    assert_eq!(mw.invoke_i64(root, "depth", vec![]).unwrap(), 7);
    // Tags are 1..=n, so the sum is n(n+1)/2.
    assert_eq!(
        mw.invoke_i64(root, "sum_tags", vec![]).unwrap(),
        n * (n + 1) / 2
    );
    assert_eq!(mw.process().replicated_objects(), n as usize);
}

#[test]
fn tree_sum_is_invariant_under_swapping_subtrees() {
    let (mut mw, root, n) = tree_world(8, 16); // 255 nodes, 16 clusters
    let expected = n * (n + 1) / 2;
    assert_eq!(mw.invoke_i64(root, "sum_tags", vec![]).unwrap(), expected);
    // Swap out every other cluster — with BFS clustering these are
    // horizontal slabs of the tree, so boundaries cut through many edges.
    let clusters = mw.manager().loaded_clusters();
    for sc in clusters.iter().copied().filter(|sc| sc % 2 == 0) {
        mw.swap_out(sc).expect("swap out");
    }
    assert_eq!(mw.invoke_i64(root, "sum_tags", vec![]).unwrap(), expected);
    // And again with the odd ones (the evens just reloaded).
    for sc in clusters.iter().copied().filter(|sc| sc % 2 == 1) {
        mw.swap_out(sc).expect("swap out odds");
    }
    assert_eq!(mw.invoke_i64(root, "sum_tags", vec![]).unwrap(), expected);
    assert!(mw.swap_stats().swap_ins >= clusters.len() as u64 / 2);
}

#[test]
fn find_max_tag_returns_identity_preserving_reference() {
    let (mut mw, root, n) = tree_world(6, 8);
    let max = mw.invoke_ref(root, "find_max_tag", vec![]).expect("max");
    mw.set_global("max", Value::Ref(max));
    assert_eq!(mw.invoke_i64(max, "tag_of", vec![]).unwrap(), n);
    // Swap the cluster holding it out; the reference still denotes it.
    let max_before = mw.global("max").unwrap().expect_ref().unwrap();
    let victims = mw.manager().loaded_clusters();
    for sc in victims {
        mw.swap_out(sc).expect("swap");
    }
    let max_after = mw.global("max").unwrap().expect_ref().unwrap();
    assert!(mw.same_object(max_before, max_after).unwrap());
    assert_eq!(mw.invoke_i64(max_after, "tag_of", vec![]).unwrap(), n);
}

#[test]
fn committed_updates_reach_the_master_graph() {
    let mut server = Server::new(standard_classes());
    let root_oid = server.build_tree(4, 8).expect("build tree");
    let shared = server.into_shared();
    let universe = standard_classes();
    let mut mw = Middleware::builder()
        .cluster_size(5)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build_shared(universe, shared.clone());
    let root = mw.replicate_root(root_oid).expect("replicate");
    mw.set_global("tree", Value::Ref(root));
    mw.invoke_i64(root, "count", vec![]).expect("warm");

    // Mutate the root's tag locally and commit.
    let handle = mw.process().lookup_replica(root_oid).expect("root replica");
    mw.process_mut()
        .set_field_value(handle, "tag", Value::Int(999))
        .expect("local write");
    mw.commit(root_oid).expect("commit");

    // The master saw it.
    {
        let srv = shared.lock().expect("server");
        assert_eq!(
            srv.get_field(root_oid, "tag").expect("tag"),
            WireValue::Scalar(Value::Int(999))
        );
        assert_eq!(srv.updates_applied(), 1);
    }

    // A second device replicating fresh sees the committed value.
    let mut mw2 = Middleware::builder()
        .cluster_size(5)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build_shared(standard_classes(), shared);
    let root2 = mw2.replicate_root(root_oid).expect("replicate on PDA 2");
    mw2.set_global("tree", Value::Ref(root2));
    let handle2 = mw2.process().lookup_replica(root_oid).expect("replica 2");
    assert_eq!(
        mw2.process()
            .field_value(handle2, "tag")
            .expect("tag")
            .expect_int()
            .expect("int"),
        999
    );
}

#[test]
fn commit_all_pushes_every_replica_and_skips_swapped_state() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 40, 8).expect("build list");
    let shared = server.into_shared();
    let mut mw = Middleware::builder()
        .cluster_size(10)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .build_shared(standard_classes(), shared.clone());
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");

    // Swap cluster 2 out: its objects' state now lives in the blob and is
    // not committable (the replicas are gone).
    mw.swap_out(2).expect("swap out");
    let committed = mw.commit_all().expect("sync");
    assert_eq!(committed, 30, "40 nodes minus the 10 swapped ones");
    assert_eq!(shared.lock().expect("server").updates_applied(), 30);

    // Reload and sync again: now everything commits.
    mw.swap_in(2).expect("reload");
    let committed = mw.commit_all().expect("sync 2");
    assert_eq!(committed, 40);
}

#[test]
fn two_devices_swap_independently_from_one_master() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 100, 8).expect("build list");
    let shared = server.into_shared();
    let build = || {
        Middleware::builder()
            .cluster_size(20)
            .device_memory(1 << 20)
            .no_builtin_policies()
            .build_shared(standard_classes(), shared.clone())
    };
    let mut pda_a = build();
    let mut pda_b = build();
    let root_a = pda_a.replicate_root(head).expect("replicate A");
    pda_a.set_global("head", Value::Ref(root_a));
    let root_b = pda_b.replicate_root(head).expect("replicate B");
    pda_b.set_global("head", Value::Ref(root_b));
    assert_eq!(pda_a.invoke_i64(root_a, "length", vec![]).unwrap(), 100);
    assert_eq!(pda_b.invoke_i64(root_b, "length", vec![]).unwrap(), 100);

    // A swaps clusters 1-2 out; B is unaffected (separate rooms, separate
    // swap state, one master).
    pda_a.swap_out(1).expect("A swaps 1");
    pda_a.swap_out(2).expect("A swaps 2");
    assert_eq!(pda_b.swap_stats().swap_outs, 0);
    assert_eq!(pda_b.invoke_i64(root_b, "length", vec![]).unwrap(), 100);
    assert_eq!(pda_a.invoke_i64(root_a, "length", vec![]).unwrap(), 100);
    assert_eq!(pda_a.swap_stats().swap_ins, 2);
    let (clusters_served, objects_served) = {
        let srv = shared.lock().expect("server");
        srv.served()
    };
    assert_eq!(objects_served, 200, "each device replicated all 100 once");
    assert_eq!(clusters_served, 10);
}
