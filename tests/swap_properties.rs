//! Property-based tests of the swapping machinery: under *arbitrary*
//! interleavings of swap-outs, reloads, collections and traversals, the
//! application-visible list contents never change and the memory budget is
//! never exceeded.

use obiwan::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    SwapOutVictim,
    SwapOut(u32),
    SwapIn(u32),
    Gc,
    TraverseCheck,
    WalkPrefix(usize),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::SwapOutVictim),
        2 => (1u32..=12).prop_map(Op::SwapOut),
        2 => (1u32..=12).prop_map(Op::SwapIn),
        1 => Just(Op::Gc),
        2 => Just(Op::TraverseCheck),
        2 => (0usize..120).prop_map(Op::WalkPrefix),
    ]
}

fn fingerprint(mw: &mut Middleware, root: ObjRef, expected_len: usize) -> Vec<i64> {
    let mut out = Vec::new();
    mw.set_global("fp_cursor", Value::Ref(root));
    loop {
        let cur = mw
            .global("fp_cursor")
            .expect("cursor")
            .expect_ref()
            .expect("ref");
        out.push(
            mw.invoke_resilient(cur, "payload_len", vec![], 100)
                .expect("payload")
                .expect_int()
                .expect("int"),
        );
        match mw.invoke_resilient(cur, "next", vec![], 100).expect("step") {
            Value::Ref(next) => mw.set_global("fp_cursor", Value::Ref(next)),
            _ => break,
        }
    }
    assert_eq!(out.len(), expected_len);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn list_contents_invariant_under_arbitrary_swapping(
        ops in proptest::collection::vec(arb_op(), 1..40),
        payload in 4usize..40,
    ) {
        const N: usize = 120;
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", N, payload).expect("build");
        let mut mw = Middleware::builder()
            .cluster_size(10)
            .device_memory(1 << 20)
            .no_builtin_policies()
            .build(server);
        let root = mw.replicate_root(head).expect("replicate");
        mw.set_global("head", Value::Ref(root));
        mw.invoke_i64(root, "length", vec![]).expect("warm");
        let baseline = fingerprint(&mut mw, root, N);

        for op in ops {
            match op {
                Op::SwapOutVictim => {
                    let _ = mw.swap_out_victim().expect("victim eviction is infallible here");
                }
                Op::SwapOut(sc) => match mw.swap_out(sc) {
                    Ok(_) => {}
                    Err(SwapError::BadState { .. })
                    | Err(SwapError::UnknownSwapCluster { .. })
                    | Err(SwapError::NothingToSwap { .. }) => {}
                    Err(e) => panic!("swap_out({sc}): {e}"),
                },
                Op::SwapIn(sc) => match mw.swap_in(sc) {
                    Ok(_) => {}
                    Err(SwapError::BadState { .. })
                    | Err(SwapError::UnknownSwapCluster { .. })
                    // A dropped cluster (replacement collected because the
                    // application no longer reaches it) reports data loss.
                    | Err(SwapError::DataLost { .. }) => {}
                    Err(e) => panic!("swap_in({sc}): {e}"),
                },
                Op::Gc => {
                    mw.run_gc().expect("gc");
                }
                Op::TraverseCheck => {
                    prop_assert_eq!(&fingerprint(&mut mw, root, N), &baseline);
                }
                Op::WalkPrefix(n) => {
                    mw.set_global("walk", Value::Ref(root));
                    for _ in 0..n {
                        let cur = mw.global("walk").unwrap().expect_ref().unwrap();
                        match mw.invoke_resilient(cur, "next", vec![], 100).expect("walk") {
                            Value::Ref(next) => mw.set_global("walk", Value::Ref(next)),
                            _ => break,
                        }
                    }
                }
            }
            prop_assert!(
                mw.process().heap().bytes_used() <= mw.process().heap().capacity()
            );
        }
        // Final full verification.
        prop_assert_eq!(&fingerprint(&mut mw, root, N), &baseline);
    }

    #[test]
    fn pressured_walks_always_complete(
        memory_pct in 25usize..80,
        cluster in proptest::sample::select(vec![5usize, 10, 20, 30]),
        payload in 4usize..24,
    ) {
        const N: usize = 200;
        let mut server = Server::new(standard_classes());
        let head = server.build_list("Node", N, payload).expect("build");
        let node_size = 24 + 2 * 16 + payload;
        let mut mw = Middleware::builder()
            .cluster_size(cluster)
            .device_memory((N * node_size) * memory_pct / 100 + 4096)
            .build(server);
        let root = mw.replicate_root(head).expect("replicate");
        mw.set_global("cursor", Value::Ref(root));
        let mut steps = 1usize;
        loop {
            let cur = mw.global("cursor").unwrap().expect_ref().unwrap();
            match mw.invoke_resilient(cur, "next", vec![], 2_000).expect("step") {
                Value::Ref(next) => {
                    mw.set_global("cursor", Value::Ref(next));
                    steps += 1;
                }
                _ => break,
            }
            prop_assert!(
                mw.process().heap().bytes_used() <= mw.process().heap().capacity()
            );
        }
        prop_assert_eq!(steps, N);
    }
}
