//! The paper's §7 scenario end-to-end: storage reached through *relays* —
//! "small memory-enabled devices with wireless connectivity, scattered
//! all-over, that are available to any user (either to store data or to
//! relay communications)".

use obiwan::prelude::*;

/// A PDA with no direct storage: its only neighbour is a storageless mote
/// that relays to a desktop two hops away.
fn relay_world() -> (Middleware, ObjRef, DeviceId, DeviceId) {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 60, 8).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .swap_config(SwapConfig::default().allow_relays(true))
        .stores(vec![]) // no direct storage at all
        .build(server);
    let (relay, desktop) = {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        let relay = net.add_device("hall-mote", DeviceKind::Mote, 0); // relays only
        let desktop = net.add_device("office-desktop", DeviceKind::Desktop, 1 << 20);
        net.connect(mw.home_device(), relay, LinkSpec::mote_radio())
            .expect("link 1");
        net.connect(relay, desktop, LinkSpec::wifi())
            .expect("link 2");
        (relay, desktop)
    };
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    (mw, root, relay, desktop)
}

#[test]
fn swap_out_reaches_storage_through_a_relay() {
    let (mut mw, root, relay, desktop) = relay_world();
    let shipped = mw.swap_out(2).expect("relayed swap-out");
    assert!(shipped > 0);
    let net = mw.net();
    {
        let net = net.lock().expect("net");
        // The store charges key bytes on top of the payload.
        assert_eq!(
            net.stored_bytes(desktop).expect("desktop"),
            shipped + "dev0-sc2-e0".len(),
            "the blob lives on the two-hop desktop"
        );
        assert_eq!(
            net.stored_bytes(relay).expect("relay"),
            0,
            "the relay forwards, it does not store"
        );
        // The relay hops were traced.
        assert!(net
            .trace()
            .iter()
            .any(|e| matches!(&e.kind, obiwan::net::TraceKind::BlobRelayed { .. })));
    }
    // Reload works through the same route.
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 60);
    assert_eq!(mw.swap_stats().swap_ins, 1);
}

#[test]
fn relayed_transfer_pays_every_hops_airtime() {
    let (mut mw, _root, _relay, _desktop) = relay_world();
    let net = mw.net();
    let t0 = net.lock().expect("net").now();
    let shipped = mw.swap_out(1).expect("swap");
    let elapsed = net.lock().expect("net").now() - t0;
    let expected = LinkSpec::mote_radio().transfer_time(shipped).as_micros()
        + LinkSpec::wifi().transfer_time(shipped).as_micros();
    assert_eq!(elapsed.as_micros(), expected, "both hops were paid for");
}

#[test]
fn departed_relay_means_blob_unavailable_until_it_returns() {
    let (mut mw, root, relay, desktop) = relay_world();
    mw.swap_out(2).expect("swap");
    mw.net().lock().expect("net").depart(relay).expect("depart");
    // The blob still exists on the desktop, but no route reaches it: that
    // is *transient* unavailability, not data loss — the error names the
    // holder that was tried so the caller can wait for it.
    let err = mw.swap_in(2).expect_err("no route");
    match err {
        SwapError::BlobUnavailable {
            swap_cluster: 2,
            ref tried,
            ..
        } => assert_eq!(tried.as_slice(), &[desktop]),
        other => panic!("expected BlobUnavailable for sc2, got {other:?}"),
    }
    // The relay wanders back: the data is reachable again.
    mw.net().lock().expect("net").arrive(relay).expect("arrive");
    mw.swap_in(2).expect("reload through restored route");
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 60);
}

/// Two storage desktops, each behind its own relay, with
/// `replication_factor = 2`: losing one relay between swap-out and reload
/// must fail over to the holder on the surviving route — no panic, no
/// opaque `NetError`.
#[test]
fn reload_fails_over_to_the_holder_on_the_surviving_route() {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 60, 8).expect("build");
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .swap_config(
            SwapConfig::default()
                .allow_relays(true)
                .replication_factor(2),
        )
        .stores(vec![]) // storage only through the relays
        .build(server);
    let (relay_a, relay_b, desk_a, desk_b) = {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        let relay_a = net.add_device("mote-a", DeviceKind::Mote, 0);
        let relay_b = net.add_device("mote-b", DeviceKind::Mote, 0);
        let desk_a = net.add_device("desk-a", DeviceKind::Desktop, 1 << 20);
        let desk_b = net.add_device("desk-b", DeviceKind::Desktop, 1 << 20);
        net.connect(mw.home_device(), relay_a, LinkSpec::mote_radio())
            .expect("link");
        net.connect(mw.home_device(), relay_b, LinkSpec::mote_radio())
            .expect("link");
        net.connect(relay_a, desk_a, LinkSpec::wifi())
            .expect("link");
        net.connect(relay_b, desk_b, LinkSpec::wifi())
            .expect("link");
        (relay_a, relay_b, desk_a, desk_b)
    };
    let root = mw.replicate_root(head).expect("replicate");
    mw.set_global("head", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![]).expect("warm");
    mw.swap_out(2).expect("swap");
    {
        let net = mw.net();
        let net = net.lock().expect("net");
        assert!(
            net.stored_bytes(desk_a).expect("a") > 0 && net.stored_bytes(desk_b).expect("b") > 0,
            "both desktops hold a copy"
        );
    }
    // The relay in front of the primary holder walks away.
    mw.net()
        .lock()
        .expect("net")
        .depart(relay_a)
        .expect("depart");
    mw.swap_in(2).expect("failover reload via the other relay");
    assert_eq!(mw.invoke_i64(root, "length", vec![]).unwrap(), 60);
    let stats = mw.swap_stats();
    assert_eq!(stats.swap_ins, 1);
    assert_eq!(
        stats.reload_failovers, 1,
        "the reload had to skip the unreachable primary"
    );
    let _ = (relay_b, desk_b);
}

#[test]
fn gc_drop_instructions_travel_the_relay_route() {
    let (mut mw, root, _relay, desktop) = relay_world();
    // Reach node 19 (cluster 1's last node) and sever after it, so
    // cluster 2 becomes garbage after we swap it out.
    let mut cur = root;
    for _ in 0..19 {
        cur = mw.invoke_ref(cur, "next", vec![]).expect("walk");
    }
    mw.set_global("cut", Value::Ref(cur));
    mw.swap_out(2).expect("swap");
    let cut = mw.global("cut").unwrap().expect_ref().unwrap();
    let handle = match obiwan::core::identity_key(mw.process(), cut).expect("key") {
        obiwan::core::IdentityKey::Oid(oid) => {
            mw.process().lookup_replica(oid).expect("node 19 loaded")
        }
        obiwan::core::IdentityKey::Handle(h) => h,
    };
    mw.process_mut()
        .set_field_value(handle, "next", Value::Null)
        .expect("sever");
    mw.run_gc().expect("gc 1");
    mw.run_gc().expect("gc 2");
    let net = mw.net();
    assert_eq!(
        net.lock().expect("net").stored_bytes(desktop).unwrap(),
        0,
        "the drop instruction crossed the relay"
    );
    assert!(mw.swap_stats().blobs_dropped >= 1);
}
