//! Quickstart: the paper's prototypical scenario in fifty lines.
//!
//! A PDA replicates a list of objects from a server, runs out of memory,
//! swaps a cluster (as XML text) to the laptop across the room, and
//! transparently reloads it on the next access.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use obiwan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The server holds the master object graph: 120 list nodes of 64 bytes.
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 120, 8)?;

    // The PDA: clusters of 20 objects, one laptop in the room.
    let mut mw = Middleware::builder()
        .cluster_size(20)
        .device_memory(64 * 1024)
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("head", Value::Ref(root));

    // Traverse the whole list: clusters fault in one by one.
    let len = mw.invoke_i64(root, "length", vec![])?;
    println!("replicated and traversed a {len}-node list");
    println!("heap: {} B in use", mw.process().heap().bytes_used());

    // Swap the second cluster out by hand (policies normally decide this).
    let shipped = mw.swap_out(2)?;
    println!(
        "swapped cluster 2 out: {shipped} B of XML shipped, heap now {} B",
        mw.process().heap().bytes_used()
    );

    // Peek at what the laptop actually stores: plain XML text.
    {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        let laptop = net.nearby(mw.home_device())[0];
        let xml = net.fetch_blob(mw.home_device(), laptop, "dev0-sc2-e0")?;
        let text = std::str::from_utf8(&xml)?;
        let preview: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        println!("--- on the laptop ---\n{preview}\n…");
    }

    // Touch the list again: the swapped cluster reloads transparently.
    let len = mw.invoke_i64(root, "length", vec![])?;
    println!("traversed again: {len} nodes (cluster reloaded on access)");

    let stats = mw.stats();
    println!(
        "swap-outs: {}, reloads: {}, proxies created: {}, airtime: {}",
        stats.swap.swap_outs, stats.swap.swap_ins, stats.swap.proxies_created, stats.now
    );
    Ok(())
}
