//! A commuter's PDA working offline-ish: it edits records on the train,
//! swaps cold pages through whatever relay chain currently reaches the
//! station kiosk, and commits its changes back to the master server when
//! it gets home — replication's update half plus the §7 relay vision in
//! one run.
//!
//! ```text
//! cargo run --example commuter_sync
//! ```

use obiwan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 120, 16)?;
    let shared = server.into_shared();

    // The PDA's room: no direct storage; a fellow commuter's phone relays
    // to the station kiosk.
    let mut mw = Middleware::builder()
        .cluster_size(30)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .swap_config(SwapConfig::default().allow_relays(true))
        .stores(vec![])
        .build_shared(standard_classes(), shared.clone());
    let (phone, kiosk) = {
        let net = mw.net();
        let mut net = net.lock().expect("net");
        let phone = net.add_device("fellow-phone", DeviceKind::Pda, 0);
        let kiosk = net.add_device("station-kiosk", DeviceKind::AccessPoint, 1 << 20);
        net.connect(mw.home_device(), phone, LinkSpec::bluetooth())?;
        net.connect(phone, kiosk, LinkSpec::wifi())?;
        (phone, kiosk)
    };

    let root = mw.replicate_root(head)?;
    mw.set_global("records", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![])?;
    println!("on the train: 120 records replicated, editing the first page…");

    // Edit the first ten records (device-local writes).
    let mut edited = 0;
    let mut cur_oid = head;
    for i in 0..10u64 {
        let handle = mw
            .process()
            .lookup_replica(cur_oid)
            .expect("first page is loaded");
        mw.process_mut().set_field_value(
            handle,
            "payload",
            Value::Bytes(bytes::Bytes::from(format!("edited-{i:02}-on-train"))),
        )?;
        edited += 1;
        cur_oid = obiwan_heap::Oid(cur_oid.0 + 1);
    }
    println!("edited {edited} records locally");

    // Memory gets tight for the next task: park the *unedited* cold pages
    // on the kiosk, through the phone.
    for page in [3u32, 4] {
        let bytes = mw.swap_out(page)?;
        println!("parked page {page} on the kiosk via the phone ({bytes} B, 2 hops)");
    }
    {
        let net = mw.net();
        let net = net.lock().expect("net");
        assert!(net.stored_bytes(kiosk)? > 0);
        assert_eq!(net.stored_bytes(phone)?, 0, "the phone only relays");
    }

    // Home: commit everything that is resident. The swapped pages are
    // unedited, so nothing is lost by skipping them.
    let committed = mw.commit_all()?;
    println!("\nat home: committed {committed} resident records to the server");
    {
        let srv = shared.lock().expect("server");
        assert_eq!(srv.updates_applied(), committed as u64);
        // The first record's edit is visible on the master.
        let v = srv.get_field(head, "payload")?;
        if let obiwan::replication::WireValue::Scalar(Value::Bytes(b)) = v {
            println!(
                "server sees record 1 payload: {:?}",
                std::str::from_utf8(&b).unwrap_or("<binary>")
            );
        }
    }

    // Next morning the kiosk pages reload on first touch; commit the rest.
    mw.invoke_i64(root, "length", vec![])?;
    let committed = mw.commit_all()?;
    println!("next morning: pages reloaded, committed {committed} records");
    let stats = mw.stats();
    println!(
        "totals: swap-outs {}, reloads {}, airtime {}",
        stats.swap.swap_outs, stats.swap.swap_ins, stats.now
    );
    Ok(())
}
