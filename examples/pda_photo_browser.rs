//! A photo-album browser on a memory-constrained PDA — the usage scenario
//! the paper's introduction motivates, with a *custom* application class
//! universe and the policy engine making the swap decisions.
//!
//! An `Album` is a chain of `Photo` objects (each with a multi-KB pixel
//! payload). The user browses albums in turn and keeps coming back to the
//! first one; the middleware's memory-pressure policy (loaded from the XML
//! dialect) swaps cold albums to the laptop and reloads them on access.
//!
//! ```text
//! cargo run --example pda_photo_browser
//! ```

use obiwan::prelude::*;

const ALBUMS: usize = 6;
const PHOTOS_PER_ALBUM: usize = 8;
const PIXELS_PER_PHOTO: usize = 2 * 1024;

/// Build the application universe: Album and Photo classes with browsing
/// methods (the code `obicomp` would augment).
fn universe() -> obiwan::replication::Universe {
    let mut b = UniverseBuilder::new();
    // Field order matters for the DFS clustering strategy below: with
    // `next_album` declared first, a depth-first cluster fill exhausts an
    // album's own photo chain before crossing to the next album — one
    // album per replication cluster.
    let album = b.class(
        ClassBuilder::new("Album")
            .str_field("title")
            .ref_field("next_album")
            .ref_field("first_photo"),
    );
    let photo = b.class(
        ClassBuilder::new("Photo")
            .str_field("caption")
            .bytes_field("pixels")
            .ref_field("next"),
    );
    b.method(photo, "view", |p, this, _args| {
        // "Viewing" decodes the payload: touch every pixel.
        let sum: i64 = match p.field_value(this, "pixels")? {
            Value::Bytes(px) => px.iter().map(|&b| b as i64).sum(),
            _ => 0,
        };
        Ok(Value::Int(sum))
    });
    b.method(photo, "next", |p, this, _args| p.field_value(this, "next"));
    b.method(album, "first_photo", |p, this, _args| {
        p.field_value(this, "first_photo")
    });
    b.method(album, "next_album", |p, this, _args| {
        p.field_value(this, "next_album")
    });
    b.method(album, "title", |p, this, _args| {
        p.field_value(this, "title")
    });
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let u = universe();
    let mut server = Server::new(u);
    server.set_strategy(ClusterStrategy::Dfs);

    // Master graph: a chain of albums, each a chain of photos.
    let mut album_oids = Vec::new();
    for a in 0..ALBUMS {
        let album = server.create("Album")?;
        server.set_scalar(album, "title", Value::from(format!("Album {a}")))?;
        let mut prev_photo: Option<Oid> = None;
        for ph in 0..PHOTOS_PER_ALBUM {
            let photo = server.create("Photo")?;
            server.set_scalar(photo, "caption", Value::from(format!("IMG_{a:02}{ph:02}")))?;
            server.set_scalar(
                photo,
                "pixels",
                Value::Bytes(bytes::Bytes::from(vec![
                    (a * 16 + ph) as u8;
                    PIXELS_PER_PHOTO
                ])),
            )?;
            match prev_photo {
                Some(prev) => server.set_ref(prev, "next", Some(photo))?,
                None => server.set_ref(album, "first_photo", Some(photo))?,
            }
            prev_photo = Some(photo);
        }
        if let Some(&prev_album) = album_oids.last() {
            server.set_ref(prev_album, "next_album", Some(album))?;
        }
        album_oids.push(album);
    }

    // The PDA: memory for roughly two albums; policies from the XML
    // dialect (the paper: "Policies … are coded in XML").
    let album_bytes = PHOTOS_PER_ALBUM * (PIXELS_PER_PHOTO + 100);
    let mut mw = Middleware::builder()
        .cluster_size(1 + PHOTOS_PER_ALBUM) // one album (plus photos) per cluster
        .device_memory(album_bytes * 5 / 2)
        .victim_policy(VictimPolicy::LeastRecentlyUsed)
        .no_builtin_policies()
        .policies_xml(
            r#"<policies>
                 <policy id="pda-pressure" category="machine" priority="10">
                   <on event="memory-pressure"/>
                   <when attr="occupancy-pct" ge="80"/>
                   <then><gc/><swap-out victims="1"/><log message="pressure: evicted a cold album"/></then>
                 </policy>
                 <policy id="pda-oom" category="machine" priority="20">
                   <on event="allocation-failed"/>
                   <then><swap-out victims="2"/><gc/><log message="allocation failed: emergency eviction"/></then>
                 </policy>
               </policies>"#,
        )
        .stores(vec![StoreSpec::new("living-room-laptop", DeviceKind::Laptop, 4 << 20)])
        .watermarks(Watermarks::new(60, 80))
        .build(server);

    let first_album = mw.replicate_root(album_oids[0])?;
    mw.set_global("album0", Value::Ref(first_album));

    // Browse: every album once, re-viewing album 0 in between.
    let mut viewed = 0usize;
    mw.set_global("cursor_album", Value::Ref(first_album));
    for round in 0..ALBUMS {
        let album = mw
            .global("cursor_album")?
            .expect_ref()
            .expect("album cursor");
        let title = mw.invoke_resilient(album, "title", vec![], 100)?;
        viewed += view_album(&mut mw, album)?;
        println!(
            "viewed {title} — heap {:>6} B / {} B, swapped-out albums: {:?}",
            mw.process().heap().bytes_used(),
            mw.process().heap().capacity(),
            mw.manager().swapped_clusters(),
        );
        // Revisit the favorite album (keeps it hot).
        let fav = mw.global("album0")?.expect_ref().expect("album 0");
        viewed += view_album(&mut mw, fav)?;
        // Move on.
        match mw.invoke_resilient(album, "next_album", vec![], 100)? {
            Value::Ref(next) => mw.set_global("cursor_album", Value::Ref(next)),
            _ => {
                println!("(end of album chain after round {round})");
                break;
            }
        }
    }

    println!("\nviewed {viewed} photos in total");
    for line in mw.take_log() {
        println!("policy log: {line}");
    }
    let stats = mw.stats();
    println!(
        "swap-outs: {}, reloads: {}, bytes over the air: {} out / {} back, airtime {}",
        stats.swap.swap_outs,
        stats.swap.swap_ins,
        stats.swap.bytes_swapped_out,
        stats.swap.bytes_swapped_in,
        stats.now
    );
    assert_eq!(viewed, ALBUMS * PHOTOS_PER_ALBUM * 2);
    Ok(())
}

/// Walk an album's photo chain, viewing each photo.
fn view_album(mw: &mut Middleware, album: ObjRef) -> Result<usize, Box<dyn std::error::Error>> {
    let mut viewed = 0;
    let mut cursor = mw.invoke_resilient(album, "first_photo", vec![], 100)?;
    mw.set_global("cursor_photo", cursor.clone());
    while let Value::Ref(photo) = cursor {
        mw.invoke_resilient(photo, "view", vec![], 100)?;
        viewed += 1;
        cursor = mw.invoke_resilient(photo, "next", vec![], 100)?;
        mw.set_global("cursor_photo", cursor.clone());
    }
    Ok(viewed)
}
