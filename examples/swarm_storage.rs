//! The paper's closing vision: "a myriad of small memory-enabled devices
//! with wireless connectivity, scattered all-over, available to any user
//! either to store data or to relay communications".
//!
//! A PDA spreads its swapped clusters across a swarm of motes, each with a
//! quota barely bigger than one blob. The placement logic (most free space
//! first) stripes the clusters across the room; when motes churn away, only
//! the clusters they carried are affected — everything else keeps working.
//!
//! ```text
//! cargo run --example swarm_storage
//! ```

use obiwan::prelude::*;

const MOTES: usize = 12;
const PAGES: u32 = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = Server::new(standard_classes());
    let head = server.build_list("Node", 25 * PAGES as usize, 16)?;

    let stores: Vec<StoreSpec> = (0..MOTES)
        .map(|i| {
            StoreSpec::new(format!("mote-{i:02}"), DeviceKind::Mote, 8 * 1024)
                .with_link(LinkSpec::mote_radio())
        })
        .collect();
    let mut mw = Middleware::builder()
        .cluster_size(25)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .stores(stores)
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("data", Value::Ref(root));
    mw.invoke_i64(root, "length", vec![])?;

    // Swap every page out: the quota forces striping across the swarm.
    for page in 1..=PAGES {
        mw.swap_out(page)?;
    }
    println!("all {PAGES} pages swapped out across the swarm:");
    let net = mw.net();
    {
        let net = net.lock().expect("net");
        for d in net.nearby(mw.home_device()) {
            let p = net.profile(d)?;
            let used = net.stored_bytes(d)?;
            if used > 0 {
                println!(
                    "  {:<10} {:>5} B ({} page blobs)",
                    p.name,
                    used,
                    used / 2100
                );
            }
        }
    }
    println!(
        "PDA heap after swap-out: {} B (proxies + replacement objects only)",
        mw.process().heap().bytes_used()
    );

    // Churn: a third of the swarm leaves.
    let (gone, affected) = {
        let mut net = net.lock().expect("net");
        let mut gone = Vec::new();
        let mut affected = 0;
        for d in net.nearby(mw.home_device()) {
            if gone.len() < MOTES / 3 {
                if net.stored_bytes(d)? > 0 {
                    affected += 1;
                }
                net.depart(d)?;
                gone.push(d);
            }
        }
        (gone, affected)
    };
    println!(
        "\n{} motes departed ({} of them carried our pages)",
        gone.len(),
        affected
    );

    // Walk the data; pages on departed motes are unreachable, the rest
    // reload fine. Count what survives right now.
    let mut reachable_pages = 0;
    let mut lost_pages = 0;
    for page in 1..=PAGES {
        match mw.swap_in(page) {
            Ok(_) => reachable_pages += 1,
            Err(SwapError::DataLost { .. }) => lost_pages += 1,
            Err(SwapError::BadState { .. }) => reachable_pages += 1, // already in
            Err(e) => return Err(e.into()),
        }
    }
    println!("pages reloadable now: {reachable_pages}; temporarily lost: {lost_pages}");

    // The departed motes drift back into range: everything is recoverable.
    {
        let mut net = net.lock().expect("net");
        for d in gone {
            net.arrive(d)?;
        }
    }
    for page in 1..=PAGES {
        if let Err(e) = mw.swap_in(page) {
            if !matches!(e, SwapError::BadState { .. }) {
                return Err(e.into());
            }
        }
    }
    let n = mw.invoke_i64(root, "length", vec![])?;
    println!("\nswarm healed: full traversal sees {n} records again");
    let (sent, fetched) = {
        let net = net.lock().expect("net");
        net.traffic()
    };
    println!("total over the air: {sent} B out, {fetched} B back");
    Ok(())
}
