//! A field-survey data-collection app under *churn*: the storage devices
//! the PDA swaps to come and go, exactly the environment the paper's
//! conclusion envisions ("small memory-enabled devices with wireless
//! connectivity, scattered all-over").
//!
//! The surveyor fills record pages; cold pages are swapped to whichever
//! neighbour is in range. Mid-survey, the laptop walks away — reloads
//! report `DataLost` until it returns, while *new* swap-outs fall back to
//! the van's desktop. The GC-cooperation path drops blobs of pages the
//! app discards.
//!
//! ```text
//! cargo run --example field_survey
//! ```

use obiwan::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut server = Server::new(standard_classes());
    // Ten pages of 30 records each, as one long chain (a page = a cluster).
    let head = server.build_list("Node", 300, 32)?;

    let mut mw = Middleware::builder()
        .cluster_size(30)
        .device_memory(1 << 20)
        .no_builtin_policies()
        .stores(vec![
            StoreSpec::new("field-laptop", DeviceKind::Laptop, 64 * 1024),
            StoreSpec::new("van-desktop", DeviceKind::Desktop, 1 << 20),
        ])
        .build(server);
    let root = mw.replicate_root(head)?;
    mw.set_global("records", Value::Ref(root));

    // Collect everything (replicates all pages).
    let n = mw.invoke_i64(root, "length", vec![])?;
    println!("collected {n} records in {} pages", n / 30);

    let (laptop, desktop) = {
        let net = mw.net();
        let net = net.lock().expect("net");
        let nearby = net.nearby(mw.home_device());
        let mut laptop = nearby[0];
        let mut desktop = nearby[0];
        for d in nearby {
            match net.profile(d)?.kind {
                DeviceKind::Laptop => laptop = d,
                DeviceKind::Desktop => desktop = d,
                _ => {}
            }
        }
        (laptop, desktop)
    };

    // Prefer the laptop as the swap target while it is around (the same
    // knob the policy dialect's <prefer-device kind="laptop"/> drives).
    mw.manager().set_preferred_kind(Some(DeviceKind::Laptop));

    // Swap the first three pages out; they land on the laptop.
    for page in [1u32, 2, 3] {
        mw.swap_out(page)?;
    }
    println!(
        "pages 1-3 swapped out; laptop holds {} B, desktop {} B",
        stored(&mw, laptop),
        stored(&mw, desktop)
    );

    // The laptop's owner walks off with it.
    mw.net().lock().expect("net").depart(laptop)?;
    println!("\n*** the field laptop left the site ***");
    match mw.swap_in(1) {
        Err(SwapError::DataLost {
            swap_cluster,
            cause,
        }) => {
            println!("reload of page {swap_cluster} failed: {cause}");
        }
        other => panic!("expected DataLost, got {other:?}"),
    }

    // New evictions transparently fall back to the van's desktop.
    for page in [4u32, 5] {
        mw.swap_out(page)?;
    }
    println!(
        "pages 4-5 swapped while the laptop is away; desktop now holds {} B",
        stored(&mw, desktop)
    );

    // The laptop returns: page 1 reloads fine after all.
    mw.net().lock().expect("net").arrive(laptop)?;
    println!("\n*** the laptop returned ***");
    mw.swap_in(1)?;
    println!("page 1 reloaded; records intact:");
    let n = mw.invoke_i64(root, "length", vec![])?;
    println!("  traversal sees all {n} records again");

    // The surveyor discards the tail of the survey (pages 6-10): cut the
    // chain after record 150 and let the GC instruct the blob drops.
    let mut cur = root;
    for _ in 0..149 {
        cur = mw.invoke_ref(cur, "next", vec![])?;
    }
    mw.set_global("cut_point", Value::Ref(cur));
    mw.swap_out(6)?; // page 6 is on a neighbour when it becomes garbage
    let cut = mw.global("cut_point")?.expect_ref()?;
    let handle = match obiwan::core::identity_key(mw.process(), cut)? {
        obiwan::core::IdentityKey::Oid(oid) => mw
            .process()
            .lookup_replica(oid)
            .expect("record 150 is loaded"),
        obiwan::core::IdentityKey::Handle(h) => h,
    };
    mw.process_mut()
        .set_field_value(handle, "next", Value::Null)?;
    mw.run_gc()?;
    mw.run_gc()?;
    let stats = mw.swap_stats();
    println!(
        "\ndiscarded the tail: {} blob(s) dropped on neighbours by GC cooperation",
        stats.blobs_dropped
    );
    println!(
        "final: swap-outs {}, reloads {}, drop failures {}",
        stats.swap_outs, stats.swap_ins, stats.drop_failures
    );
    Ok(())
}

fn stored(mw: &Middleware, device: DeviceId) -> usize {
    let net = mw.net();
    let bytes = net.lock().expect("net").stored_bytes(device).unwrap_or(0);
    bytes
}
